"""Chrome trace-event emission: nested spans over the pipeline.

A :class:`Tracer` records *complete* events (``"ph": "X"``) in the
`Trace Event Format`_ that ``chrome://tracing`` and Perfetto load
directly.  Spans nest lexically via :meth:`Tracer.span`; because
complete events carry a start timestamp and a duration on one thread
track, the viewers reconstruct the nesting from timing alone.

The shared :class:`NullTracer` keeps the disabled path allocation-free:
its ``span``/``instant`` cost one method call returning a reusable
no-op context manager.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import _NULL_CONTEXT, _NullContext


class Tracer:
    """Collects trace events with timestamps relative to its creation."""

    enabled = True

    def __init__(self, process_name: str = "repro",
                 thread_name: str = "pipeline"):
        self.process_name = process_name
        self.thread_name = thread_name
        self.events: list[dict[str, Any]] = []
        self._origin = time.perf_counter()
        self._depth = 0

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    @contextmanager
    def span(self, name: str, category: str = "repro",
             **args: Any) -> Iterator[None]:
        """Record a complete event covering the ``with`` body.

        Spans opened inside the body become visually nested children in
        the trace viewer.
        """
        start = self._now_us()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            event: dict[str, Any] = {
                "name": name,
                "cat": category,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": round(start, 3),
                "dur": round(self._now_us() - start, 3),
            }
            if args:
                event["args"] = args
            self.events.append(event)

    def instant(self, name: str, category: str = "repro",
                **args: Any) -> None:
        """Record a zero-duration marker (rendered as a tick)."""
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": 1,
            "ts": round(self._now_us(), 3),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-object form of the trace (``traceEvents`` container).

        Both ``process_name`` and ``thread_name`` metadata events are
        emitted so Perfetto and ``chrome://tracing`` label the tracks
        instead of showing bare pid/tid numbers.
        """
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.process_name},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.thread_name},
            },
        ]
        events = sorted(
            self.events, key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0))
        )
        return {
            "traceEvents": [*metadata, *events],
            "displayTimeUnit": "ms",
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    events: list[dict[str, Any]] = []

    __slots__ = ()

    def span(self, name: str, category: str = "repro",
             **args: Any) -> _NullContext:
        return _NULL_CONTEXT

    def instant(self, name: str, category: str = "repro",
                **args: Any) -> None:
        return None


NULL_TRACER = NullTracer()
