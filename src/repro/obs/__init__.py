"""``repro.obs``: tracing, metrics, and pass-timing instrumentation.

The paper's pitch (§3) is dialect definitions as *data* from which
tooling is derived; this package makes the derived pipeline itself
observable.  Three cooperating pieces:

* :mod:`repro.obs.metrics` — named counters/timers/histograms in a
  :class:`MetricsRegistry`, with a zero-overhead no-op mode;
* :mod:`repro.obs.tracing` — a :class:`Tracer` emitting Chrome
  trace-event JSON (load the file in ``chrome://tracing`` or Perfetto);
* :mod:`repro.obs.report` — text renderers for the MLIR-style
  ``--timing`` and ``--pass-statistics`` reports plus a metric catalog.

The pipeline layers (textir lexer/parser, IRDL instantiation and
verifiers, the greedy rewrite driver, the pass manager) consult the
process-wide :data:`OBS` switchboard; ``irdl-opt`` exposes it via
``--timing``, ``--pass-statistics``, ``--trace-out`` and ``--metrics``.
"""

from repro.obs.instrument import (
    OBS,
    Observability,
    count_ops,
    disable_metrics,
    enable_metrics,
    install_remarks,
    install_tracer,
    observed,
    recent_events,
    reset,
    uninstall_remarks,
    uninstall_tracer,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    Timer,
)
from repro.obs.report import (
    render_metrics,
    render_pass_statistics,
    render_timing_report,
)
from repro.obs.remarks import (
    NULL_REMARKS,
    NullRemarkEngine,
    Remark,
    RemarkEngine,
)
from repro.obs.ring import EventRing
from repro.obs.timing import PassRunRecord
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "OBS",
    "Observability",
    "Counter",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "Tracer",
    "NullTracer",
    "Remark",
    "RemarkEngine",
    "NullRemarkEngine",
    "NULL_REMARKS",
    "EventRing",
    "PassRunRecord",
    "count_ops",
    "enable_metrics",
    "disable_metrics",
    "install_tracer",
    "uninstall_tracer",
    "install_remarks",
    "uninstall_remarks",
    "recent_events",
    "observed",
    "reset",
    "render_metrics",
    "render_pass_statistics",
    "render_timing_report",
]
