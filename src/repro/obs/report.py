"""Text renderers for the observability layer.

Three MLIR-flavoured reports:

* :func:`render_timing_report` — the ``--timing`` execution-time table
  (the shape of ``-mlir-timing``), with IR op-count deltas per pass when
  the pipeline collected them;
* :func:`render_pass_statistics` — the ``--pass-statistics`` report,
  ``(S)``-prefixed statistic lines grouped per pass;
* :func:`render_metrics` — a catalog dump of a
  :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import PassRunRecord

_WIDTH = 79

#: The observability contract of the pipeline layers: every registered
#: instrument name and its meaning.  ``render_metrics`` appends the
#: catalog entries that stayed silent during a run, so ``--metrics``
#: readers can tell "not instrumented" apart from "instrumented but
#: nothing happened".
INSTRUMENT_CATALOG: dict[str, str] = {
    "textir.lexer.tokens": "tokens produced by the textual lexer",
    "textir.parser.ops_parsed": "operations parsed from textual IR",
    "textir.parser.parse_time": "wall time spent in the textual parser",
    "textir.parser.module_ops": "operations per parsed module",
    "ir.uniquer.hits": "attribute interning cache hits",
    "ir.uniquer.misses": "attribute interning cache misses",
    "irdl.instantiate.dialects_loaded": "dialects registered from IRDL",
    "irdl.instantiate.types_instantiated": "type defs instantiated",
    "irdl.instantiate.ops_instantiated": "op defs instantiated",
    "irdl.instantiate.register_time": "wall time registering dialects",
    "irdl.verifier.ops_verified": "operations checked by IRDL verifiers",
    "irdl.verifier.constraint_checks": "constraint predicate evaluations",
    "irdl.verifier.memo_hits": "constraint memo hits",
    "irdl.verifier.memo_misses": "constraint memo misses",
    "irdl.codegen.definitions_compiled": "definitions lowered to "
    "generated Python verifiers",
    "irdl.codegen.formats_compiled": "declarative formats precompiled "
    "to directive programs",
    "irdl.codegen.source_bytes": "generated verifier source bytes",
    "irdl.codegen.fallbacks": "definitions kept on the interpretive "
    "path (codegen fallback)",
    "bytecode.encode.modules": "IR modules serialized to bytecode",
    "bytecode.encode.ops": "operations serialized to bytecode",
    "bytecode.encode.dialects": "IRDL dialects serialized to bytecode",
    "bytecode.encode.module_bytes": "encoded module artifact sizes",
    "bytecode.encode.dialect_bytes": "encoded dialect artifact sizes",
    "bytecode.encode.time": "wall time encoding bytecode",
    "bytecode.decode.modules": "IR modules deserialized from bytecode",
    "bytecode.decode.ops": "operations deserialized from bytecode",
    "bytecode.decode.dialects": "IRDL dialects deserialized from bytecode",
    "bytecode.decode.module_bytes": "decoded module artifact sizes",
    "bytecode.decode.dialect_bytes": "decoded dialect artifact sizes",
    "bytecode.decode.sections_skipped": "unknown sections skipped "
    "(forward compatibility)",
    "bytecode.decode.time": "wall time decoding bytecode",
    "bytecode.encode.streamed": "modules serialized through the "
    "streaming writer",
    "bytecode.lazy.opens": "lazy module readers opened",
    "bytecode.lazy.fallbacks": "lazy opens that fell back to eager "
    "decoding (no op-index section)",
    "bytecode.lazy.ops_indexed": "top-level ops indexed at lazy open",
    "bytecode.lazy.ops_forced": "lazily indexed top-level ops "
    "materialized on demand",
    "bytecode.lazy.open_time": "wall time opening lazy module readers "
    "(tables + shell, no op bodies)",
    "parallel.verify.runs": "sharded verification runs",
    "parallel.verify.ops": "top-level ops verified by sharded runs",
    "parallel.verify.diagnostics": "verification failures collected by "
    "sharded runs",
    "parallel.verify.workers": "worker processes per sharded run",
    "parallel.verify.shards": "contiguous op-index shards per run",
    "parallel.verify.time": "wall time of sharded verification "
    "(partition + workers + merge)",
    "analysis.sat.queries": "symbolic engine queries "
    "(satisfiable/subsumes/disjoint)",
    "analysis.sat.sat": "constraints decided satisfiable (witnessed)",
    "analysis.sat.unsat": "constraints decided unsatisfiable",
    "analysis.sat.unknown": "constraints the engine could not decide",
    "analysis.sat.witness_checks": "candidate witnesses verified against "
    "original constraints",
    "analysis.sat.sampler_fallbacks": "UNKNOWN verdicts handed to the "
    "random sampler",
    "analysis.dataflow.computes": "analysis results computed by the "
    "AnalysisManager (cache misses)",
    "analysis.dataflow.cache_hits": "analysis results served from the "
    "AnalysisManager cache",
    "analysis.dataflow.invalidations": "cached analysis results dropped "
    "by invalidation hooks",
    "analysis.dataflow.transfer_steps": "transfer-function evaluations "
    "of the sparse forward engine",
    "rewriting.validate.checks": "post-application validations run "
    "under --validate-rewrites",
    "rewriting.validate.failures": "rewrite applications that broke an "
    "SSA invariant (each aborts the pipeline)",
    "obs.remarks.emitted": "optimization remarks recorded (all kinds)",
    "obs.remarks.applied": "rewrite patterns applied (one remark each)",
    "obs.remarks.missed": "rewrite patterns that matched an op name "
    "but did not fire",
    "obs.remarks.pass": "per-pass summary remarks from the PassManager",
    "obs.remarks.verify-failure": "verifier failures surfaced as remarks",
    "obs.remarks.lint": "lint findings surfaced as remarks",
}


def _banner(title: str) -> list[str]:
    bar = "===" + "-" * (_WIDTH - 6) + "==="
    return [bar, f"... {title} ...".center(_WIDTH).rstrip(), bar]


def render_timing_report(records: Sequence[PassRunRecord],
                         total: float | None = None) -> str:
    """Render per-pass wall times in the style of ``-mlir-timing``."""
    lines = _banner("Execution time report")
    if total is None:
        total = sum(record.wall_time for record in records)
    lines.append(f"  Total Execution Time: {total:.4f} seconds")
    lines.append("")
    lines.append("  ----Wall Time----  ----Name----")

    def row(seconds: float, name: str) -> str:
        percent = 100.0 * seconds / total if total > 0 else 0.0
        return f"  {seconds:9.4f} ({percent:5.1f}%)  {name}"

    for record in records:
        name = record.name
        delta = record.ops_delta
        if delta is not None:
            name += f" (ops: {record.ops_before} -> {record.ops_after})"
        lines.append(row(record.wall_time, name))
    lines.append(row(total, "Total"))
    return "\n".join(lines)


def render_pass_statistics(
    sections: Sequence[tuple[str, Sequence[tuple[str, int]]]],
) -> str:
    """Render ``(S)`` statistic lines grouped per pass, as MLIR does."""
    lines = _banner("Pass statistics report")
    width = max(
        (len(str(value)) for _, stats in sections for _, value in stats),
        default=1,
    )
    for pass_name, stats in sections:
        lines.append(f"'{pass_name}'")
        for label, value in stats:
            lines.append(f"  (S) {value:>{width}} {label}")
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """Render the full metric catalog of a registry, sorted by name."""
    lines = _banner("Metrics report")
    counters = registry.counters
    timers = registry.timers
    histograms = registry.histograms
    if not (counters or timers or histograms):
        lines.append("  (no metrics recorded)")
        return "\n".join(lines)

    def pad(name: str) -> str:
        dots = max(2, 46 - len(name))
        return f"  {name} {'.' * dots}"

    if counters:
        lines.append("Counters:")
        for counter in counters:
            lines.append(f"{pad(counter.name)} {counter.value}")
    if timers:
        lines.append("Timers:")
        for timer in timers:
            lines.append(
                f"{pad(timer.name)} {timer.total:.4f} s "
                f"(n={timer.count}, mean {timer.mean:.4f} s)"
            )
    if histograms:
        lines.append("Histograms:")
        for histogram in histograms:
            lines.append(
                f"{pad(histogram.name)} n={histogram.count} "
                f"min={histogram.min if histogram.count else 0:g} "
                f"mean={histogram.mean:g} max={histogram.max:g} "
                f"p50={histogram.percentile(0.50):g} "
                f"p95={histogram.percentile(0.95):g} "
                f"p99={histogram.percentile(0.99):g}"
            )
    recorded = (
        {c.name for c in counters}
        | {t.name for t in timers}
        | {h.name for h in histograms}
    )
    silent = [name for name in INSTRUMENT_CATALOG if name not in recorded]
    if silent:
        lines.append("Registered instruments not recorded this run:")
        for name in silent:
            lines.append(f"{pad(name)} {INSTRUMENT_CATALOG[name]}")
    return "\n".join(lines)
