"""Wall-clock bookkeeping for pass pipelines.

:class:`PassRunRecord` is the unit the :class:`~repro.rewriting.passes.
PassManager` emits per pass execution; :func:`repro.obs.report.
render_timing_report` turns a sequence of them into the MLIR-style
``--timing`` report.

The clock is the module attribute :data:`now` so tests can monkeypatch
``repro.obs.timing.now`` with a deterministic counter and golden-test
the rendered report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: The pipeline clock.  Monkeypatchable: ``repro.obs.timing.now = fake``.
now = time.perf_counter


@dataclass(frozen=True)
class PassRunRecord:
    """One timed execution of a named pipeline phase."""

    name: str
    wall_time: float
    changed: bool | None = None
    ops_before: int | None = None
    ops_after: int | None = None

    @property
    def ops_delta(self) -> int | None:
        """IR op-count change (negative when the pass shrank the IR)."""
        if self.ops_before is None or self.ops_after is None:
            return None
        return self.ops_after - self.ops_before
