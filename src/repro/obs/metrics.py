"""Counters, timers, and histograms behind a toggleable registry.

The observability layer (``repro.obs``) mirrors MLIR's pass statistics
and ``-mlir-timing`` infrastructure: the pipeline layers record *named*
metrics into a :class:`MetricsRegistry`, and reporting is a separate
concern (:mod:`repro.obs.report`).

The registry has a **zero-overhead no-op mode**: when disabled, every
``counter()``/``timer()``/``histogram()`` lookup returns a shared null
instrument whose mutators do nothing, so instrumented code pays only an
attribute check.  Hot paths additionally guard on ``registry.enabled``
so they skip even the argument construction when observability is off.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

#: One process-wide lock serializing instrument mutation.  Increments
#: and observations are multi-step Python statements, so concurrent
#: worker threads (the dialect server's pool) would otherwise lose
#: updates; a single shared lock keeps the hot path branch-free and the
#: disabled path (null instruments) entirely lock-free.
_STATE_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with _STATE_LOCK:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Timer:
    """Accumulated wall time over recorded intervals (thread-safe)."""

    __slots__ = ("name", "total", "count", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        with _STATE_LOCK:
            self.total += seconds
            self.count += 1
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, total={self.total:.6f}, n={self.count})"


class Histogram:
    """A power-of-two bucketed distribution of non-negative samples.

    Buckets are keyed by their inclusive upper bound ``2**k`` (plus a
    dedicated ``0`` bucket), which is compact, deterministic, and enough
    to answer "are parses mostly 100 ops or 100k ops" questions without
    storing every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        with _STATE_LOCK:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            bound = 0.0 if value <= 0 else 2.0 ** math.ceil(math.log2(value))
            self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """An upper-bound estimate of the ``q``-quantile (0 < q <= 1).

        Resolution is the bucket width: the estimate is the inclusive
        upper bound of the bucket the quantile falls into, clamped to
        the observed maximum (the true value can never exceed it).
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound in sorted(self.buckets):
            cumulative += self.buckets[bound]
            if cumulative >= target:
                return min(bound, self.max)
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class _NullContext:
    """A reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullCounter:
    """Shared no-op counter returned by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class NullTimer:
    """Shared no-op timer returned by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    total = 0.0
    count = 0
    mean = 0.0

    def record(self, seconds: float) -> None:
        return None

    def time(self) -> _NullContext:
        return _NULL_CONTEXT


class NullHistogram:
    """Shared no-op histogram returned by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = NullCounter()
NULL_TIMER = NullTimer()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """A named collection of counters, timers, and histograms.

    Instruments are created on first use and identified by dotted names
    (``textir.parser.ops_parsed``).  Use :meth:`scope` to hand a
    component a view that prefixes every name it records under.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Serializes instrument creation and snapshot iteration, so
        #: concurrent first-use from worker threads yields one shared
        #: instrument per name and snapshots never observe a dict
        #: mid-mutation.
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every recorded instrument (the enabled flag is kept)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()

    # -- instrument lookup ---------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return NULL_TIMER  # type: ignore[return-value]
        instrument = self._timers.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._timers.get(name)
                if instrument is None:
                    instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)

    # -- introspection -------------------------------------------------

    @property
    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    @property
    def timers(self) -> list[Timer]:
        return [self._timers[k] for k in sorted(self._timers)]

    @property
    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def value_of(self, name: str) -> int | float | None:
        """The current value of a counter (or total of a timer), if any."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._timers:
            return self._timers[name].total
        if name in self._histograms:
            return self._histograms[name].total
        return None

    def snapshot(self) -> dict[str, Any]:
        """A machine-readable dump of every instrument."""
        with self._lock, _STATE_LOCK:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "timers": {
                name: {
                    "total_s": t.total,
                    "count": t.count,
                    "mean_s": t.mean,
                    "min_s": t.min if t.count else 0.0,
                    "max_s": t.max,
                }
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min if h.count else 0.0,
                    "max": h.max,
                    "p50": h.percentile(0.50),
                    "p95": h.percentile(0.95),
                    "p99": h.percentile(0.99),
                    "buckets": {
                        str(bound): n for bound, n in sorted(h.buckets.items())
                    },
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class MetricsScope:
    """A registry view that prefixes every instrument name it touches."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def counter(self, name: str) -> Counter:
        return self.registry.counter(f"{self.prefix}.{name}")

    def timer(self, name: str) -> Timer:
        return self.registry.timer(f"{self.prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(f"{self.prefix}.{name}")

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, f"{self.prefix}.{prefix}")
