"""The global observability switchboard the pipeline layers consult.

Hot code imports the singleton :data:`OBS` once and guards with
``OBS.active`` (or ``OBS.metrics.enabled``), so the disabled pipeline
pays a couple of attribute loads per instrumented region — nothing is
allocated and no names are formatted.  Enabling observability swaps the
fields of the singleton in place, which every importer observes
immediately (the object identity never changes).

Typical instrumentation site::

    from repro.obs.instrument import OBS

    def parse(...):
        if not OBS.active:
            return _parse(...)            # the untouched fast path
        with OBS.tracer.span("textir.parse"):
            result = _parse(...)
        OBS.metrics.counter("textir.parser.ops_parsed").inc(n)
        return result
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs import timing
from repro.obs.metrics import MetricsRegistry
from repro.obs.remarks import NULL_REMARKS, NullRemarkEngine, RemarkEngine
from repro.obs.ring import EventRing
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:
    from repro.ir.operation import Operation


class Observability:
    """The global sinks: metrics registry, tracer, remark engine, ring."""

    __slots__ = ("metrics", "tracer", "remarks", "ring")

    def __init__(self):
        self.metrics = MetricsRegistry(enabled=False)
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.remarks: RemarkEngine | NullRemarkEngine = NULL_REMARKS
        #: The flight-recorder ring; only populated while a remark
        #: engine (or another pusher) is installed, so the disabled
        #: path never touches it.
        self.ring = EventRing()

    @property
    def active(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled


#: The process-wide observability state.  Mutated in place — never rebound.
OBS = Observability()


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and enable) a metrics registry; returns it."""
    OBS.metrics = registry if registry is not None else MetricsRegistry()
    OBS.metrics.enable()
    return OBS.metrics


def disable_metrics() -> MetricsRegistry:
    """Disable metric collection, keeping recorded values readable."""
    OBS.metrics.disable()
    return OBS.metrics


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) a tracer; spans start recording immediately."""
    installed = tracer if tracer is not None else Tracer()
    OBS.tracer = installed
    return installed


def uninstall_tracer() -> Tracer | NullTracer:
    """Stop tracing; returns the tracer that was collecting events."""
    previous = OBS.tracer
    OBS.tracer = NULL_TRACER
    return previous


def install_remarks(engine: RemarkEngine | None = None) -> RemarkEngine:
    """Install (and return) a remark engine; emitters start recording."""
    installed = engine if engine is not None else RemarkEngine()
    OBS.remarks = installed
    return installed


def uninstall_remarks() -> RemarkEngine | NullRemarkEngine:
    """Stop remark collection; returns the engine that was recording."""
    previous = OBS.remarks
    OBS.remarks = NULL_REMARKS
    return previous


def recent_events() -> list[dict]:
    """The flight-recorder snapshot: the last events, oldest first."""
    return OBS.ring.snapshot()


def reset() -> None:
    """Return the global state to its fully disabled default."""
    OBS.metrics = MetricsRegistry(enabled=False)
    OBS.tracer = NULL_TRACER
    OBS.remarks = NULL_REMARKS
    OBS.ring.clear()


@contextmanager
def observed(span_name: str, timer_name: str | None = None,
             category: str = "repro") -> Iterator[None]:
    """Span + timer in one guard, for call sites outside the hot loops."""
    if not OBS.active:
        yield
        return
    start = timing.now()
    with OBS.tracer.span(span_name, category=category):
        yield
    if timer_name is not None and OBS.metrics.enabled:
        OBS.metrics.timer(timer_name).record(timing.now() - start)


def count_ops(root: "Operation") -> int:
    """The number of operations under (and including) ``root``."""
    return sum(1 for _ in root.walk())
