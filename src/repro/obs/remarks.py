"""Optimization remarks: the machine-readable "what did the compiler do".

LLVM ships ``-Rpass``/``-fsave-optimization-record``; MLIR forwards
pattern and pass activity through its own remark engine.  This module
is the reproduction's equivalent: pipeline layers emit structured
:class:`Remark` records — *applied* and *missed* rewrites from the
greedy driver, per-pass summaries from the PassManager, verifier
failures, and lint findings — into the process-wide engine installed on
:data:`repro.obs.instrument.OBS`.

Each remark carries the acting component (``origin``), a specific name
(the pattern / pass / lint code), the subject operation's name and
:class:`~repro.ir.location.Location`, a human message, and a payload
dict of machine-readable details.  Streams render as text or JSONL
(one JSON object per line — the schema checked by
:mod:`repro.tools.remark_schema`).

Disabled-path cost: the shared :data:`NULL_REMARKS` engine answers
``enabled`` with a class attribute and every hot emitter guards on it,
so the default pipeline allocates nothing remark-related.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Iterable

from repro.ir.location import UNKNOWN_LOC, Location

#: The remark kinds the engine accepts (and the JSONL schema allows).
REMARK_KINDS = ("applied", "missed", "pass", "verify-failure", "lint")


class Remark:
    """One structured record of something the pipeline did (or skipped)."""

    __slots__ = (
        "seq", "kind", "origin", "name", "op", "location", "message",
        "payload",
    )

    def __init__(
        self,
        kind: str,
        origin: str,
        name: str,
        op: str = "",
        location: Location = UNKNOWN_LOC,
        message: str = "",
        payload: dict[str, Any] | None = None,
        seq: int = 0,
    ):
        self.seq = seq
        self.kind = kind
        self.origin = origin
        self.name = name
        self.op = op
        self.location = location
        self.message = message
        self.payload: dict[str, Any] = payload if payload is not None else {}

    @property
    def key(self) -> str:
        """The string ``--remark-filter`` regexes are matched against."""
        return f"{self.kind}:{self.origin}/{self.name}"

    def to_dict(self) -> dict[str, Any]:
        """The JSONL-schema form of this remark."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "origin": self.origin,
            "name": self.name,
            "op": self.op,
            "loc": None if self.location.is_unknown else str(self.location),
            "message": self.message,
            "payload": self.payload,
        }

    def render(self) -> str:
        """One human-readable line, compiler-remark style."""
        parts = [f"remark: [{self.kind}] {self.origin}/{self.name}"]
        if self.op:
            parts.append(f"on {self.op}")
        if not self.location.is_unknown:
            parts.append(f"at {self.location}")
        line = " ".join(parts)
        if self.message:
            line += f": {self.message}"
        if self.payload:
            details = ", ".join(
                f"{key}={value!r}" for key, value in self.payload.items()
            )
            line += f" {{{details}}}"
        return line

    def __repr__(self) -> str:
        return f"<Remark {self.key} op={self.op!r}>"


class RemarkEngine:
    """Collects remarks, counts them per kind, and feeds the event ring.

    ``filter_pattern`` (a regex, matched with ``search`` against
    :attr:`Remark.key` strings such as ``applied:canonicalize/norm_of_
    product``) drops non-matching remarks at the source; dropped remarks
    are tallied in :attr:`filtered` so streams can report the omission.
    """

    enabled = True

    def __init__(self, filter_pattern: str | None = None):
        self.remarks: list[Remark] = []
        self.counts: dict[str, int] = {}
        self.filtered = 0
        self._seq = 0
        self._filter: re.Pattern[str] | None = (
            re.compile(filter_pattern) if filter_pattern else None
        )
        #: Extra per-remark callbacks (the tracer bridge installs one).
        self.sinks: list[Callable[[Remark], None]] = []

    def emit(
        self,
        kind: str,
        origin: str,
        name: str,
        op: str = "",
        location: Location = UNKNOWN_LOC,
        message: str = "",
        **payload: Any,
    ) -> Remark | None:
        """Record one remark; returns it, or None when filtered out."""
        self._seq += 1
        remark = Remark(
            kind, origin, name, op=op, location=location, message=message,
            payload=payload, seq=self._seq,
        )
        if self._filter is not None and not self._filter.search(remark.key):
            self.filtered += 1
            return None
        self.remarks.append(remark)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._record(remark)
        return remark

    def _record(self, remark: Remark) -> None:
        """Mirror a remark into the global ring / metrics / sinks."""
        from repro.obs.instrument import OBS

        OBS.ring.push(
            "remark",
            remark=remark.kind,
            origin=remark.origin,
            name=remark.name,
            op=remark.op,
            loc=None if remark.location.is_unknown else str(remark.location),
        )
        metrics = OBS.metrics
        if metrics.enabled:
            metrics.counter("obs.remarks.emitted").inc()
            metrics.counter(f"obs.remarks.{remark.kind}").inc()
        tracer = OBS.tracer
        if tracer.enabled:
            tracer.instant(
                f"remark:{remark.kind}",
                category="remark",
                key=f"{remark.origin}/{remark.name}",
                op=remark.op,
            )
        for sink in self.sinks:
            sink(remark)

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        """The whole stream as human-readable lines."""
        lines = [remark.render() for remark in self.remarks]
        if self.filtered:
            lines.append(
                f"# {self.filtered} remark(s) dropped by --remark-filter"
            )
        return "\n".join(lines)

    def render_jsonl(self) -> str:
        """The whole stream as JSON Lines (one object per remark)."""
        return "\n".join(
            json.dumps(remark.to_dict(), sort_keys=True)
            for remark in self.remarks
        )

    def write(self, path: str, fmt: str = "text") -> None:
        text = self.render_jsonl() if fmt == "jsonl" else self.render_text()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            if text:
                handle.write("\n")


class NullRemarkEngine:
    """The disabled engine: ``emit`` is a cheap no-op."""

    __slots__ = ()

    enabled = False
    remarks: list[Remark] = []
    counts: dict[str, int] = {}
    filtered = 0

    def emit(self, *args: Any, **kwargs: Any) -> None:
        return None


#: The shared disabled instance `OBS.remarks` points at by default.
NULL_REMARKS = NullRemarkEngine()


def iter_dicts(remarks: Iterable[Remark]) -> Iterable[dict[str, Any]]:
    """Schema-shaped dicts for a remark stream (JSONL writers, tests)."""
    for remark in remarks:
        yield remark.to_dict()
