"""A bounded in-memory event ring: the pipeline's flight recorder.

The ring keeps the last *N* structured events (remarks, diagnostics,
phase markers) so that when something goes wrong the driver can dump
"what just happened" without having asked for full tracing up front —
the same idea as an aircraft flight recorder, or MLIR's crash
reproducer generation.

Events are plain dicts with a monotonically increasing ``seq`` so a
reader can tell how much history was evicted.  The ring never grows
beyond its capacity and costs nothing when no one pushes to it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

#: Default number of events retained by the global ring.
DEFAULT_CAPACITY = 256


class EventRing:
    """A fixed-capacity ring of structured events.

    Thread-safe: the dialect server's worker threads push concurrently
    while the event loop snapshots; a lock keeps the sequence numbers
    gap-free and snapshots consistent.
    """

    __slots__ = ("capacity", "_events", "_seq", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def push(self, kind: str, **fields: Any) -> None:
        """Append one event, evicting the oldest when full."""
        with self._lock:
            self._seq += 1
            event: dict[str, Any] = {"seq": self._seq, "kind": kind}
            event.update(fields)
            self._events.append(event)

    def snapshot(self) -> list[dict[str, Any]]:
        """The retained events, oldest first (copies of the ring slots)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0

    @property
    def total_pushed(self) -> int:
        """How many events were ever pushed (evicted ones included)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return len(self._events) > 0
