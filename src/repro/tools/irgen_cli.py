"""``repro-irgen``: emit deterministic synthetic benchmark modules.

The scale-test companion to ``irdl-opt``: it materializes the
``bench``-dialect module produced by
:func:`repro.corpus.synth.synthesize_module` and writes it as text or
bytecode.  ``repro-irgen --ops 1000000 -o big.irbc`` regenerates the
exact module behind ``BENCH_parallel.json`` — same seed, same bytes —
so lazy-loading and sharded-verification numbers are reproducible from
the command line.

Bytecode written to a file goes through the streaming encoder
(:func:`repro.bytecode.encode_module_stream`), so emitting a module
larger than memory headroom never holds the encoded artifact and the
attribute pool in memory at once.
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.diagnostics import DiagnosticError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-irgen",
        description="Generate a deterministic synthetic benchmark module.",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=1000,
        metavar="N",
        help="number of top-level operations to generate (default: 1000)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="generation seed (default: 0)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="output path (default: stdout)",
    )
    parser.add_argument(
        "--emit",
        choices=("bytecode", "text"),
        default="bytecode",
        help="output format (default: bytecode)",
    )
    parser.add_argument(
        "--no-index",
        action="store_true",
        help="omit the op-index section from bytecode output",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.ops < 0:
        print(f"error: --ops must be non-negative, got {args.ops}",
              file=sys.stderr)
        return 2
    from repro.corpus.synth import synthesize_module

    try:
        module = synthesize_module(args.ops, seed=args.seed)
        if args.emit == "text":
            from repro.textir.printer import print_op

            text = print_op(module)
            if args.output is None:
                print(text)
            else:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    if not text.endswith("\n"):
                        handle.write("\n")
            return 0
        index = not args.no_index
        if args.output is None:
            from repro.bytecode import encode_module

            sys.stdout.buffer.write(encode_module(module, index=index))
            sys.stdout.buffer.flush()
        else:
            from repro.bytecode import encode_module_stream

            with open(args.output, "wb") as handle:
                encode_module_stream(module, handle, index=index)
    except (DiagnosticError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
