"""Command-line and IDE-style tools built on the IRDL stack."""

from repro.tools.completion import (
    Completion,
    complete_attr_name,
    complete_op_name,
    complete_type_name,
    ops_accepting_type,
    signature_help,
)
from repro.tools.lint import LintFinding, lint_dialect, render_findings

__all__ = [
    "Completion",
    "complete_attr_name",
    "complete_op_name",
    "complete_type_name",
    "ops_accepting_type",
    "signature_help",
    "LintFinding",
    "lint_dialect",
    "render_findings",
]
