"""Schema validation for remark JSONL streams.

``irdl-opt --remarks-out=FILE --remark-format=jsonl`` (or a ``.jsonl``
extension) writes one JSON object per line; this module checks each
line against the fixed schema :meth:`repro.obs.remarks.Remark.to_dict`
produces, so CI can gate the stream's validity without golden files::

    python -m repro.tools.remark_schema remarks.jsonl

Exit code 0 when every line conforms, 1 otherwise (problems are listed
on stderr, one per offending line).
"""

from __future__ import annotations

import json
import sys

from repro.obs.remarks import REMARK_KINDS

#: Required key → accepted value type(s) of one remark object.
_FIELDS: dict[str, tuple[type, ...]] = {
    "seq": (int,),
    "kind": (str,),
    "origin": (str,),
    "name": (str,),
    "op": (str,),
    "loc": (str, type(None)),
    "message": (str,),
    "payload": (dict,),
}


def validate_remark(obj: object) -> list[str]:
    """Problems with one decoded remark object (empty when valid)."""
    if not isinstance(obj, dict):
        return [f"remark is {type(obj).__name__}, expected an object"]
    problems = []
    for key, types in _FIELDS.items():
        if key not in obj:
            problems.append(f"missing key {key!r}")
            continue
        value = obj[key]
        if not isinstance(value, types) or (
            # bool is an int subclass; seq must be a genuine integer.
            key == "seq" and isinstance(value, bool)
        ):
            accepted = "/".join(t.__name__ for t in types)
            problems.append(
                f"key {key!r} is {type(value).__name__}, expected {accepted}"
            )
    for key in obj:
        if key not in _FIELDS:
            problems.append(f"unexpected key {key!r}")
    if isinstance(obj.get("kind"), str) and obj["kind"] not in REMARK_KINDS:
        problems.append(
            f"kind {obj['kind']!r} not one of {', '.join(REMARK_KINDS)}"
        )
    if isinstance(obj.get("seq"), int) and not isinstance(obj["seq"], bool) \
            and obj["seq"] < 1:
        problems.append(f"seq {obj['seq']} is not a positive integer")
    return problems


def validate_remarks_jsonl(path: str) -> list[str]:
    """All problems in a remark JSONL file, prefixed ``path:line:``."""
    problems: list[str] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                problems.append(f"{path}:{lineno}: invalid JSON: {err}")
                continue
            problems.extend(
                f"{path}:{lineno}: {problem}"
                for problem in validate_remark(obj)
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.tools.remark_schema FILE...",
              file=sys.stderr)
        return 2
    total = 0
    checked = 0
    for path in args:
        try:
            problems = validate_remarks_jsonl(path)
        except OSError as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            return 2
        for problem in problems:
            print(problem, file=sys.stderr)
        total += len(problems)
        checked += 1
    if total:
        print(f"{total} schema problem(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
