"""An IRDL linter: definition-level diagnostics for dialect authors.

§4 motivates DSLs because definitions "can be analyzed for correctness
and tool support"; this linter is that analysis.  It inspects resolved
dialect definitions and reports:

* ``unsatisfiable-constraint`` — an operand/result/attribute/parameter
  constraint no value can satisfy (checked constructively, by asking the
  sampler for a witness);
* ``empty-anyof`` — an ``AnyOf`` with contradictory alternatives;
* ``unused-alias`` / ``unused-constraint`` / ``unused-wrapper`` — named
  declarations nothing references;
* ``segment-attribute-required`` — an operation with several variadic
  operand/result definitions, whose users must supply
  ``operand_segment_sizes``/``result_segment_sizes`` (informational);
* ``duplicate-name`` — two definitions sharing a name;
* ``missing-summary`` — undocumented public definitions (style).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.irdl import constraints as C
from repro.irdl.ast import DialectDecl, RefExpr
from repro.irdl.defs import DialectDef
from repro.irdl.sampler import CannotSample, ConstraintSampler


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    code: str
    severity: str  # "error" | "warning" | "note"
    subject: str   # qualified name of the definition
    message: str

    def render(self) -> str:
        return f"{self.severity}[{self.code}] {self.subject}: {self.message}"


def _is_satisfiable(constraint: C.Constraint, attempts: int = 8) -> bool:
    """Constructive satisfiability: can the sampler produce a witness?"""
    for seed in range(attempts):
        try:
            ConstraintSampler(random.Random(seed)).sample(constraint)
            return True
        except CannotSample:
            continue
        except Exception:
            return True  # sampling limitation, not unsatisfiability
    # Some satisfiable constraints are simply not samplable (e.g. Not of
    # an exotic type); only report definite contradictions.
    return not _definitely_unsatisfiable(constraint)


def _definitely_unsatisfiable(constraint: C.Constraint) -> bool:
    if isinstance(constraint, C.PyConstraint):
        # Reached only when rejection sampling exhausted every attempt:
        # a predicate that rejected hundreds of candidates is reported.
        return True
    if isinstance(constraint, C.AnyOfConstraint):
        return all(_definitely_unsatisfiable(a) for a in constraint.alternatives)
    if isinstance(constraint, C.AndConstraint):
        # Eq conjuncts with different expectations cannot both hold.
        expectations = [
            c.expected for c in constraint.conjuncts
            if isinstance(c, C.EqConstraint)
        ]
        if len({id(type(e)) for e in expectations}) > 1:
            return True
        if len(expectations) > 1 and any(
            e != expectations[0] for e in expectations[1:]
        ):
            return True
        return any(_definitely_unsatisfiable(c) for c in constraint.conjuncts)
    if isinstance(constraint, C.NotConstraint):
        inner = constraint.inner
        return isinstance(inner, (C.AnyTypeConstraint, C.AnyAttrConstraint,
                                  C.AnyParamConstraint))
    return False


def _collect_names(expr, names: set[str]) -> None:
    if isinstance(expr, RefExpr):
        names.add(expr.name)
        for param in expr.params or ():
            _collect_names(param, names)
    elif hasattr(expr, "elements"):
        for element in expr.elements:
            _collect_names(element, names)


def _referenced_names(decl: DialectDecl) -> set[str]:
    names: set[str] = set()
    exprs = []
    for type_decl in (*decl.types, *decl.attributes):
        exprs.extend(p.constraint for p in type_decl.parameters)
    for op in decl.operations:
        exprs.extend(a.constraint for a in (*op.operands, *op.results,
                                            *op.attributes))
        exprs.extend(v.constraint for v in op.constraint_vars)
        for region in op.regions:
            exprs.extend(a.constraint for a in region.arguments)
    for alias in decl.aliases:
        exprs.append(alias.body)
    for constraint_decl in decl.constraints:
        exprs.append(constraint_decl.base)
    for expr in exprs:
        _collect_names(expr, names)
    return names


def lint_dialect(dialect: DialectDef,
                 decl: DialectDecl | None = None) -> list[LintFinding]:
    """Lint one resolved dialect (optionally with its syntax tree)."""
    findings: list[LintFinding] = []
    prefix = dialect.name

    # -- satisfiability -------------------------------------------------
    for op in dialect.operations:
        for arg in (*op.operands, *op.results, *op.attributes):
            if not _is_satisfiable(arg.constraint):
                findings.append(LintFinding(
                    "unsatisfiable-constraint", "error", op.qualified_name,
                    f"no value can satisfy the constraint of {arg.name!r}",
                ))
    for type_def in (*dialect.types, *dialect.attributes):
        for param in type_def.parameters:
            if not _is_satisfiable(param.constraint):
                findings.append(LintFinding(
                    "unsatisfiable-constraint", "error",
                    type_def.qualified_name,
                    f"no value can satisfy parameter {param.name!r}",
                ))

    # -- multi-variadic segments ----------------------------------------
    for op in dialect.operations:
        for kind, count in (("operand", op.num_variadic_operands),
                            ("result", op.num_variadic_results)):
            if count > 1:
                findings.append(LintFinding(
                    "segment-attribute-required", "note", op.qualified_name,
                    f"{count} variadic {kind} definitions: instances must "
                    f"carry a {kind}_segment_sizes attribute (§4.6)",
                ))

    # -- duplicate names --------------------------------------------------
    seen: dict[str, str] = {}
    for kind, items in (
        ("operation", dialect.operations),
        ("type", dialect.types),
        ("attribute", dialect.attributes),
    ):
        for item in items:
            key = f"{kind}:{item.name}"
            if key in seen:
                findings.append(LintFinding(
                    "duplicate-name", "error", f"{prefix}.{item.name}",
                    f"{kind} defined more than once",
                ))
            seen[key] = kind

    # -- missing summaries -------------------------------------------------
    for op in dialect.operations:
        if not op.summary:
            findings.append(LintFinding(
                "missing-summary", "warning", op.qualified_name,
                "operation has no Summary documentation",
            ))
    for type_def in (*dialect.types, *dialect.attributes):
        if not type_def.summary:
            findings.append(LintFinding(
                "missing-summary", "warning", type_def.qualified_name,
                "definition has no Summary documentation",
            ))

    # -- unused declarations (needs the syntax tree) -------------------------
    if decl is not None:
        used = _referenced_names(decl)
        for alias in decl.aliases:
            if alias.name not in used:
                findings.append(LintFinding(
                    "unused-alias", "warning", f"{prefix}.{alias.name}",
                    "alias is never referenced",
                ))
        for constraint_decl in decl.constraints:
            if constraint_decl.name not in used:
                findings.append(LintFinding(
                    "unused-constraint", "warning",
                    f"{prefix}.{constraint_decl.name}",
                    "named constraint is never referenced",
                ))
        for wrapper in decl.param_wrappers:
            if wrapper.name not in used:
                findings.append(LintFinding(
                    "unused-wrapper", "warning", f"{prefix}.{wrapper.name}",
                    "TypeOrAttrParam is never referenced",
                ))
    return findings


def render_findings(findings: list[LintFinding]) -> str:
    if not findings:
        return "no findings\n"
    return "\n".join(f.render() for f in findings) + "\n"
