"""An IRDL linter: definition-level diagnostics for dialect authors.

This module is the stable CLI-facing surface; the checks themselves
live in :mod:`repro.analysis.lints`, built on the symbolic constraint
engine (:mod:`repro.analysis.sat`).  Satisfiability is decided
symbolically; the random sampler is consulted only when the engine
answers ``UNKNOWN``, and a missing witness is then reported as
``possibly-unsatisfiable`` — never as a definite error.  See
``docs/linting.md`` for the full lint-code catalog.
"""

from __future__ import annotations

from repro.analysis.lints import (
    LINT_CODES,
    LintFinding,
    exit_code,
    findings_to_json,
    lint_dialect,
    lint_pattern_set,
    lint_patterns,
    render_findings,
)
from repro.analysis.sat import SatEngine, Verdict
from repro.analysis.lints.satisfiability import sampler_witness
from repro.irdl import constraints as C

__all__ = [
    "LINT_CODES",
    "LintFinding",
    "exit_code",
    "findings_to_json",
    "lint_dialect",
    "lint_pattern_set",
    "lint_patterns",
    "render_findings",
]

_ENGINE = SatEngine()


def _is_satisfiable(constraint: C.Constraint) -> bool:
    """Engine-first satisfiability with a sound sampler fallback.

    The symbolic engine decides first; only when it answers ``UNKNOWN``
    (opaque ``PyConstraint`` bodies) is the sampler consulted, and there
    only :class:`~repro.irdl.sampler.CannotSample` counts as "no
    witness" — any other exception is a real crash and propagates.
    Satisfiable-but-unsamplable constraints (e.g. ``Not`` of an exotic
    type) are therefore decided by the engine, not guessed at.
    """
    verdict = _ENGINE.satisfiable(constraint)
    if verdict is Verdict.SAT:
        return True
    if verdict is Verdict.UNSAT:
        return False
    return sampler_witness(constraint)
