"""Code-completion queries over registered dialects.

The foundation for the LSP-style tooling Figure 1 envisions: because
dialect definitions are introspectable data, "what can go here?"
questions become registry queries.  Three query families:

* :func:`complete_op_name` / :func:`complete_type_name` — prefix
  completion for operation and type/attribute names;
* :func:`signature_help` — the operand/result/attribute signature of an
  operation, rendered like an IDE signature popup;
* :func:`ops_accepting_type` — reverse lookup: which operations accept a
  value of a given type somewhere (drives "insert op here" tooling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.attributes import Attribute
from repro.ir.context import Context
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import ConstraintContext
from repro.irdl.defs import OpDef


@dataclass(frozen=True)
class Completion:
    """One completion item: the insert text plus a detail line."""

    text: str
    detail: str

    def __lt__(self, other: "Completion") -> bool:
        return self.text < other.text


def _all_op_defs(context: Context) -> list:
    defs = []
    for dialect in context.dialects.values():
        defs.extend(dialect.operations.values())
    return defs


def complete_op_name(context: Context, prefix: str) -> list[Completion]:
    """Operations whose qualified name starts with ``prefix``."""
    items = []
    for binding in _all_op_defs(context):
        if binding.qualified_name.startswith(prefix):
            items.append(
                Completion(binding.qualified_name, binding.summary or "")
            )
    return sorted(items)


def complete_type_name(context: Context, prefix: str) -> list[Completion]:
    """Types (``!``-namespace) whose qualified name starts with ``prefix``."""
    items = []
    for dialect in context.dialects.values():
        for binding in dialect.types.values():
            if binding.qualified_name.startswith(prefix):
                params = ", ".join(binding.parameter_names)
                detail = f"<{params}>" if params else ""
                items.append(Completion(f"!{binding.qualified_name}", detail))
    return sorted(items)


def complete_attr_name(context: Context, prefix: str) -> list[Completion]:
    """Attributes (``#``-namespace) matching a prefix."""
    items = []
    for dialect in context.dialects.values():
        for binding in dialect.attributes.values():
            if binding.qualified_name.startswith(prefix):
                items.append(
                    Completion(f"#{binding.qualified_name}", binding.summary)
                )
    return sorted(items)


def signature_help(context: Context, op_name: str) -> str | None:
    """An IDE-style one-line signature for an operation, or ``None``.

    Only available for IRDL-registered operations (native bindings carry
    no structured definition).
    """
    binding = context.get_op_def(op_name)
    op_def: OpDef | None = getattr(binding, "op_def", None)
    if binding is None or op_def is None:
        return None

    def render(args) -> str:
        parts = []
        for arg in args:
            text = f"{arg.name}: {arg.constraint!r}"
            if arg.variadicity is Variadicity.VARIADIC:
                text += "..."
            elif arg.variadicity is Variadicity.OPTIONAL:
                text += "?"
            parts.append(text)
        return ", ".join(parts)

    signature = f"{op_name}({render(op_def.operands)})"
    if op_def.results:
        signature += f" -> ({render(op_def.results)})"
    if op_def.attributes:
        signature += " {" + render(op_def.attributes) + "}"
    if op_def.is_terminator:
        signature += "  // terminator"
    return signature


def ops_accepting_type(context: Context, value_type: Attribute) -> list[str]:
    """Operations with an operand definition satisfied by ``value_type``."""
    matches = []
    for binding in _all_op_defs(context):
        op_def: OpDef | None = getattr(binding, "op_def", None)
        if op_def is None:
            continue
        for arg in op_def.operands:
            try:
                arg.constraint.verify(value_type, ConstraintContext())
            except Exception:
                continue
            matches.append(binding.qualified_name)
            break
    return sorted(matches)
