"""``irdl-opt``: a command-line driver in the style of ``mlir-opt``.

Registers dialects from IRDL files at runtime (§3: no recompilation),
then parses, verifies, optionally round-trips, and prints textual IR::

    irdl-opt --irdl cmath.irdl input.mlir
    irdl-opt --irdl cmath.irdl --verify-diagnostics bad.mlir
    irdl-opt --dump-dialect cmath.irdl          # introspect a definition
    irdl-opt --corpus-stats                     # §6 analyses on the corpus

The observability flags mirror MLIR's (``-mlir-timing``, pass
statistics)::

    irdl-opt --irdl cmath.irdl --patterns p.pattern --timing \\
             --pass-statistics --trace-out trace.json input.mlir

``--timing`` and ``--pass-statistics`` print reports to stderr so stdout
stays valid IR; ``--trace-out`` writes Chrome trace-event JSON viewable
in ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator

from repro.builtin import default_context
from repro.ir.exceptions import VerifyError
from repro.irdl.instantiate import load_irdl_file
from repro.textir.printer import print_op
from repro.utils.diagnostics import DiagnosticError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="irdl-opt",
        description="Parse, verify, and print IR with runtime-loaded "
        "IRDL dialects.",
    )
    parser.add_argument(
        "input",
        nargs="?",
        help="IR input file — textual or bytecode, autodetected by "
        "the magic number; '-' reads stdin",
    )
    parser.add_argument(
        "--irdl",
        action="append",
        default=[],
        metavar="FILE",
        help="register the dialects of an IRDL file — source text or a "
        "compiled --compile-irdl artifact, autodetected (repeatable); "
        "'-' reads stdin",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write output to FILE instead of stdout",
    )
    parser.add_argument(
        "--emit",
        choices=("text", "bytecode"),
        default="text",
        help="output format for the processed module (default: text)",
    )
    parser.add_argument(
        "--compile-irdl",
        metavar="FILE",
        help="compile an IRDL file to a dialects bytecode artifact "
        "(written to -o or stdout) and exit",
    )
    parser.add_argument(
        "--verify-diagnostics",
        action="store_true",
        help="expect verification to fail; exit 0 when it does",
    )
    parser.add_argument(
        "--dump-dialect",
        metavar="FILE",
        help="print a summary of the dialects in an IRDL file and exit",
    )
    parser.add_argument(
        "--corpus-stats",
        action="store_true",
        help="load the 28-dialect corpus and print the §6 analyses",
    )
    parser.add_argument(
        "--doc",
        metavar="FILE",
        help="render Markdown documentation for the dialects of an IRDL "
        "file and exit",
    )
    parser.add_argument(
        "--generate",
        metavar="N",
        type=int,
        help="generate N random, valid operations using the registered "
        "--irdl dialects and print the module",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --generate"
    )
    parser.add_argument(
        "--complete",
        metavar="PREFIX",
        help="list operations matching a name prefix (needs --irdl)",
    )
    parser.add_argument(
        "--recover-native",
        metavar="DIALECT",
        help="recover an IRDL definition from a natively implemented "
        "dialect (arith, func, math, cf) by probing its verifiers (§6.1)",
    )
    parser.add_argument(
        "--lint",
        action="append",
        default=[],
        metavar="FILE",
        help="lint the dialect definitions of an IRDL file and exit "
        "(repeatable; with --patterns the pattern files are linted too). "
        "Exit code: 0 clean, 1 warnings only, 2 any error",
    )
    parser.add_argument(
        "--lint-format",
        choices=("text", "json"),
        default="text",
        help="findings output format for --lint: human-readable text "
        "(default) or a stable JSON array with "
        "code/severity/subject/message/loc",
    )
    parser.add_argument(
        "--patterns",
        action="append",
        default=[],
        metavar="FILE",
        help="apply the declarative rewrite patterns of FILE (repeatable); "
        "dead pure ops are cleaned up afterwards",
    )
    parser.add_argument(
        "--validate-rewrites",
        action="store_true",
        help="re-check SSA dominance, def-use integrity, and the "
        "registered verifiers on the touched region after every "
        "--patterns application; a violation aborts with a diagnostic "
        "naming the offending pattern (exit code 1)",
    )
    parser.add_argument(
        "--analyze",
        action="append",
        default=[],
        metavar="NAME",
        choices=("constant-prop", "int-range"),
        help="run a sparse forward dataflow analysis over the input "
        "module and print its per-value report (repeatable; "
        "constant-prop or int-range). Runs after --patterns, so the "
        "report reflects the rewritten module",
    )
    parser.add_argument(
        "--emit-cfg",
        action="store_true",
        help="emit Graphviz DOT for the CFG of each region-bearing "
        "top-level op instead of textual IR",
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip verification"
    )
    parser.add_argument(
        "--parallel",
        nargs="?",
        const=0,
        type=int,
        metavar="N",
        help="verify with N worker processes sharded over the bytecode "
        "op-index section (bare --parallel sizes N to the CPU count); "
        "stdin, textual, and index-less inputs fall back to serial "
        "verification with a remark",
    )
    parser.add_argument(
        "--no-codegen",
        action="store_true",
        help="disable definition-time code generation: run the "
        "interpretive verifier plans and directive-list formats instead "
        "of the generated specializations (reference path)",
    )
    parser.add_argument(
        "--no-compiled-match",
        action="store_true",
        help="disable compiled pattern matching: run the round-based "
        "re-walk rewrite driver with interpretive pattern dispatch "
        "instead of the root-indexed matcher table and worklist "
        "(reference path)",
    )
    parser.add_argument(
        "--dump-generated",
        metavar="OP",
        help="print the generated Python verifier source for a "
        "registered operation (or type/attribute) and exit (needs "
        "--irdl)",
    )
    parser.add_argument(
        "--verify-each",
        action="store_true",
        help="verify the IR after each pass of the --patterns pipeline "
        "(the cost shows up as 'verify' rows under --timing)",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print an MLIR-style execution time report (per phase and "
        "per pass, with IR op-count deltas) to stderr",
    )
    parser.add_argument(
        "--pass-statistics",
        action="store_true",
        help="print pass statistics (pattern match attempts, rewrites, "
        "rounds to fixpoint) to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace-event JSON file of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the full metric catalog collected during the run to "
        "stderr",
    )
    parser.add_argument(
        "--remarks-out",
        metavar="FILE",
        help="write the optimization-remark stream (applied/missed "
        "patterns, per-pass summaries, verifier failures, lint findings) "
        "to FILE",
    )
    parser.add_argument(
        "--remark-filter",
        metavar="REGEX",
        help="only record remarks whose 'kind:origin/name' key matches "
        "REGEX (dropped remarks are tallied at the end of the stream)",
    )
    parser.add_argument(
        "--remark-format",
        choices=("text", "jsonl"),
        help="format of --remarks-out: human-readable text or JSON Lines "
        "(default: jsonl when FILE ends in .jsonl/.json, else text)",
    )
    parser.add_argument(
        "--print-locations",
        action="store_true",
        help="print a loc(...) suffix after every operation (file "
        "positions from the parser, fused locations from rewrites)",
    )
    return parser


class _Observation:
    """Per-invocation observability session driving the new flags."""

    def __init__(self, args: argparse.Namespace):
        self.args = args
        self.enabled = bool(
            args.timing or args.pass_statistics or args.trace_out
            or args.metrics or args.remarks_out
        )
        self.registry = None
        self.tracer = None
        self.remarks = None
        self.records: list = []
        self.manager = None
        if self.enabled:
            from repro.obs import (
                RemarkEngine,
                Tracer,
                enable_metrics,
                install_remarks,
                install_tracer,
            )

            self.registry = enable_metrics()
            if args.trace_out:
                self.tracer = install_tracer(Tracer(process_name="irdl-opt"))
            if args.remarks_out:
                self.remarks = install_remarks(
                    RemarkEngine(args.remark_filter)
                )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a pipeline phase and record it as a report row."""
        if not self.enabled:
            yield
            return
        from repro.obs import OBS, PassRunRecord, timing

        start = timing.now()
        with OBS.tracer.span(f"phase:{name}", category="irdl-opt"):
            yield
        self.records.append(PassRunRecord(name, timing.now() - start))

    def adopt_pass_records(self, manager) -> None:
        """Splice a PassManager's per-pass rows into the phase timeline."""
        self.manager = manager
        self.records.extend(manager.records)

    def finish(self) -> bool:
        """Emit the requested reports and tear down the global state.

        Returns False when a requested artifact (the trace file) could
        not be written, so the driver can fail the invocation.
        """
        if not self.enabled:
            return True
        from repro.obs import render_metrics, render_timing_report, reset

        ok = True
        try:
            if self.remarks is not None and self.tracer is not None:
                # Final per-kind tallies as one instant marker, so the
                # trace shows the remark totals next to the timeline.
                self.tracer.instant(
                    "remark-counts", category="remark",
                    **dict(self.remarks.counts),
                )
            if self.tracer is not None and self.args.trace_out:
                try:
                    self.tracer.write(self.args.trace_out)
                except OSError as err:
                    print(f"error: cannot write trace file: {err}",
                          file=sys.stderr)
                    ok = False
            if self.remarks is not None and self.args.remarks_out:
                fmt = self.args.remark_format
                if fmt is None:
                    fmt = (
                        "jsonl"
                        if self.args.remarks_out.endswith((".jsonl", ".json"))
                        else "text"
                    )
                try:
                    self.remarks.write(self.args.remarks_out, fmt)
                except OSError as err:
                    print(f"error: cannot write remarks file: {err}",
                          file=sys.stderr)
                    ok = False
            if self.args.timing and self.records:
                print(render_timing_report(self.records), file=sys.stderr)
            if self.args.pass_statistics and self.manager is not None:
                print(self.manager.statistics_report(), file=sys.stderr)
            if self.args.metrics and self.registry is not None:
                print(render_metrics(self.registry), file=sys.stderr)
        finally:
            reset()
        return ok


class _StdinOnce:
    """Reads stdin at most once per invocation.

    Both the IR input and ``--irdl`` accept ``-``; the bytes can only
    serve one of them, so a second read is a usage error rather than a
    silent empty payload.
    """

    def __init__(self) -> None:
        self._used_by: str | None = None

    def read(self, purpose: str) -> bytes:
        if self._used_by is not None:
            raise ValueError(
                f"'-' (stdin) already consumed by {self._used_by}; "
                f"it cannot also supply {purpose}"
            )
        self._used_by = purpose
        return sys.stdin.buffer.read()


def _write_output(data: str | bytes, output: str | None) -> None:
    """Write text or bytes to ``output``, defaulting to stdout."""
    if isinstance(data, bytes):
        if output is None:
            sys.stdout.buffer.write(data)
            sys.stdout.buffer.flush()
        else:
            with open(output, "wb") as handle:
                handle.write(data)
    else:
        if output is None:
            print(data)
        else:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write(data)
                if not data.endswith("\n"):
                    handle.write("\n")


def _emit_module(module, args: argparse.Namespace,
                 observation: "_Observation") -> int:
    """Print the module in the requested --emit format."""
    if args.emit == "bytecode":
        from repro.bytecode import encode_module

        with observation.phase("encode"):
            data = encode_module(module)
        _write_output(data, args.output)
        return 0
    with observation.phase("print"):
        text_out = print_op(module, print_locations=args.print_locations)
    _write_output(text_out, args.output)
    return 0


def compile_irdl(path: str, output: str | None) -> int:
    """Compile an IRDL file (text or bytecode) to a dialects artifact."""
    from repro.bytecode import decode_dialects, encode_dialects, is_bytecode
    from repro.irdl.parser import parse_irdl

    try:
        with open(path, "rb") as handle:
            raw = handle.read()
        if is_bytecode(raw):
            # Already compiled: decode and re-encode, which validates the
            # artifact and upgrades it to the current format version.
            decls = decode_dialects(raw, name=path)
        else:
            decls = parse_irdl(raw.decode("utf-8"), path)
        data = encode_dialects(decls)
    except (DiagnosticError, UnicodeDecodeError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    _write_output(data, output)
    return 0


def dump_dialect(path: str) -> int:
    from repro.ir.context import Context

    ctx = default_context()
    try:
        defs = load_irdl_file(ctx, path)
    except DiagnosticError as err:
        print(err, file=sys.stderr)
        return 1
    for dialect in defs:
        print(f"Dialect {dialect.name}:")
        for type_def in dialect.types:
            params = ", ".join(p.name for p in type_def.parameters)
            print(f"  Type {type_def.name}({params})")
        for attr_def in dialect.attributes:
            params = ", ".join(p.name for p in attr_def.parameters)
            print(f"  Attribute {attr_def.name}({params})")
        for op in dialect.operations:
            parts = [
                f"{len(op.operands)} operands",
                f"{len(op.results)} results",
            ]
            if op.attributes:
                parts.append(f"{len(op.attributes)} attributes")
            if op.regions:
                parts.append(f"{len(op.regions)} regions")
            if op.is_terminator:
                parts.append("terminator")
            print(f"  Operation {op.name}: {', '.join(parts)}")
    return 0


def corpus_stats() -> int:
    from repro.analysis import CorpusStats, analyze_expressiveness
    from repro.analysis.history import MLIR_HISTORY
    from repro.analysis.report import (
        render_fig3,
        render_fig4,
        render_fig5,
        render_fig6,
        render_fig7,
        render_fig8,
        render_fig9_10,
        render_fig11,
        render_fig12,
        render_table1,
    )
    from repro.corpus import load_corpus, paper_data

    _, defs = load_corpus()
    stats = CorpusStats.of(defs)
    report = analyze_expressiveness(defs)
    print(render_table1(sorted(paper_data.TABLE1.items())))
    print(render_fig3(MLIR_HISTORY))
    print(render_fig4(stats))
    print(render_fig5(stats))
    print(render_fig6(stats))
    print(render_fig7(stats))
    print(render_fig8(report))
    print(render_fig9_10(report))
    print(render_fig11(report))
    print(render_fig12(report))
    return 0


def render_docs(path: str) -> int:
    from repro.analysis.docgen import render_dialect_doc

    ctx = default_context()
    try:
        defs = load_irdl_file(ctx, path)
    except DiagnosticError as err:
        print(err, file=sys.stderr)
        return 1
    for dialect in defs:
        print(render_dialect_doc(dialect))
    return 0


def lint_files(
    paths: list[str],
    pattern_paths: list[str] | None = None,
    output_format: str = "text",
) -> int:
    """Lint IRDL files (and optionally pattern files) and report.

    Exit code: 0 when clean (at most notes), 1 when the worst finding
    is a warning, 2 when any error is found (including files that fail
    to parse or register).
    """
    from repro.analysis.sat import SatEngine
    from repro.ir.context import Context
    from repro.irdl.instantiate import register_dialect
    from repro.irdl.parser import parse_irdl
    from repro.tools.lint import (
        exit_code,
        findings_to_json,
        lint_dialect,
        lint_patterns,
        render_findings,
    )

    engine = SatEngine()
    findings = []
    try:
        parsed = []
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                parsed.append(parse_irdl(handle.read(), path))
        # Self-contained dialect sets (e.g. the corpus, whose
        # builtin.irdl redefines the natively-registered builtin
        # dialect) are linted in a bare context; everything else gets
        # the default context so builtin types resolve.
        ctx = default_context()
        if any(decl.name in ctx.dialects
               for decls in parsed for decl in decls):
            ctx = Context()
        for decls in parsed:
            for decl in decls:
                dialect = register_dialect(ctx, decl)
                findings.extend(lint_dialect(dialect, decl, engine=engine))
        for path in pattern_paths or []:
            with open(path, encoding="utf-8") as handle:
                findings.extend(
                    lint_patterns(ctx, handle.read(), path, engine=engine)
                )
    except DiagnosticError as err:
        print(err, file=sys.stderr)
        return 2
    from repro.obs import OBS

    remarks = OBS.remarks
    if remarks.enabled:
        for finding in findings:
            remarks.emit(
                "lint",
                origin="lint",
                name=finding.code,
                op=finding.subject,
                location=_lint_location(finding.loc),
                message=finding.message,
                severity=finding.severity,
            )
    if output_format == "json":
        print(findings_to_json(findings), end="")
    else:
        print(render_findings(findings), end="")
    return exit_code(findings)


def _lint_location(loc: str):
    """Parse a lint finding's ``file:line:col`` string into a Location."""
    from repro.ir.location import UNKNOWN_LOC, FileLineColLoc

    if not loc:
        return UNKNOWN_LOC
    filename, _, rest = loc.rpartition(":")
    filename, _, line = filename.rpartition(":")
    if not filename or not line.isdigit() or not rest.isdigit():
        return UNKNOWN_LOC
    return FileLineColLoc(filename, int(line), int(rest))


def dump_generated(ctx, name: str) -> int:
    """Print the generated verifier source for one definition."""
    binding = ctx.get_op_def(name)
    if binding is not None:
        verifier = getattr(binding, "_verifier", None)
        source = getattr(verifier, "generated_source", None)
        if source is None:
            print(f"error: no generated verifier for {name!r} "
                  "(codegen disabled or definition fell back to the "
                  "interpretive plan)", file=sys.stderr)
            return 1
        print(source, end="")
        return 0
    attr_binding = ctx.get_type_or_attr_def(name)
    if attr_binding is not None:
        source = getattr(attr_binding, "generated_param_source", None)
        if source is None:
            print(f"error: no generated parameter verifier for {name!r} "
                  "(codegen disabled or definition fell back to the "
                  "interpretive path)", file=sys.stderr)
            return 1
        print(source, end="")
        return 0
    print(f"error: unknown operation or type {name!r}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    # Scope the reference-path switches to this invocation so embedding
    # callers (tests, notebooks) do not observe globally disabled
    # compilation afterwards.
    toggles = []
    if args.no_codegen:
        from repro.irdl import codegen

        toggles.append(codegen.set_enabled)
    if args.no_compiled_match:
        from repro.rewriting import matcher

        toggles.append(matcher.set_enabled)
    if not toggles:
        return _main(args)
    for toggle in toggles:
        toggle(False)
    try:
        return _main(args)
    finally:
        for toggle in toggles:
            toggle(True)


def _main(args: argparse.Namespace) -> int:
    if args.compile_irdl:
        return compile_irdl(args.compile_irdl, args.output)
    if args.dump_dialect:
        return dump_dialect(args.dump_dialect)
    if args.corpus_stats:
        return corpus_stats()
    if args.doc:
        return render_docs(args.doc)
    if args.recover_native:
        from repro.irdl.recover import recover_dialect_source

        try:
            print(recover_dialect_source(default_context(),
                                         args.recover_native))
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        return 0

    observation = _Observation(args)
    try:
        if args.lint:
            # Inside the observation scope so --lint composes with
            # --remarks-out (findings stream as "lint" remarks).
            exit_code = lint_files(args.lint, args.patterns,
                                   args.lint_format)
        else:
            exit_code = _run_pipeline(args, observation)
    except DiagnosticError as err:
        # An uncaught diagnostic: dump the flight recorder so the
        # events leading up to the failure are not lost.
        _dump_flight_recorder()
        print(err, file=sys.stderr)
        exit_code = 1
    finally:
        finished = observation.finish()
    return exit_code if finished else 1


def _dump_flight_recorder() -> None:
    """Print the event-ring snapshot to stderr, one JSON object per line."""
    import json

    from repro.obs import recent_events

    events = recent_events()
    if not events:
        return
    print(f"--- flight recorder ({len(events)} event(s), oldest first) ---",
          file=sys.stderr)
    for event in events:
        print(json.dumps(event, sort_keys=True, default=str),
              file=sys.stderr)


def _parallel_fallback(reason: str) -> None:
    """Record why --parallel degraded to serial verification.

    The remark makes the decision visible in --remarks-out streams; the
    stderr note covers runs without observability enabled.
    """
    from repro.obs import OBS

    if OBS.remarks.enabled:
        OBS.remarks.emit(
            "missed",
            origin="bytecode",
            name="lazy-fallback",
            message=reason,
        )
    print(f"note: --parallel: {reason}; verifying serially",
          file=sys.stderr)


def _parallel_verify(args: argparse.Namespace, raw: bytes,
                     dialect_payloads: list[bytes]):
    """Run sharded verification when the input supports it.

    Returns a :class:`~repro.parallel.VerifyReport`, or ``None`` when
    the input cannot take the lazy/mmap path (stdin, textual IR, or an
    artifact without the op-index section) — the caller then verifies
    the already-decoded module serially.
    """
    from repro.bytecode import is_bytecode

    if args.input == "-":
        _parallel_fallback("input is stdin (non-seekable)")
        return None
    if not is_bytecode(raw):
        _parallel_fallback("input is textual IR, not indexed bytecode")
        return None
    from repro.bytecode import BytecodeError
    from repro.parallel import shard_verify_file

    try:
        return shard_verify_file(
            args.input,
            workers=args.parallel,
            dialect_payloads=dialect_payloads,
        )
    except BytecodeError as err:
        if "op-index" in str(err):
            _parallel_fallback("artifact has no op-index section")
            return None
        raise


def _run_pipeline(args: argparse.Namespace, observation: _Observation) -> int:
    # The CLI and the dialect server share the Session pipeline object,
    # so an invocation here exercises exactly the code path a server
    # request does (see repro.server.session).
    from repro.server.session import Session

    session = Session()
    ctx = session.ctx
    stdin = _StdinOnce()
    # The raw --irdl payloads are retained so --parallel workers can
    # rebuild an identical context in their own processes.
    dialect_payloads: list[bytes] = []
    with observation.phase("register-dialects"):
        for irdl_path in args.irdl:
            try:
                if irdl_path == "-":
                    payload = stdin.read("--irdl")
                    session.register_dialect_data(payload, "<stdin>")
                else:
                    with open(irdl_path, "rb") as handle:
                        payload = handle.read()
                    session.register_dialect_data(payload, irdl_path)
                dialect_payloads.append(payload)
            except DiagnosticError as err:
                print(err, file=sys.stderr)
                return 1
            except OSError as err:
                print(f"error: cannot read {irdl_path}: {err}",
                      file=sys.stderr)
                return 1
            except ValueError as err:
                print(f"error: {err}", file=sys.stderr)
                return 1
    registered = session.dialects

    if args.dump_generated is not None:
        return dump_generated(ctx, args.dump_generated)

    if args.complete is not None:
        from repro.tools.completion import complete_op_name

        for item in complete_op_name(ctx, args.complete):
            detail = f"  — {item.detail}" if item.detail else ""
            print(f"{item.text}{detail}")
        return 0

    if args.generate is not None:
        from repro.irdl.instantiate import register_irdl
        from repro.irdl.irgen import IRGenerator, seed_values_dialect

        registered.extend(register_irdl(ctx, seed_values_dialect()))
        generator = IRGenerator(ctx, registered, seed=args.seed)
        module = generator.generate_module(args.generate)
        module.verify()
        return _emit_module(module, args, observation)

    if args.input is None:
        print("error: no input file", file=sys.stderr)
        return 1

    from repro.bytecode import is_bytecode

    input_name = "<stdin>" if args.input == "-" else args.input
    try:
        if args.input == "-":
            raw = stdin.read("the IR input")
        else:
            with open(args.input, "rb") as handle:
                raw = handle.read()
    except OSError as err:
        print(f"error: cannot read {args.input}: {err}", file=sys.stderr)
        return 1
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    try:
        with observation.phase("decode" if is_bytecode(raw) else "parse"):
            module = session.load_module(raw, input_name)
    except DiagnosticError as err:
        print(err, file=sys.stderr)
        return 1
    except VerifyError as err:
        # Declarative formats may instantiate types while parsing; a
        # parameter-constraint failure there surfaces as a VerifyError.
        print(f"error: {err}", file=sys.stderr)
        return 1
    except UnicodeDecodeError as err:
        print(f"error: {input_name} is neither bytecode nor UTF-8 text: "
              f"{err}", file=sys.stderr)
        return 1

    if not args.no_verify:
        report = None
        if args.parallel is not None:
            with observation.phase("verify-parallel"):
                report = _parallel_verify(args, raw, dialect_payloads)
        if report is not None:
            if report.diagnostics:
                first = report.diagnostics[0]
                if args.verify_diagnostics:
                    print(f"verification failed as expected: "
                          f"{first.message}")
                    return 0
                for diag in report.diagnostics:
                    print(f"error: verification failed: op "
                          f"#{diag.entry_index} ({diag.op_name}): "
                          f"{diag.message}", file=sys.stderr)
                return 1
            if args.verify_diagnostics:
                print("error: expected verification to fail",
                      file=sys.stderr)
                return 1
        else:
            try:
                with observation.phase("verify"):
                    session.verify(module)
            except VerifyError as err:
                if args.verify_diagnostics:
                    print(f"verification failed as expected: {err}")
                    return 0
                print(f"error: verification failed: {err}", file=sys.stderr)
                return 1
            if args.verify_diagnostics:
                print("error: expected verification to fail",
                      file=sys.stderr)
                return 1

    if args.patterns:
        all_patterns = []
        for patterns_path in args.patterns:
            with open(patterns_path, encoding="utf-8") as handle:
                try:
                    all_patterns.extend(
                        session.parse_pattern_text(
                            handle.read(), patterns_path
                        )
                    )
                except DiagnosticError as err:
                    print(err, file=sys.stderr)
                    return 1
        try:
            manager = session.run_patterns(
                module, all_patterns, verify_each=args.verify_each,
                validate_rewrites=args.validate_rewrites,
            )
        except VerifyError as err:
            # --validate-rewrites (or --verify-each) caught a rewrite
            # breaking an SSA invariant mid-pipeline.
            print(f"error: {err}", file=sys.stderr)
            return 1
        observation.adopt_pass_records(manager)
        if not args.no_verify:
            with observation.phase("verify-output"):
                try:
                    session.verify(module)
                except VerifyError as err:
                    print(f"error: verification failed after rewriting: "
                          f"{err}", file=sys.stderr)
                    return 1

    if args.analyze:
        from repro.analysis.dataflow import (
            ANALYSES,
            render_dataflow_report,
            run_sparse_forward,
        )

        for analysis_name in args.analyze:
            with observation.phase(f"analyze-{analysis_name}"):
                result = run_sparse_forward(ANALYSES[analysis_name](), module)
            print(render_dataflow_report(result))
        return 0

    if args.emit_cfg:
        from repro.analysis.dot import cfg_to_dot

        for op in module.walk():
            if op is module or not op.regions:
                continue
            label = op.attributes.get("sym_name")
            name = getattr(label, "data", op.name)
            for index, region in enumerate(op.regions):
                print(cfg_to_dot(region, f"{name}.{index}"))
        return 0

    return _emit_module(module, args, observation)


if __name__ == "__main__":
    sys.exit(main())
