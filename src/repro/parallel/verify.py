"""Multiprocessing-sharded verification over indexed bytecode.

The driver partitions a module's top-level operations across worker
processes using the bytecode op-index section.  Each worker rebuilds a
fresh :class:`~repro.ir.context.Context` from the same dialect payloads
the parent registered (IRDL text or compiled IRBC — both are plain
``bytes`` and pickle cheaply), mmaps the artifact, and forces only its
shard's subtrees.  Cross-shard operand references materialize as typed
placeholder values, which is sound here because verification is
op-local: operand *types* are what constraint programs check, and the
use-def bookkeeping is consistent for placeholders too.

Diagnostics carry the top-level entry index, so the merge is a sort —
the output order and messages are identical to running
:func:`verify_module_serial` over the eagerly-decoded module, which the
differential tests assert across the corpus.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ir.exceptions import VerifyError
from repro.ir.operation import Operation
from repro.obs.instrument import OBS

#: Hard ceiling on worker processes; requests above it are clamped.
MAX_WORKERS = 64


@dataclass(frozen=True)
class VerifyDiagnostic:
    """One verification failure, anchored to a top-level op."""

    entry_index: int
    op_name: str
    message: str


@dataclass
class VerifyReport:
    """The outcome of a (possibly sharded) verification run."""

    diagnostics: list[VerifyDiagnostic] = field(default_factory=list)
    ops: int = 0
    workers: int = 1
    shards: int = 1

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def effective_workers(requested: int) -> int:
    """Resolve a ``--parallel[=N]`` request to a worker count.

    ``0`` (bare ``--parallel``) means "one per CPU"; anything else is
    clamped to ``[1, MAX_WORKERS]``.
    """
    if requested <= 0:
        requested = os.cpu_count() or 1
    return max(1, min(requested, MAX_WORKERS))


def partition_entries(
    weights: list[int] | tuple[int, ...], shards: int
) -> list[tuple[int, int]]:
    """Split entry indices into ≤ ``shards`` contiguous ``(start, end)``
    ranges balanced by weight (per-subtree op count).

    Contiguity keeps the merge a stable sort and lets each worker walk
    its region of the OPS payload mostly sequentially through the mmap.
    Every range is non-empty; fewer ranges than ``shards`` come back
    when there are fewer entries than shards.
    """
    n = len(weights)
    if n == 0:
        return []
    shards = max(1, min(shards, n))
    ranges: list[tuple[int, int]] = []
    start = 0
    remaining = sum(weights)
    for shard in range(shards):
        left = shards - shard
        if left == 1:
            ranges.append((start, n))
            break
        target = remaining / left
        end, acc = start, 0
        # Leave at least one entry for each shard still to come.
        while end < n - (left - 1) and (end == start or acc < target):
            acc += weights[end]
            end += 1
        ranges.append((start, end))
        remaining -= acc
        start = end
    return ranges


def verify_module_serial(root: Operation) -> VerifyReport:
    """The serial reference: verify each top-level op, collect failures.

    Unlike ``root.verify()`` (which raises on the first violation), this
    walks every top-level op of every region of ``root`` and records all
    failures — the exact semantics the sharded driver reproduces, so the
    two are diff-testable.  The root op itself is not verified; it is
    the container, not part of any shard.
    """
    report = VerifyReport()
    entry = 0
    for region in root.regions:
        for block in region.blocks:
            for op in block.ops:
                try:
                    op.verify()
                except VerifyError as err:
                    report.diagnostics.append(
                        VerifyDiagnostic(entry, op.name, str(err))
                    )
                entry += 1
    report.ops = entry
    return report


def _build_context(base: str, payloads: list[bytes]):
    """Rebuild a verification context from pickled dialect payloads."""
    from repro.server.session import Session

    if base == "bare":
        from repro.ir.context import Context

        session = Session(Context())
    else:
        session = Session()
    for i, payload in enumerate(payloads):
        session.register_dialect_data(payload, f"<shard-dialect-{i}>")
    return session.ctx


def _run_shard(task: dict) -> dict:
    """Verify one contiguous shard of top-level ops.

    Module-level and dict-in/dict-out so it pickles under every
    multiprocessing start method; exceptions are flattened to strings
    because ``DiagnosticError`` subclasses do not all survive pickling.
    """
    try:
        from repro.bytecode.lazy import LazyModuleReader

        context = _build_context(task["base"], task["payloads"])
        diags: list[tuple[int, str, str]] = []
        with LazyModuleReader.open(context, task["path"]) as reader:
            for index in range(task["start"], task["end"]):
                handle = reader.handles[index]
                op = handle.force()
                try:
                    op.verify()
                except VerifyError as err:
                    diags.append((index, op.name, str(err)))
        return {"diags": diags}
    except Exception as err:  # noqa: BLE001 — crossing a process boundary
        return {"error": f"{type(err).__name__}: {err}"}


def _mp_context():
    """Prefer ``fork`` (cheap, inherits the imported interpreter);
    fall back to the platform default where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def shard_verify_file(
    path: str,
    *,
    workers: int = 0,
    dialect_payloads: list[bytes] | None = None,
    base: str = "default",
) -> VerifyReport:
    """Verify an indexed bytecode module with sharded worker processes.

    ``path`` must be a seekable bytecode artifact carrying the op-index
    section (raises :class:`~repro.bytecode.wire.BytecodeError` through
    the lazy reader otherwise — callers that want an eager fallback
    check ``LazyModuleReader.lazy`` themselves).  ``dialect_payloads``
    are raw IRDL payloads (text or IRBC) re-registered inside each
    worker on top of ``base`` (``"default"`` for the builtin context,
    ``"bare"`` for an empty one).  ``workers=0`` means one per CPU;
    ``workers=1`` runs the identical shard code in-process.

    Returns a :class:`VerifyReport` whose diagnostics are sorted by
    top-level entry index — the same order and messages the serial
    reference produces.
    """
    import time

    payloads = list(dialect_payloads or [])
    workers = effective_workers(workers)
    start_time = time.perf_counter()
    span = (
        OBS.tracer.span("parallel.verify", category="parallel")
        if OBS.active
        else None
    )
    if span is not None:
        span.__enter__()
    try:
        # One cheap open in the parent fetches the per-entry op counts
        # that drive the balanced partition.
        from repro.bytecode.lazy import LazyModuleReader

        context = _build_context(base, payloads)
        with LazyModuleReader.open(context, path) as reader:
            if not reader.lazy:
                from repro.bytecode.wire import BytecodeError

                raise BytecodeError(
                    "module has no op-index section; sharded "
                    "verification requires an indexed artifact",
                    source_name=path,
                )
            weights = [h.op_count for h in reader.handles]
        ranges = partition_entries(weights, workers)
        tasks = [
            {
                "path": path,
                "payloads": payloads,
                "base": base,
                "start": lo,
                "end": hi,
            }
            for lo, hi in ranges
        ]
        if workers <= 1 or len(tasks) <= 1:
            results = [_run_shard(task) for task in tasks]
        else:
            mp = _mp_context()
            with mp.Pool(processes=len(tasks)) as pool:
                results = pool.map(_run_shard, tasks)
        merged: list[VerifyDiagnostic] = []
        for result in results:
            if "error" in result:
                raise VerifyError(
                    f"sharded verification worker failed: {result['error']}"
                )
            merged.extend(
                VerifyDiagnostic(*diag) for diag in result["diags"]
            )
        merged.sort(key=lambda d: d.entry_index)
        report = VerifyReport(
            diagnostics=merged,
            ops=len(weights),
            workers=workers,
            shards=len(tasks),
        )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    if OBS.active and OBS.metrics.enabled:
        metrics = OBS.metrics
        metrics.counter("parallel.verify.runs").inc()
        metrics.counter("parallel.verify.ops").inc(report.ops)
        metrics.counter("parallel.verify.diagnostics").inc(
            len(report.diagnostics)
        )
        metrics.histogram("parallel.verify.workers").observe(report.workers)
        metrics.histogram("parallel.verify.shards").observe(report.shards)
        metrics.timer("parallel.verify.time").record(
            time.perf_counter() - start_time
        )
    return report
