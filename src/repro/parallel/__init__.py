"""``repro.parallel``: multiprocessing-sharded IR processing.

Verification of a large module is embarrassingly parallel at the
top-level-op granularity: :meth:`Operation.verify` only inspects the
op's own subtree and use-def links, so disjoint top-level subtrees can
be checked in separate OS processes.  This package pairs that
observation with the bytecode op-index section — each worker mmaps the
artifact, decodes the shared tables once, and forces *only its shard's
subtrees* through :class:`~repro.bytecode.lazy.LazyModuleReader`, so
no process ever materializes the whole module.

Diagnostics are merged back in deterministic top-level-op order and
are byte-for-byte identical to the serial reference
(:func:`verify_module_serial`), which the differential tests pin.
"""

from repro.parallel.verify import (
    VerifyDiagnostic,
    VerifyReport,
    partition_entries,
    shard_verify_file,
    verify_module_serial,
)

__all__ = [
    "VerifyDiagnostic",
    "VerifyReport",
    "partition_entries",
    "shard_verify_file",
    "verify_module_serial",
]
