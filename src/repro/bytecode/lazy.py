"""Lazy module loading over the op-index section.

A :class:`LazyModuleReader` decodes a module artifact's *tables* — the
string table, the attribute pool, the location pool — plus the root
operation's shell (its attributes, regions, blocks, and block
arguments), but leaves every top-level op as an unread byte range
described by the op-index section (``SECTION_OP_INDEX``).  Each range is
exposed as a :class:`LazyOpHandle`; :meth:`LazyOpHandle.force` decodes
exactly that subtree and splices it into the root shell, producing — op
for op, value for value, location for location — the graph the eager
:func:`~repro.bytecode.decoder.decode_module` builds.

:meth:`LazyModuleReader.open` maps the file with :mod:`mmap`, so opening
a million-op artifact touches only the table pages; op pages fault in as
handles are forced.  Artifacts without an index section (from older
writers, or ``encode_module(..., index=False)``) fall back to one eager
decode behind pre-materialized handles, so callers never branch on the
artifact's vintage.

Robustness contract: like the eager decoder, every failure — truncated
index entries, offsets that disagree with the op stream, value spans
that do not reconcile — surfaces as :class:`BytecodeError`, never a raw
``IndexError``/``ValueError``.
"""

from __future__ import annotations

import mmap
from bisect import bisect_left, insort
from typing import Any, Callable

from repro.bytecode import encoder as enc
from repro.bytecode.decoder import (
    _AttrTable,
    _ModuleReader,
    _read_header,
    _read_sections,
    _read_string_table,
    _require_section,
    _StringTable,
)
from repro.bytecode.wire import KIND_MODULE, BytecodeError, Reader
from repro.ir.attributes import Attribute
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.location import FileLineColLoc, FusedLoc, Location
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.value import SSAValue
from repro.obs.instrument import OBS


def _parse_index(index: Reader) -> list[tuple[int, int, int]]:
    """Decode the op-index payload: ``n`` then 3 varints per entry
    (byte length, value count, subtree op count).

    A module can carry millions of entries, so this is a tight local
    LEB128 loop over one contiguous buffer rather than per-field
    ``Reader.varint`` calls — the open-time cost per entry is what the
    ``bytecode.lazy.open_time`` budget is spent on.
    """
    buf = index.data[index.pos:index.end]
    if not isinstance(buf, bytes):
        buf = bytes(buf)
    end = len(buf)
    pos = 0
    values: list[int] = []
    append = values.append
    while pos < end:
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            append(byte)
            continue
        result = byte & 0x7F
        shift = 7
        while True:
            if pos >= end:
                raise index.error("truncated varint in op index")
            if shift > 63:
                raise index.error("varint too long in op index")
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        append(result)
    if not values:
        raise index.error("empty op-index section")
    count = values[0]
    if len(values) - 1 != count * 3:
        raise index.error(
            f"op index declares {count} entries but carries "
            f"{len(values) - 1} fields"
        )
    index.pos = index.end
    it = iter(values[1:])
    return list(zip(it, it, it))


def _wrapped(name: str, fn: Callable[[], Any]) -> Any:
    """Run ``fn``, converting unexpected escapes into BytecodeError."""
    try:
        return fn()
    except BytecodeError:
        raise
    except Exception as err:
        raise BytecodeError(
            f"malformed bytecode: {type(err).__name__}: {err}", name
        ) from err


class _LazyValueTable:
    """The module-wide SSA value numbering, defined out of order.

    The eager decoder's value table assigns indices by arrival order;
    here every definition carries its explicit global index (each
    handle's subtree owns the contiguous ``[value_start, value_start +
    value_count)`` range the encoder recorded).  Cross-shard operand
    references resolve to typed placeholders that are patched via
    ``replace_all_uses_with`` when the defining handle is forced — the
    same forward-reference mechanism the eager decoder uses within one
    stream.
    """

    __slots__ = ("total", "defined", "placeholders", "reader")

    def __init__(self, total: int, reader: Reader):
        self.total = total
        self.defined: dict[int, SSAValue] = {}
        self.placeholders: dict[int, SSAValue] = {}
        self.reader = reader

    def define_at(self, index: int, value: SSAValue) -> None:
        if index >= self.total:
            raise self.reader.error(
                f"op stream defines value {index}, beyond the declared "
                f"{self.total} values"
            )
        if index in self.defined:
            raise self.reader.error(f"value {index} defined twice")
        self.defined[index] = value
        placeholder = self.placeholders.pop(index, None)
        if placeholder is not None:
            if placeholder.type != value.type:
                raise self.reader.error(
                    f"value {index} was forward-referenced with type "
                    f"{placeholder.type} but defined with type {value.type}"
                )
            placeholder.replace_all_uses_with(value)

    def operand(self, index: int, value_type: Attribute) -> SSAValue:
        value = self.defined.get(index)
        if value is not None:
            if value.type != value_type:
                raise self.reader.error(
                    f"operand references value {index} as {value_type}, "
                    f"but it has type {value.type}"
                )
            return value
        placeholder = self.placeholders.get(index)
        if placeholder is None:
            placeholder = self.placeholders[index] = SSAValue(value_type)
        elif placeholder.type != value_type:
            raise self.reader.error(
                f"conflicting forward-reference types for value {index}: "
                f"{placeholder.type} vs {value_type}"
            )
        return placeholder

    def finish(self) -> None:
        if self.placeholders:
            missing = sorted(self.placeholders)
            raise self.reader.error(
                f"operands reference undefined values {missing}"
            )


class _ShardValues:
    """Adapter presenting one handle's value span as an eager table.

    :class:`~repro.bytecode.decoder._ModuleReader` defines values by
    arrival order; within one subtree that order is exactly the global
    pre-order starting at ``value_start``, so a cursor over the span
    translates sequential ``define`` calls into explicit global indices.
    """

    __slots__ = ("table", "cursor", "end", "reader")

    def __init__(self, table: _LazyValueTable, start: int, end: int,
                 reader: Reader):
        self.table = table
        self.cursor = start
        self.end = end
        self.reader = reader

    @property
    def total(self) -> int:
        return self.table.total

    def define(self, value: SSAValue) -> None:
        if self.cursor >= self.end:
            raise self.reader.error(
                "op defines more values than its index entry declared"
            )
        self.table.define_at(self.cursor, value)
        self.cursor += 1

    def operand(self, index: int, value_type: Attribute) -> SSAValue:
        return self.table.operand(index, value_type)


class LazyOpHandle:
    """One top-level op of a lazily opened module.

    Holds the op's byte span and spans of the module-wide value and
    walk numberings; :meth:`force` decodes the subtree (idempotently)
    and attaches it to the root shell at its original position.
    """

    __slots__ = ("reader", "index", "byte_offset", "byte_length",
                 "value_start", "value_count", "op_count", "walk_start",
                 "block", "block_position", "op")

    def __init__(self, reader: "LazyModuleReader", index: int,
                 byte_offset: int, byte_length: int, value_start: int,
                 value_count: int, op_count: int, walk_start: int,
                 block: Block, block_position: int):
        self.reader = reader
        self.index = index
        self.byte_offset = byte_offset
        self.byte_length = byte_length
        self.value_start = value_start
        self.value_count = value_count
        self.op_count = op_count
        self.walk_start = walk_start
        self.block = block
        self.block_position = block_position
        self.op: Operation | None = None

    @property
    def materialized(self) -> bool:
        return self.op is not None

    @property
    def name(self) -> str:
        """The op name, peeked from the first bytes of the span."""
        if self.op is not None:
            return self.op.name
        return _wrapped(self.reader.name, self._peek_name)

    def _peek_name(self) -> str:
        sub = self.reader._span_reader(self)
        return self.reader._strings.get(sub)

    def force(self) -> Operation:
        """Materialize this op (and its regions); idempotent."""
        if self.op is not None:
            return self.op
        return _wrapped(self.reader.name, lambda: self.reader._force(self))

    def __repr__(self) -> str:
        state = "materialized" if self.op is not None else "lazy"
        return (f"<LazyOpHandle #{self.index} {self.name!r} "
                f"{self.byte_length}B {state}>")


class LazyModuleReader:
    """Materializes a module artifact's top-level ops on demand.

    Construct over in-memory ``bytes`` (or any buffer: an ``mmap``
    works), or use :meth:`open` to map a file.  ``reader.handles`` lists
    one :class:`LazyOpHandle` per top-level op; ``reader.root`` is the
    root shell those handles attach to; :meth:`module` forces everything
    and returns the complete graph — identical to what the eager decoder
    would have produced.  Usable as a context manager; :meth:`close`
    releases the mapping (forcing after close raises
    :class:`BytecodeError`).
    """

    def __init__(self, context: Context, data, *,
                 name: str = "<bytecode>", _close: Callable[[], None] | None = None):
        self.context = context
        self.data = data
        self.name = name
        self._close = _close
        self._closed = False
        self.lazy = False
        self.root: Operation | None = None
        self.handles: list[LazyOpHandle] = []
        self._strings: _StringTable | None = None
        self._attrs: _AttrTable | None = None
        self._values: _LazyValueTable | None = None
        self._ops_payload_start = 0
        self._locations: dict[int, Location] = {}
        #: Per block: sorted original positions of already-forced ops,
        #: so a force's insertion index is one bisect, not a sibling
        #: scan (out-of-order forcing must not be quadratic).
        self._forced_positions: dict[int, list[int]] = {}
        self._total_walk = 0
        import time

        start = time.perf_counter()
        with OBS.tracer.span("bytecode.lazy.open", category="bytecode"):
            _wrapped(name, self._open)
        metrics = OBS.metrics
        if metrics.enabled:
            metrics.counter("bytecode.lazy.opens").inc()
            if self.lazy:
                metrics.counter("bytecode.lazy.ops_indexed").inc(
                    len(self.handles)
                )
            else:
                metrics.counter("bytecode.lazy.fallbacks").inc()
            metrics.timer("bytecode.lazy.open_time").record(
                time.perf_counter() - start
            )

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, context: Context, path: str) -> "LazyModuleReader":
        """Map ``path`` with :mod:`mmap` and open it lazily."""
        try:
            handle = open(path, "rb")
        except OSError as err:
            raise BytecodeError(f"cannot open file: {err}", path) from err
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as err:
            handle.close()
            raise BytecodeError(f"cannot mmap file: {err}", path) from err

        def close() -> None:
            mapped.close()
            handle.close()

        return cls(context, mapped, name=path, _close=close)

    def _open(self) -> None:
        reader = Reader(self.data, self.name)
        _read_header(reader, KIND_MODULE)
        sections = _read_sections(reader)
        index = sections.get(enc.SECTION_OP_INDEX)
        if index is None:
            self._open_eager()
            return
        self.lazy = True
        self._strings = _StringTable(_read_string_table(sections, self.name))
        self._attrs = _AttrTable(self.context)
        self._attrs.load(
            _require_section(
                sections, enc.SECTION_ATTRS, "attribute", self.name
            ),
            self._strings,
        )
        ops = _require_section(sections, enc.SECTION_OPS, "op", self.name)
        self._ops_payload_start = ops.pos
        total = ops.varint()
        self._values = _LazyValueTable(total, ops)
        self._read_shell(ops, index)
        locations = sections.get(enc.SECTION_LOCATIONS)
        if locations is not None:
            self._load_locations(locations)
            root_loc = self._locations.get(0)
            if root_loc is not None:
                self.root.location = root_loc

    def _open_eager(self) -> None:
        """No index section: decode everything once, wrap it in handles."""
        from repro.bytecode.decoder import decode_module

        root = decode_module(self.context, self.data, name=self.name)
        self.root = root
        for region in root.regions:
            for block in region.blocks:
                for position, op in enumerate(block.ops):
                    handle = LazyOpHandle(
                        self, len(self.handles), 0, 0, 0, 0,
                        sum(1 for _ in op.walk()), 0, block, position,
                    )
                    handle.op = op
                    self.handles.append(handle)

    # ------------------------------------------------------------------
    # Shell decoding
    # ------------------------------------------------------------------

    def _read_shell(self, ops: Reader, index: Reader) -> None:
        """Decode the root op minus its children, validating the index.

        Byte spans tile each block's run of the op stream and value
        spans tile the numbering, so both starts are reconstructed as
        prefix sums; the run totals are checked against the section
        bounds and the declared value count here, and each span is
        reconciled op-by-op when its handle is forced — a corrupt index
        always surfaces as :class:`BytecodeError`.
        """
        strings = self._strings
        attrs = self._attrs
        values = self._values
        entries = _parse_index(index)

        # Root header: mirrors _ModuleReader._read_op up to the regions.
        helper = _ModuleReader(self.context, strings, attrs)
        name = strings.get(ops)
        operand_count = ops.bounded_varint(
            ops.remaining + 1, "operand count"
        )
        operands = []
        for _ in range(operand_count):
            operand_index = ops.bounded_varint(
                values.total, "operand value index"
            )
            operand_type = attrs.get_type(ops)
            operands.append(values.operand(operand_index, operand_type))
        result_count = ops.bounded_varint(ops.remaining + 1, "result count")
        result_types = []
        result_hints = []
        for _ in range(result_count):
            result_types.append(attrs.get_type(ops))
            result_hints.append(helper._read_name_hint(ops))
        attr_count = ops.bounded_varint(ops.remaining + 1, "attribute count")
        attributes: dict[str, Attribute] = {}
        for _ in range(attr_count):
            attr_name = strings.get(ops)
            attributes[attr_name] = attrs.get_attr(ops)
        successor_count = ops.varint()
        if successor_count:
            raise ops.error("root operation cannot have successors")
        root = self.context.create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
        )
        cursor = 0
        for result, hint in zip(root.results, result_hints):
            result.name_hint = hint
            values.define_at(cursor, result)
            cursor += 1

        entry_base = 0
        walk_cursor = 1  # the root itself is walk index 0
        region_count = ops.bounded_varint(ops.remaining + 1, "region count")
        for _ in range(region_count):
            block_count = ops.bounded_varint(
                ops.remaining + 1, "block count"
            )
            region = Region()
            for _ in range(block_count):
                arg_count = ops.bounded_varint(
                    ops.remaining + 1, "block argument count"
                )
                arg_types = []
                arg_hints = []
                for _ in range(arg_count):
                    arg_types.append(attrs.get_type(ops))
                    arg_hints.append(helper._read_name_hint(ops))
                block = Block(arg_types)
                for arg, hint in zip(block.args, arg_hints):
                    arg.name_hint = hint
                    values.define_at(cursor, arg)
                    cursor += 1
                region.add_block(block)
            for block in region.blocks:
                op_count = ops.bounded_varint(
                    ops.remaining + 1, "op count"
                )
                self._forced_positions[id(block)] = []
                if op_count == 0:
                    continue
                if entry_base + op_count > len(entries):
                    raise ops.error(
                        "op stream holds more top-level ops than "
                        "the op index declares"
                    )
                # One contiguous run of spans per block: entries carry
                # only (length, value count, subtree op count); byte
                # offsets and value starts are the prefix sums over the
                # run, reconstructed here.  Then jump the stream past
                # the whole run in one step — the point of lazy opening
                # is never touching those pages.
                expected = ops.pos - self._ops_payload_start
                handle_list = self.handles
                append = handle_list.append
                for position in range(op_count):
                    entry_index = entry_base + position
                    length, value_count, subtree_ops = entries[entry_index]
                    if subtree_ops < 1:
                        raise ops.error(
                            f"op-index entry {entry_index} declares an "
                            "empty subtree"
                        )
                    append(LazyOpHandle(
                        self, entry_index, expected, length, cursor,
                        value_count, subtree_ops, walk_cursor, block,
                        position,
                    ))
                    expected += length
                    cursor += value_count
                    walk_cursor += subtree_ops
                entry_base += op_count
                landing = self._ops_payload_start + expected
                if landing > ops.end:
                    raise ops.error(
                        "op-index byte spans run past the op section"
                    )
                ops.pos = landing
            root.add_region(region)
        if entry_base != len(entries):
            raise ops.error(
                f"op index declares {len(entries) - entry_base} more "
                "top-level ops than the op stream holds"
            )
        if not ops.at_end():
            raise ops.error(
                f"{ops.remaining} trailing bytes after the root operation"
            )
        if cursor != values.total:
            raise ops.error(
                f"op index accounts for {cursor} values, stream declares "
                f"{values.total}"
            )
        self.root = root
        self._total_walk = walk_cursor

    def _load_locations(self, reader: Reader) -> None:
        """Decode the location pool and the sparse walk-index mapping."""
        strings = self._strings
        pool: list[Location] = []
        count = reader.bounded_varint(reader.remaining + 1, "location count")
        for _ in range(count):
            tag = reader.varint()
            if tag == enc.LOC_FILE:
                filename = strings.get(reader)
                line = reader.varint()
                pool.append(FileLineColLoc(filename, line, reader.varint()))
            elif tag == enc.LOC_FUSED:
                arity = reader.bounded_varint(
                    reader.remaining + 1, "fused location arity"
                )
                parts = []
                for _ in range(arity):
                    ref = reader.bounded_varint(
                        len(pool), "location reference"
                    )
                    parts.append(pool[ref])
                pool.append(FusedLoc(parts))
            else:
                raise reader.error(f"unknown location pool tag {tag}")
        mapping_count = reader.bounded_varint(
            reader.remaining + 1, "location mapping count"
        )
        for _ in range(mapping_count):
            op_index = reader.bounded_varint(
                self._total_walk, "location op index"
            )
            ref = reader.bounded_varint(len(pool), "location reference")
            self._locations[op_index] = pool[ref]
        if not reader.at_end():
            raise reader.error(
                f"{reader.remaining} trailing bytes after the last location"
            )

    # ------------------------------------------------------------------
    # Forcing
    # ------------------------------------------------------------------

    def _span_reader(self, handle: LazyOpHandle) -> Reader:
        if self._closed:
            raise BytecodeError(
                "lazy module reader is closed", self.name
            )
        start = self._ops_payload_start + handle.byte_offset
        return Reader(self.data, self.name, start,
                      start + handle.byte_length)

    def _force(self, handle: LazyOpHandle) -> Operation:
        sub = self._span_reader(handle)
        shard = _ShardValues(
            self._values, handle.value_start,
            handle.value_start + handle.value_count, sub,
        )
        module_reader = _ModuleReader(self.context, self._strings,
                                      self._attrs)
        region_blocks = list(handle.block.parent.blocks)
        op = module_reader._read_op(sub, shard, region_blocks)
        if not sub.at_end():
            raise sub.error(
                f"{sub.remaining} trailing bytes after op "
                f"#{handle.index}"
            )
        if module_reader.ops_decoded != handle.op_count:
            raise sub.error(
                f"op #{handle.index} decoded {module_reader.ops_decoded} "
                f"ops, index declared {handle.op_count}"
            )
        if shard.cursor != handle.value_start + handle.value_count:
            raise sub.error(
                f"op #{handle.index} defined "
                f"{shard.cursor - handle.value_start} values, index "
                f"declared {handle.value_count}"
            )
        if self._locations:
            for walk_index, inner in enumerate(
                op.walk(), start=handle.walk_start
            ):
                location = self._locations.get(walk_index)
                if location is not None:
                    inner.location = location
        forced = self._forced_positions[id(handle.block)]
        position = bisect_left(forced, handle.block_position)
        handle.block.insert_op(op, position)
        insort(forced, handle.block_position)
        handle.op = op
        if OBS.metrics.enabled:
            OBS.metrics.counter("bytecode.lazy.ops_forced").inc()
        return op

    def module(self) -> Operation:
        """Force every handle and return the complete root operation.

        After this the value numbering must have no unresolved
        forward references — the same closing check the eager decoder
        performs.
        """
        if self.lazy:
            with OBS.tracer.span("bytecode.lazy.force_all",
                                 category="bytecode"):
                for handle in self.handles:
                    handle.force()
            _wrapped(self.name, self._values.finish)
        return self.root

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the underlying mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._close is not None:
            self._close()

    def __enter__(self) -> "LazyModuleReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        forced = sum(1 for h in self.handles if h.op is not None)
        mode = "lazy" if self.lazy else "eager-fallback"
        return (f"<LazyModuleReader {self.name!r} {mode} "
                f"{forced}/{len(self.handles)} forced>")
