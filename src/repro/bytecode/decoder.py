"""Binary decoder: bytecode → IR modules and IRDL dialect declarations.

The decoder is a single forward pass over the section frames written by
:mod:`repro.bytecode.encoder`.  Unknown section ids are skipped (their
length prefix tells us how far), which is the format's forward-compat
mechanism.

Robustness contract: **no input, however corrupt, escapes as anything
but a** :class:`~repro.bytecode.wire.BytecodeError` (a
:class:`~repro.utils.diagnostics.DiagnosticError`).  Three layers
enforce it:

* every primitive read is bounds-checked by :class:`wire.Reader`;
* every table reference is range-checked against the entries decoded so
  far (which also rules out reference cycles: an entry can only point
  backwards);
* the public entry points wrap any *other* exception a hostile byte
  stream manages to provoke (``VerifyError`` from attribute
  verification, arity errors from dataclass constructors, …) into a
  ``BytecodeError`` as a last line of defence.
"""

from __future__ import annotations

from typing import Any

from repro.builtin.attributes import (
    ArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from repro.builtin.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    Signedness,
    TensorType,
    VectorType,
)
from repro.bytecode import encoder as enc
from repro.bytecode.wire import (
    KIND_DIALECTS,
    KIND_MODULE,
    MAGIC,
    SUPPORTED_VERSIONS,
    BytecodeError,
    Reader,
)
from repro.ir.attributes import Attribute, TypeAttribute
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.location import FileLineColLoc, FusedLoc, Location
from repro.ir.operation import Operation
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    ParamValue,
    StringParam,
    TypeIdParam,
)
from repro.ir.region import Region
from repro.ir.value import SSAValue
from repro.irdl import ast
from repro.obs.instrument import OBS

_SIGNEDNESS_FROM_CODE = {
    code: signedness for signedness, code in enc.SIGNEDNESS_CODE.items()
}
_SIGIL_FROM_CODE = {code: sigil for sigil, code in enc.SIGIL_CODE.items()}
_VARIADICITY_FROM_CODE = {
    code: var for var, code in enc.VARIADICITY_CODE.items()
}


def _wrap_errors(fn):
    """Convert any non-BytecodeError escape into a clean BytecodeError."""

    def wrapper(*args: Any, name: str = "<bytecode>", **kwargs: Any):
        try:
            return fn(*args, name=name, **kwargs)
        except BytecodeError:
            raise
        except Exception as err:
            raise BytecodeError(
                f"malformed bytecode: {type(err).__name__}: {err}", name
            ) from err

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


# ---------------------------------------------------------------------------
# Header and section framing
# ---------------------------------------------------------------------------


def _read_header(reader: Reader, expected_kind: int) -> None:
    magic = reader.raw(len(MAGIC))
    if magic != MAGIC:
        raise BytecodeError(
            f"bad magic number {magic!r} (expected {MAGIC!r})", reader.name
        )
    version = reader.varint()
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise BytecodeError(
            f"unsupported format version {version} "
            f"(this reader supports: {supported})",
            reader.name,
        )
    kind = reader.varint()
    if kind != expected_kind:
        names = {KIND_MODULE: "an IR module", KIND_DIALECTS: "IRDL dialects"}
        raise BytecodeError(
            f"artifact holds {names.get(kind, f'unknown payload {kind}')}, "
            f"expected {names[expected_kind]}",
            reader.name,
        )


def _read_sections(reader: Reader) -> dict[int, Reader]:
    """Collect known section frames, skipping unrecognised ids."""
    sections: dict[int, Reader] = {}
    known = (
        enc.SECTION_STRINGS,
        enc.SECTION_ATTRS,
        enc.SECTION_OPS,
        enc.SECTION_DIALECTS,
        enc.SECTION_SUPPRESSIONS,
        enc.SECTION_LOCATIONS,
        enc.SECTION_OP_INDEX,
    )
    skipped = 0
    while not reader.at_end():
        section_id = reader.varint()
        length = reader.varint()
        sub = reader.subreader(length)
        if section_id in known:
            if section_id in sections:
                raise BytecodeError(
                    f"duplicate section {section_id}", reader.name
                )
            sections[section_id] = sub
        else:
            skipped += 1
    if skipped and OBS.metrics.enabled:
        OBS.metrics.counter("bytecode.decode.sections_skipped").inc(skipped)
    return sections


def _require_section(
    sections: dict[int, Reader], section_id: int, what: str, name: str
) -> Reader:
    section = sections.get(section_id)
    if section is None:
        raise BytecodeError(f"missing {what} section", name)
    return section


def _read_string_table(sections: dict[int, Reader], name: str) -> list[str]:
    reader = _require_section(sections, enc.SECTION_STRINGS, "string", name)
    count = reader.bounded_varint(reader.remaining + 1, "string count")
    return [reader.string_bytes() for _ in range(count)]


class _StringTable:
    __slots__ = ("strings",)

    def __init__(self, strings: list[str]):
        self.strings = strings

    def get(self, reader: Reader) -> str:
        index = reader.bounded_varint(len(self.strings), "string reference")
        return self.strings[index]


# ---------------------------------------------------------------------------
# Attribute pool
# ---------------------------------------------------------------------------


class _AttrTable:
    """Decodes the attribute pool in one forward pass.

    References inside an entry are bounded by the number of entries
    decoded *before* it, so the pool is acyclic by construction.
    """

    __slots__ = ("entries", "context")

    def __init__(self, context: Context):
        self.entries: list[Attribute | ParamValue] = []
        self.context = context

    def get(self, reader: Reader) -> Attribute | ParamValue:
        index = reader.bounded_varint(len(self.entries), "attribute reference")
        return self.entries[index]

    def get_attr(self, reader: Reader) -> Attribute:
        value = self.get(reader)
        if not isinstance(value, Attribute):
            raise reader.error(
                "attribute reference resolves to a bare parameter value"
            )
        return value

    def get_type(self, reader: Reader) -> Attribute:
        attr = self.get_attr(reader)
        if not isinstance(attr, TypeAttribute):
            raise reader.error(
                f"type reference resolves to non-type {attr!r}"
            )
        return attr

    def load(self, reader: Reader, strings: _StringTable) -> None:
        count = reader.bounded_varint(reader.remaining + 1, "attribute count")
        for _ in range(count):
            self.entries.append(self._read_entry(reader, strings))

    def _read_entry(
        self, reader: Reader, strings: _StringTable
    ) -> Attribute | ParamValue:
        tag = reader.varint()
        value = self._build(tag, reader, strings)
        if isinstance(value, Attribute):
            value.verify()
            return self.context.intern(value)
        return value

    def _build(
        self, tag: int, reader: Reader, strings: _StringTable
    ) -> Attribute | ParamValue:
        if tag == enc.TAG_INTEGER_TYPE:
            bitwidth = reader.varint()
            code = reader.varint()
            signedness = _SIGNEDNESS_FROM_CODE.get(code)
            if signedness is None:
                raise reader.error(f"invalid signedness code {code}")
            return IntegerType(bitwidth, signedness)
        if tag == enc.TAG_INDEX_TYPE:
            return IndexType()
        if tag == enc.TAG_FLOAT_TYPE:
            return FloatType(reader.varint())
        if tag == enc.TAG_FUNCTION_TYPE:
            inputs = [
                self.get_type(reader) for _ in range(reader.varint())
            ]
            results = [
                self.get_type(reader) for _ in range(reader.varint())
            ]
            return FunctionType(inputs, results)
        if tag in (enc.TAG_TENSOR_TYPE, enc.TAG_VECTOR_TYPE,
                   enc.TAG_MEMREF_TYPE):
            rank = reader.bounded_varint(reader.remaining + 1, "shape rank")
            shape = [reader.signed() for _ in range(rank)]
            element = self.get_type(reader)
            cls = {
                enc.TAG_TENSOR_TYPE: TensorType,
                enc.TAG_VECTOR_TYPE: VectorType,
                enc.TAG_MEMREF_TYPE: MemRefType,
            }[tag]
            return cls(shape, element)
        if tag == enc.TAG_STRING_ATTR:
            return StringAttr(strings.get(reader))
        if tag == enc.TAG_INTEGER_ATTR:
            value = reader.signed()
            return IntegerAttr(value, self.get_type(reader))
        if tag == enc.TAG_FLOAT_ATTR:
            value = reader.f64_bits()
            return FloatAttr(value, self.get_type(reader))
        if tag == enc.TAG_UNIT_ATTR:
            return UnitAttr()
        if tag == enc.TAG_TYPE_ATTR:
            return TypeAttr(self.get_type(reader))
        if tag == enc.TAG_ARRAY_ATTR:
            count = reader.bounded_varint(
                reader.remaining + 1, "array length"
            )
            return ArrayAttr([self.get_attr(reader) for _ in range(count)])
        if tag == enc.TAG_DICTIONARY_ATTR:
            count = reader.bounded_varint(
                reader.remaining + 1, "dictionary size"
            )
            entries: dict[str, Attribute] = {}
            for _ in range(count):
                key = strings.get(reader)
                entries[key] = self.get_attr(reader)
            return DictionaryAttr(entries)
        if tag == enc.TAG_SYMBOL_REF_ATTR:
            return SymbolRefAttr(strings.get(reader))
        if tag == enc.TAG_DYNAMIC_ATTR:
            qualified_name = strings.get(reader)
            is_type = reader.varint()
            count = reader.bounded_varint(
                reader.remaining + 1, "parameter count"
            )
            params = [self.get(reader) for _ in range(count)]
            binding = self.context.get_type_or_attr_def(qualified_name)
            if binding is None:
                raise reader.error(
                    f"references {qualified_name!r}, which is not "
                    "registered in this context"
                )
            attr = binding.instantiate(params)
            if bool(is_type) != isinstance(attr, TypeAttribute):
                raise reader.error(
                    f"{qualified_name!r} type/attribute kind mismatch"
                )
            return attr
        if tag == enc.TAG_INTEGER_PARAM:
            value = reader.signed()
            bitwidth = reader.varint()
            signed = reader.varint()
            return IntegerParam(value, bitwidth, bool(signed))
        if tag == enc.TAG_FLOAT_PARAM:
            value = reader.f64_bits()
            return FloatParam(value, reader.varint())
        if tag == enc.TAG_STRING_PARAM:
            return StringParam(strings.get(reader))
        if tag == enc.TAG_ENUM_PARAM:
            enum_name = strings.get(reader)
            return EnumParam(enum_name, strings.get(reader))
        if tag == enc.TAG_ARRAY_PARAM:
            count = reader.bounded_varint(
                reader.remaining + 1, "array length"
            )
            return ArrayParam(tuple(self.get(reader) for _ in range(count)))
        if tag == enc.TAG_LOCATION_PARAM:
            filename = strings.get(reader)
            line = reader.varint()
            return LocationParam(filename, line, reader.varint())
        if tag == enc.TAG_TYPEID_PARAM:
            return TypeIdParam(strings.get(reader))
        if tag == enc.TAG_OPAQUE_PARAM:
            class_name = strings.get(reader)
            return OpaqueParam(class_name, strings.get(reader))
        raise reader.error(f"unknown attribute pool tag {tag}")


# ---------------------------------------------------------------------------
# Op stream
# ---------------------------------------------------------------------------


class _ValueTable:
    """Maps wire value indices to SSA values, with forward references.

    An operand may name a value whose defining op appears later in the
    stream (CFG-dominance, not lexical order).  Such operands get a
    typed placeholder that is patched via ``replace_all_uses_with`` once
    the real definition arrives.
    """

    __slots__ = ("total", "defined", "placeholders", "reader")

    def __init__(self, total: int, reader: Reader):
        self.total = total
        self.defined: dict[int, SSAValue] = {}
        self.placeholders: dict[int, SSAValue] = {}
        self.reader = reader

    def define(self, value: SSAValue) -> None:
        index = len(self.defined)
        if index >= self.total:
            raise self.reader.error(
                f"op stream defines more than the declared "
                f"{self.total} values"
            )
        self.defined[index] = value
        placeholder = self.placeholders.pop(index, None)
        if placeholder is not None:
            if placeholder.type != value.type:
                raise self.reader.error(
                    f"value {index} was forward-referenced with type "
                    f"{placeholder.type} but defined with type {value.type}"
                )
            placeholder.replace_all_uses_with(value)

    def operand(self, index: int, value_type: Attribute) -> SSAValue:
        value = self.defined.get(index)
        if value is not None:
            if value.type != value_type:
                raise self.reader.error(
                    f"operand references value {index} as {value_type}, "
                    f"but it has type {value.type}"
                )
            return value
        placeholder = self.placeholders.get(index)
        if placeholder is None:
            placeholder = self.placeholders[index] = SSAValue(value_type)
        elif placeholder.type != value_type:
            raise self.reader.error(
                f"conflicting forward-reference types for value {index}: "
                f"{placeholder.type} vs {value_type}"
            )
        return placeholder

    def finish(self) -> None:
        if self.placeholders:
            missing = sorted(self.placeholders)
            raise self.reader.error(
                f"operands reference undefined values {missing}"
            )


class _ModuleReader:
    def __init__(
        self,
        context: Context,
        strings: _StringTable,
        attrs: _AttrTable,
    ):
        self.context = context
        self.strings = strings
        self.attrs = attrs
        self.ops_decoded = 0

    def read(self, reader: Reader) -> Operation:
        total_values = reader.varint()
        values = _ValueTable(total_values, reader)
        root = self._read_op(reader, values, [])
        if not reader.at_end():
            raise reader.error(
                f"{reader.remaining} trailing bytes after the root operation"
            )
        values.finish()
        return root

    def _read_name_hint(self, reader: Reader) -> str | None:
        flag = reader.varint()
        if flag == 0:
            return None
        if flag != 1:
            raise reader.error(f"invalid name-hint flag {flag}")
        return self.strings.get(reader)

    def _read_op(
        self, reader: Reader, values: _ValueTable, blocks: list[Block]
    ) -> Operation:
        name = self.strings.get(reader)
        operand_count = reader.bounded_varint(
            reader.remaining + 1, "operand count"
        )
        operands = []
        for _ in range(operand_count):
            index = reader.bounded_varint(values.total, "operand value index")
            value_type = self.attrs.get_type(reader)
            operands.append(values.operand(index, value_type))
        result_count = reader.bounded_varint(
            reader.remaining + 1, "result count"
        )
        result_types = []
        result_hints = []
        for _ in range(result_count):
            result_types.append(self.attrs.get_type(reader))
            result_hints.append(self._read_name_hint(reader))
        attr_count = reader.bounded_varint(
            reader.remaining + 1, "attribute count"
        )
        attributes: dict[str, Attribute] = {}
        for _ in range(attr_count):
            attr_name = self.strings.get(reader)
            attributes[attr_name] = self.attrs.get_attr(reader)
        successor_count = reader.bounded_varint(
            reader.remaining + 1, "successor count"
        )
        successors = []
        for _ in range(successor_count):
            block_index = reader.bounded_varint(
                len(blocks), "successor block index"
            )
            successors.append(blocks[block_index])
        op = self.context.create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            successors=successors,
        )
        self.ops_decoded += 1
        for result, hint in zip(op.results, result_hints):
            result.name_hint = hint
            values.define(result)
        region_count = reader.bounded_varint(
            reader.remaining + 1, "region count"
        )
        for _ in range(region_count):
            op.add_region(self._read_region(reader, values))
        return op

    def _read_region(self, reader: Reader, values: _ValueTable) -> Region:
        block_count = reader.bounded_varint(
            reader.remaining + 1, "block count"
        )
        region = Region()
        for _ in range(block_count):
            arg_count = reader.bounded_varint(
                reader.remaining + 1, "block argument count"
            )
            arg_types = []
            arg_hints = []
            for _ in range(arg_count):
                arg_types.append(self.attrs.get_type(reader))
                arg_hints.append(self._read_name_hint(reader))
            block = Block(arg_types)
            for arg, hint in zip(block.args, arg_hints):
                arg.name_hint = hint
                values.define(arg)
            region.add_block(block)
        for block in region.blocks:
            op_count = reader.bounded_varint(
                reader.remaining + 1, "op count"
            )
            for _ in range(op_count):
                block.add_op(self._read_op(reader, values, region.blocks))
        return region


def _apply_locations(
    reader: Reader, strings: _StringTable, root: Operation
) -> None:
    """Re-attach op locations from their optional section.

    The pool is decoded in one forward pass (fused entries may only
    reference earlier slots); the sparse mapping then patches ops by
    their ``walk()`` pre-order index — the order the encoder used.
    """
    pool: list[Location] = []
    count = reader.bounded_varint(reader.remaining + 1, "location count")
    for _ in range(count):
        tag = reader.varint()
        if tag == enc.LOC_FILE:
            filename = strings.get(reader)
            line = reader.varint()
            pool.append(FileLineColLoc(filename, line, reader.varint()))
        elif tag == enc.LOC_FUSED:
            arity = reader.bounded_varint(
                reader.remaining + 1, "fused location arity"
            )
            parts = []
            for _ in range(arity):
                ref = reader.bounded_varint(len(pool), "location reference")
                parts.append(pool[ref])
            pool.append(FusedLoc(parts))
        else:
            raise reader.error(f"unknown location pool tag {tag}")
    ops = list(root.walk())
    mapping_count = reader.bounded_varint(
        reader.remaining + 1, "location mapping count"
    )
    for _ in range(mapping_count):
        op_index = reader.bounded_varint(len(ops), "location op index")
        ref = reader.bounded_varint(len(pool), "location reference")
        ops[op_index].location = pool[ref]
    if not reader.at_end():
        raise reader.error(
            f"{reader.remaining} trailing bytes after the last location"
        )


@_wrap_errors
def decode_module(
    context: Context, data: bytes, *, name: str = "<bytecode>"
) -> Operation:
    """Deserialize a module artifact into an operation tree.

    Operations are created through ``context.create_operation``, so
    dialects referenced by the module must already be registered (or the
    context must allow unregistered constructs).  Any malformed input
    raises :class:`BytecodeError`.
    """
    import time

    start = time.perf_counter()
    with OBS.tracer.span("bytecode.decode", category="bytecode"):
        reader = Reader(data, name)
        _read_header(reader, KIND_MODULE)
        sections = _read_sections(reader)
        strings = _StringTable(_read_string_table(sections, name))
        attrs = _AttrTable(context)
        attrs.load(
            _require_section(sections, enc.SECTION_ATTRS, "attribute", name),
            strings,
        )
        module_reader = _ModuleReader(context, strings, attrs)
        root = module_reader.read(
            _require_section(sections, enc.SECTION_OPS, "op", name)
        )
        locations = sections.get(enc.SECTION_LOCATIONS)
        if locations is not None:
            _apply_locations(locations, strings, root)
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter("bytecode.decode.modules").inc()
        metrics.counter("bytecode.decode.ops").inc(module_reader.ops_decoded)
        metrics.histogram("bytecode.decode.module_bytes").observe(len(data))
        metrics.timer("bytecode.decode.time").record(
            time.perf_counter() - start
        )
    return root


# ---------------------------------------------------------------------------
# Dialect decoding
# ---------------------------------------------------------------------------


class _DialectReader:
    def __init__(self, strings: _StringTable):
        self.strings = strings

    def _optional_string(self, reader: Reader) -> str | None:
        flag = reader.varint()
        if flag == 0:
            return None
        if flag != 1:
            raise reader.error(f"invalid optional-string flag {flag}")
        return self.strings.get(reader)

    def _string_list(self, reader: Reader) -> list[str]:
        count = reader.bounded_varint(reader.remaining + 1, "list length")
        return [self.strings.get(reader) for _ in range(count)]

    def _sigil(self, reader: Reader) -> str | None:
        code = reader.varint()
        if code not in _SIGIL_FROM_CODE:
            raise reader.error(f"invalid sigil code {code}")
        return _SIGIL_FROM_CODE[code]

    def _expr(self, reader: Reader) -> ast.ConstraintExpr:
        tag = reader.varint()
        if tag == enc.EXPR_REF:
            sigil = self._sigil(reader)
            ref_name = self.strings.get(reader)
            has_params = reader.varint()
            params = None
            if has_params:
                count = reader.bounded_varint(
                    reader.remaining + 1, "parameter count"
                )
                params = [self._expr(reader) for _ in range(count)]
            return ast.RefExpr(sigil, ref_name, params)
        if tag == enc.EXPR_INT_LITERAL:
            value = reader.signed()
            return ast.IntLiteralExpr(value, self._optional_string(reader))
        if tag == enc.EXPR_STRING_LITERAL:
            return ast.StringLiteralExpr(self.strings.get(reader))
        if tag == enc.EXPR_LIST:
            count = reader.bounded_varint(
                reader.remaining + 1, "list length"
            )
            return ast.ListExpr([self._expr(reader) for _ in range(count)])
        raise reader.error(f"unknown constraint expression tag {tag}")

    def _param_decl(self, reader: Reader) -> ast.ParamDecl:
        name = self.strings.get(reader)
        return ast.ParamDecl(name, self._expr(reader))

    def _arg_decl(self, reader: Reader) -> ast.ArgDecl:
        name = self.strings.get(reader)
        constraint = self._expr(reader)
        code = reader.varint()
        variadicity = _VARIADICITY_FROM_CODE.get(code)
        if variadicity is None:
            raise reader.error(f"invalid variadicity code {code}")
        return ast.ArgDecl(name, constraint, variadicity)

    def _type_decl(self, reader: Reader) -> ast.TypeDecl:
        name = self.strings.get(reader)
        is_type = bool(reader.varint())
        count = reader.bounded_varint(
            reader.remaining + 1, "parameter count"
        )
        parameters = [self._param_decl(reader) for _ in range(count)]
        summary = self.strings.get(reader)
        format_str = self._optional_string(reader)
        py_constraints = self._string_list(reader)
        return ast.TypeDecl(
            name, is_type, parameters, summary, format_str, py_constraints
        )

    def _operation_decl(self, reader: Reader) -> ast.OperationDecl:
        name = self.strings.get(reader)
        var_count = reader.bounded_varint(
            reader.remaining + 1, "constraint-var count"
        )
        constraint_vars = []
        for _ in range(var_count):
            var_name = self.strings.get(reader)
            sigil = self._sigil(reader)
            constraint_vars.append(
                ast.ConstraintVarDecl(var_name, sigil, self._expr(reader))
            )
        arg_lists = []
        for _ in range(3):
            count = reader.bounded_varint(
                reader.remaining + 1, "argument count"
            )
            arg_lists.append([self._arg_decl(reader) for _ in range(count)])
        operands, results, attributes = arg_lists
        region_count = reader.bounded_varint(
            reader.remaining + 1, "region count"
        )
        regions = []
        for _ in range(region_count):
            region_name = self.strings.get(reader)
            arg_count = reader.bounded_varint(
                reader.remaining + 1, "region argument count"
            )
            arguments = [self._arg_decl(reader) for _ in range(arg_count)]
            terminator = self._optional_string(reader)
            regions.append(ast.RegionDecl(region_name, arguments, terminator))
        has_successors = reader.varint()
        successors = self._string_list(reader) if has_successors else None
        format_str = self._optional_string(reader)
        summary = self.strings.get(reader)
        py_constraints = self._string_list(reader)
        return ast.OperationDecl(
            name,
            constraint_vars,
            operands,
            results,
            attributes,
            regions,
            successors,
            format_str,
            summary,
            py_constraints,
        )

    def dialect(self, reader: Reader) -> ast.DialectDecl:
        name = self.strings.get(reader)
        decl = ast.DialectDecl(name)
        count = reader.bounded_varint(reader.remaining + 1, "type count")
        decl.types = [self._type_decl(reader) for _ in range(count)]
        count = reader.bounded_varint(reader.remaining + 1, "attribute count")
        decl.attributes = [self._type_decl(reader) for _ in range(count)]
        count = reader.bounded_varint(reader.remaining + 1, "operation count")
        decl.operations = [self._operation_decl(reader) for _ in range(count)]
        count = reader.bounded_varint(reader.remaining + 1, "alias count")
        for _ in range(count):
            alias_name = self.strings.get(reader)
            sigil = self._sigil(reader)
            type_params = self._string_list(reader)
            decl.aliases.append(
                ast.AliasDecl(alias_name, sigil, type_params,
                              self._expr(reader))
            )
        count = reader.bounded_varint(reader.remaining + 1, "enum count")
        for _ in range(count):
            enum_name = self.strings.get(reader)
            decl.enums.append(
                ast.EnumDecl(enum_name, self._string_list(reader))
            )
        count = reader.bounded_varint(reader.remaining + 1, "constraint count")
        for _ in range(count):
            constraint_name = self.strings.get(reader)
            base = self._expr(reader)
            summary = self.strings.get(reader)
            decl.constraints.append(
                ast.ConstraintDecl(
                    constraint_name, base, summary,
                    self._optional_string(reader),
                )
            )
        count = reader.bounded_varint(reader.remaining + 1, "wrapper count")
        for _ in range(count):
            decl.param_wrappers.append(
                ast.ParamWrapperDecl(
                    self.strings.get(reader),
                    self.strings.get(reader),
                    self.strings.get(reader),
                    self.strings.get(reader),
                    self.strings.get(reader),
                )
            )
        return decl


def _apply_suppressions(
    reader: Reader, strings: "_StringTable", decls: list[ast.DialectDecl]
) -> None:
    """Re-attach ``Suppress`` annotations from their optional section."""
    count = reader.bounded_varint(reader.remaining + 1, "suppression count")
    for _ in range(count):
        dialect_index = reader.varint()
        kind = reader.varint()
        index = reader.varint()
        code = strings.get(reader)
        if dialect_index >= len(decls):
            raise reader.error(
                f"suppression refers to dialect {dialect_index}, "
                f"artifact has {len(decls)}"
            )
        decl = decls[dialect_index]
        if kind == enc.SUPPRESS_DIALECT:
            decl.suppressions.append(code)
            continue
        pools = {
            enc.SUPPRESS_TYPE: decl.types,
            enc.SUPPRESS_ATTRIBUTE: decl.attributes,
            enc.SUPPRESS_OPERATION: decl.operations,
        }
        items = pools.get(kind)
        if items is None:
            raise reader.error(f"unknown suppression target kind {kind}")
        if index >= len(items):
            raise reader.error(
                f"suppression refers to declaration {index}, "
                f"dialect has {len(items)}"
            )
        items[index].suppressions.append(code)
    if not reader.at_end():
        raise reader.error(
            f"{reader.remaining} trailing bytes after the last suppression"
        )


@_wrap_errors
def decode_dialects(
    data: bytes, *, name: str = "<bytecode>"
) -> list[ast.DialectDecl]:
    """Deserialize a dialects artifact into IRDL declaration ASTs.

    The returned declarations can be registered with
    :func:`repro.irdl.instantiate.register_dialect` without any textual
    parsing.  Any malformed input raises :class:`BytecodeError`.
    """
    import time

    start = time.perf_counter()
    with OBS.tracer.span("bytecode.decode_dialects", category="bytecode"):
        reader = Reader(data, name)
        _read_header(reader, KIND_DIALECTS)
        sections = _read_sections(reader)
        strings = _StringTable(_read_string_table(sections, name))
        body = _require_section(
            sections, enc.SECTION_DIALECTS, "dialect", name
        )
        dialect_reader = _DialectReader(strings)
        count = body.bounded_varint(body.remaining + 1, "dialect count")
        decls = [dialect_reader.dialect(body) for _ in range(count)]
        if not body.at_end():
            raise body.error(
                f"{body.remaining} trailing bytes after the last dialect"
            )
        suppressions = sections.get(enc.SECTION_SUPPRESSIONS)
        if suppressions is not None:
            _apply_suppressions(suppressions, strings, decls)
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter("bytecode.decode.dialects").inc(len(decls))
        metrics.histogram("bytecode.decode.dialect_bytes").observe(len(data))
        metrics.timer("bytecode.decode.time").record(
            time.perf_counter() - start
        )
    return decls
