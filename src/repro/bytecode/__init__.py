"""``repro.bytecode``: a versioned binary format for modules and dialects.

The textual format (:mod:`repro.textir`) is the human interface; this
package is the machine interface — an MLIR-bytecode-style encoding that
loads without re-lexing text.  Two artifact kinds share one container
(magic + version + section frames):

* **IR modules** — :func:`encode_module` / :func:`decode_module`; the
  attribute pool is deduplicated through the per-context uniquer, and
  SSA values travel as implicit pre-order indices.
* **IRDL dialects** — :func:`encode_dialects` / :func:`decode_dialects`;
  the parsed :class:`~repro.irdl.ast.DialectDecl` tree is serialized so
  dialects register from bytecode without parsing IRDL text.

Robustness: decoding corrupt, truncated, or version-skewed input always
raises :class:`BytecodeError` (a ``DiagnosticError``), never a raw
``IndexError``/``struct.error`` — see ``docs/serialization.md``.
"""

from repro.bytecode.decoder import decode_dialects, decode_module
from repro.bytecode.encoder import (
    encode_dialects,
    encode_module,
    encode_module_stream,
)
from repro.bytecode.lazy import LazyModuleReader, LazyOpHandle
from repro.bytecode.wire import (
    FORMAT_VERSION,
    MAGIC,
    BytecodeError,
    is_bytecode,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "BytecodeError",
    "is_bytecode",
    "encode_module",
    "encode_module_stream",
    "decode_module",
    "encode_dialects",
    "decode_dialects",
    "LazyModuleReader",
    "LazyOpHandle",
]
