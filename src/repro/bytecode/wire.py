"""Wire-level primitives of the bytecode format.

The encoding is deliberately MLIR-bytecode-shaped: a fixed magic number
and format version, then a sequence of *section frames*.  Every integer
is an unsigned LEB128 varint (signed values are zigzag-folded first),
strings are length-prefixed UTF-8, and doubles travel as their raw
little-endian IEEE-754 bit pattern so floating-point values survive
bit-for-bit (including NaN payloads and signed zeros).

Robustness contract: a :class:`Reader` validates *every* read against
the remaining buffer and raises :class:`BytecodeError` — a
:class:`~repro.utils.diagnostics.DiagnosticError` — on truncation,
overlong varints, bad UTF-8, or out-of-range indices.  Decoders built on
top of it therefore never leak a raw ``IndexError``/``struct.error`` to
callers, no matter how corrupt the input is.
"""

from __future__ import annotations

import struct

from repro.utils.diagnostics import Diagnostic, DiagnosticError

#: The four magic bytes opening every bytecode artifact.
MAGIC = b"IRBC"

#: Current format version.  Readers accept exactly the versions listed in
#: :data:`SUPPORTED_VERSIONS`; anything else is a clean version-skew error.
FORMAT_VERSION = 1
SUPPORTED_VERSIONS = (1,)

#: Payload kinds carried in the header.
KIND_MODULE = 0
KIND_DIALECTS = 1

#: Varints longer than this many bytes cannot encode a value we ever
#: produce (10 bytes covers 64 bits) and are rejected as corrupt.
_MAX_VARINT_BYTES = 10


class BytecodeError(DiagnosticError):
    """A malformed, truncated, or version-skewed bytecode artifact.

    Subclasses :class:`DiagnosticError` so every decoder failure carries
    a renderable :class:`Diagnostic` and flows through the same error
    channel as textual parse errors.
    """

    def __init__(self, message: str, source_name: str = "<bytecode>"):
        self.source_name = source_name
        super().__init__(Diagnostic(f"{source_name}: {message}"))


def is_bytecode(data: bytes) -> bool:
    """Whether ``data`` starts with the bytecode magic number."""
    return data[: len(MAGIC)] == MAGIC


def zigzag(value: int) -> int:
    """Fold a signed integer into an unsigned one (small |x| stays small)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return value >> 1 if value & 1 == 0 else -((value + 1) >> 1)


class Writer:
    """An append-only byte buffer with varint/string/float emitters."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._parts)

    def __len__(self) -> int:
        return len(self._parts)

    def raw(self, data: bytes) -> None:
        self._parts += data

    def varint(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"varint cannot encode negative value {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._parts.append(byte | 0x80)
            else:
                self._parts.append(byte)
                return

    def signed(self, value: int) -> None:
        self.varint(zigzag(value))

    def string_bytes(self, text: str) -> None:
        data = text.encode("utf-8")
        self.varint(len(data))
        self.raw(data)

    def f64_bits(self, value: float) -> None:
        self.raw(struct.pack("<d", value))


def varint_bytes(value: int) -> bytes:
    """The canonical LEB128 encoding of one unsigned integer."""
    w = Writer()
    w.varint(value)
    return w.getvalue()


def varint_len(value: int) -> int:
    """The canonical LEB128 length of one unsigned integer."""
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


#: Width of the reserve-then-patch section lengths the streaming writer
#: emits.  5 bytes of forced-continuation LEB128 cover 35 bits, far more
#: than any section we can address.
PADDED_VARINT_WIDTH = 5


def padded_varint_bytes(value: int, width: int = PADDED_VARINT_WIDTH) -> bytes:
    """A fixed-width (non-canonical) LEB128 encoding of ``value``.

    Readers accept padded varints because the decode loop only stops at
    a byte without the continuation bit; forcing continuation bits on
    the leading bytes lets a streaming writer reserve the slot first and
    patch the real value in after the payload is known.
    """
    if value < 0 or value >= 1 << (7 * width):
        raise ValueError(
            f"padded varint of width {width} cannot encode {value}"
        )
    out = bytearray()
    for index in range(width):
        byte = (value >> (7 * index)) & 0x7F
        if index + 1 < width:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


class FileWriter:
    """A :class:`Writer` twin that appends to a binary file object.

    ``len()`` counts the bytes written through it, so offsets recorded
    while streaming one section payload match offsets recorded against
    an in-memory :class:`Writer` holding the same payload.
    """

    __slots__ = ("_file", "_count")

    def __init__(self, fileobj) -> None:
        self._file = fileobj
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def raw(self, data: bytes) -> None:
        self._file.write(data)
        self._count += len(data)

    def varint(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"varint cannot encode negative value {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.raw(bytes(out))

    def signed(self, value: int) -> None:
        self.varint(zigzag(value))

    def string_bytes(self, text: str) -> None:
        data = text.encode("utf-8")
        self.varint(len(data))
        self.raw(data)

    def f64_bits(self, value: float) -> None:
        self.raw(struct.pack("<d", value))


class Reader:
    """A bounds-checked cursor over a bytecode buffer.

    Every accessor raises :class:`BytecodeError` instead of the raw
    Python exception the underlying operation would produce.
    """

    __slots__ = ("data", "pos", "end", "name")

    def __init__(self, data: bytes, name: str = "<bytecode>",
                 start: int = 0, end: int | None = None):
        self.data = data
        self.pos = start
        self.end = len(data) if end is None else end
        self.name = name

    def error(self, message: str) -> BytecodeError:
        return BytecodeError(f"at byte {self.pos}: {message}", self.name)

    @property
    def remaining(self) -> int:
        return self.end - self.pos

    def at_end(self) -> bool:
        return self.pos >= self.end

    def raw(self, count: int) -> bytes:
        if count < 0 or count > self.remaining:
            raise self.error(
                f"truncated input: needed {count} bytes, have {self.remaining}"
            )
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def byte(self) -> int:
        if self.at_end():
            raise self.error("truncated input: expected one more byte")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        result = 0
        shift = 0
        for count in range(_MAX_VARINT_BYTES):
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
        raise self.error("varint is longer than 10 bytes")

    def signed(self) -> int:
        return unzigzag(self.varint())

    def bounded_varint(self, limit: int, what: str) -> int:
        """A varint that must be ``< limit`` (table indices, counts)."""
        value = self.varint()
        if value >= limit:
            raise self.error(f"{what} {value} out of range (limit {limit})")
        return value

    def string_bytes(self) -> str:
        length = self.varint()
        data = self.raw(length)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as err:
            raise self.error(f"invalid UTF-8 in string: {err}") from None

    def f64_bits(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def subreader(self, length: int) -> "Reader":
        """A reader confined to the next ``length`` bytes (one section)."""
        if length > self.remaining:
            raise self.error(
                f"truncated section: declared {length} bytes, "
                f"have {self.remaining}"
            )
        sub = Reader(self.data, self.name, self.pos, self.pos + length)
        self.pos += length
        return sub
