"""Binary encoder: IR modules and IRDL dialect declarations → bytecode.

Layout of an artifact (details in ``docs/serialization.md``)::

    MAGIC "IRBC" | varint format_version | byte kind | section*
    section ::= varint section_id | varint byte_length | payload

A *module* artifact carries three sections — the string table, the
attribute pool, and the op stream.  A *dialects* artifact carries the
string table and the dialect-declaration tree.  Readers skip section ids
they do not recognise, which is what buys forward compatibility.

The attribute pool is the binary mirror of the PR 2 uniquer: every
attribute is interned before pooling, so structurally equal attributes
collapse to one pool entry referenced by index.  Entries are emitted
children-first, which makes the pool a topologically ordered DAG the
decoder can rebuild in a single forward pass.

SSA values are numbered implicitly by a fixed pre-order traversal
(results of an op before its regions; a region's block arguments before
any of its op bodies), so the op stream never spells out value names —
operands are just varint indices into that numbering.
"""

from __future__ import annotations

from typing import Sequence

from repro.builtin.attributes import (
    ArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from repro.builtin.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    Signedness,
    TensorType,
    VectorType,
)
from repro.bytecode.wire import (
    FORMAT_VERSION,
    KIND_DIALECTS,
    KIND_MODULE,
    MAGIC,
    BytecodeError,
    FileWriter,
    Writer,
    padded_varint_bytes,
    varint_bytes,
    varint_len,
)
from repro.ir.attributes import Attribute, DynamicParametrizedAttribute
from repro.ir.location import FileLineColLoc, FusedLoc, Location
from repro.ir.operation import Operation
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    ParamValue,
    StringParam,
    TypeIdParam,
)
from repro.ir.uniquer import intern
from repro.ir.value import SSAValue
from repro.irdl import ast
from repro.obs.instrument import OBS, count_ops

# ---------------------------------------------------------------------------
# Section identifiers (new sections get fresh ids; readers skip unknown ones)
# ---------------------------------------------------------------------------

SECTION_STRINGS = 1
SECTION_ATTRS = 2
SECTION_OPS = 3
SECTION_DIALECTS = 4
#: Optional lint-suppression annotations of a dialects artifact.  Emitted
#: only when some declaration carries a ``Suppress`` directive, so older
#: readers (which skip unknown section ids) stay compatible.
SECTION_SUPPRESSIONS = 5
#: Optional op-location provenance of a module artifact: a pool of
#: locations plus a sparse (op pre-order index → pool ref) mapping.
#: Emitted only when some op carries a known location, so location-free
#: modules stay byte-identical to artifacts from older encoders.
SECTION_LOCATIONS = 6
#: Optional index over the top-level ops of a module artifact: one entry
#: per direct child of the root op, carrying its byte length inside the
#: OPS payload, its SSA-value count, and its subtree op count (offsets
#: are prefix sums; see :func:`_index_payload`).  Lazy readers use it to
#: materialize top-level ops on demand (:mod:`repro.bytecode.lazy`); old
#: readers skip the unknown id.
SECTION_OP_INDEX = 7

# Location pool entry tags (SECTION_LOCATIONS).
LOC_FILE = 1
LOC_FUSED = 2

# Suppression-target kinds (SECTION_SUPPRESSIONS entries).
SUPPRESS_DIALECT = 0
SUPPRESS_TYPE = 1
SUPPRESS_ATTRIBUTE = 2
SUPPRESS_OPERATION = 3

# ---------------------------------------------------------------------------
# Attribute-pool entry tags
# ---------------------------------------------------------------------------

TAG_INTEGER_TYPE = 1
TAG_INDEX_TYPE = 2
TAG_FLOAT_TYPE = 3
TAG_FUNCTION_TYPE = 4
TAG_TENSOR_TYPE = 5
TAG_VECTOR_TYPE = 6
TAG_MEMREF_TYPE = 7
TAG_STRING_ATTR = 8
TAG_INTEGER_ATTR = 9
TAG_FLOAT_ATTR = 10
TAG_UNIT_ATTR = 11
TAG_TYPE_ATTR = 12
TAG_ARRAY_ATTR = 13
TAG_DICTIONARY_ATTR = 14
TAG_SYMBOL_REF_ATTR = 15
TAG_DYNAMIC_ATTR = 16
TAG_INTEGER_PARAM = 17
TAG_FLOAT_PARAM = 18
TAG_STRING_PARAM = 19
TAG_ENUM_PARAM = 20
TAG_ARRAY_PARAM = 21
TAG_LOCATION_PARAM = 22
TAG_TYPEID_PARAM = 23
TAG_OPAQUE_PARAM = 24

SIGNEDNESS_CODE = {
    Signedness.SIGNLESS: 0,
    Signedness.SIGNED: 1,
    Signedness.UNSIGNED: 2,
}

# Constraint-expression tags (dialect section).
EXPR_REF = 1
EXPR_INT_LITERAL = 2
EXPR_STRING_LITERAL = 3
EXPR_LIST = 4

SIGIL_CODE = {None: 0, "!": 1, "#": 2}

VARIADICITY_CODE = {
    ast.Variadicity.SINGLE: 0,
    ast.Variadicity.OPTIONAL: 1,
    ast.Variadicity.VARIADIC: 2,
}


class Pools:
    """The shared string table and attribute pool of one artifact."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        self.attr_entries: list[bytes] = []
        self._attr_ids: dict[int, int] = {}
        self._param_ids: dict[ParamValue, int] = {}
        # The uniquer holds attributes weakly; pin pooled ones so their
        # ``id`` keys stay valid for the lifetime of this encoding.
        self._pinned: list[Attribute] = []

    def string(self, text: str) -> int:
        index = self._string_ids.get(text)
        if index is None:
            index = self._string_ids[text] = len(self.strings)
            self.strings.append(text)
        return index

    def ref(self, value: object) -> int:
        """Pool index of an attribute or parameter value (children first)."""
        if isinstance(value, Attribute):
            value = intern(value)
            index = self._attr_ids.get(id(value))
            if index is None:
                entry = self._encode_entry(value)
                index = len(self.attr_entries)
                self.attr_entries.append(entry)
                self._attr_ids[id(value)] = index
                self._pinned.append(value)
            return index
        if isinstance(value, ParamValue):
            try:
                index = self._param_ids.get(value)
            except TypeError:  # unhashable payload (opaque params)
                index = None
            if index is None:
                entry = self._encode_entry(value)
                index = len(self.attr_entries)
                self.attr_entries.append(entry)
                try:
                    self._param_ids[value] = index
                except TypeError:
                    pass
            return index
        raise BytecodeError(
            f"cannot encode {type(value).__name__} as an attribute parameter"
        )

    # -- entry encodings -------------------------------------------------

    def _encode_entry(self, value: object) -> bytes:
        w = Writer()
        if isinstance(value, Attribute):
            self._encode_attr(w, value)
        else:
            self._encode_param(w, value)  # type: ignore[arg-type]
        return w.getvalue()

    def _encode_attr(self, w: Writer, attr: Attribute) -> None:
        if isinstance(attr, DynamicParametrizedAttribute):
            from repro.ir.attributes import DynamicTypeAttribute

            w.varint(TAG_DYNAMIC_ATTR)
            w.varint(self.string(attr.attr_name))
            w.varint(1 if isinstance(attr, DynamicTypeAttribute) else 0)
            w.varint(len(attr.parameters))
            for param in attr.parameters:
                w.varint(self.ref(param))
        elif isinstance(attr, IntegerType):
            w.varint(TAG_INTEGER_TYPE)
            w.varint(attr.bitwidth)
            w.varint(SIGNEDNESS_CODE[attr.signedness])
        elif isinstance(attr, IndexType):
            w.varint(TAG_INDEX_TYPE)
        elif isinstance(attr, FloatType):
            w.varint(TAG_FLOAT_TYPE)
            w.varint(attr.bitwidth)
        elif isinstance(attr, FunctionType):
            inputs = [self.ref(t) for t in attr.inputs]
            results = [self.ref(t) for t in attr.result_types]
            w.varint(TAG_FUNCTION_TYPE)
            w.varint(len(inputs))
            for ref in inputs:
                w.varint(ref)
            w.varint(len(results))
            for ref in results:
                w.varint(ref)
        elif isinstance(attr, (TensorType, VectorType, MemRefType)):
            tag = {
                TensorType: TAG_TENSOR_TYPE,
                VectorType: TAG_VECTOR_TYPE,
                MemRefType: TAG_MEMREF_TYPE,
            }[type(attr)]
            element = self.ref(attr.element_type)
            w.varint(tag)
            w.varint(attr.rank)
            for dim in attr.shape:
                w.signed(dim)
            w.varint(element)
        elif isinstance(attr, StringAttr):
            w.varint(TAG_STRING_ATTR)
            w.varint(self.string(attr.data))
        elif isinstance(attr, IntegerAttr):
            type_ref = self.ref(attr.type)
            w.varint(TAG_INTEGER_ATTR)
            w.signed(attr.value)
            w.varint(type_ref)
        elif isinstance(attr, FloatAttr):
            type_ref = self.ref(attr.type)
            w.varint(TAG_FLOAT_ATTR)
            w.f64_bits(attr.value)
            w.varint(type_ref)
        elif isinstance(attr, UnitAttr):
            w.varint(TAG_UNIT_ATTR)
        elif isinstance(attr, TypeAttr):
            wrapped = self.ref(attr.type)
            w.varint(TAG_TYPE_ATTR)
            w.varint(wrapped)
        elif isinstance(attr, ArrayAttr):
            refs = [self.ref(e) for e in attr.elements]
            w.varint(TAG_ARRAY_ATTR)
            w.varint(len(refs))
            for ref in refs:
                w.varint(ref)
        elif isinstance(attr, DictionaryAttr):
            entries = [
                (self.string(key), self.ref(value))
                for key, value in attr.parameters
            ]
            w.varint(TAG_DICTIONARY_ATTR)
            w.varint(len(entries))
            for key_ref, value_ref in entries:
                w.varint(key_ref)
                w.varint(value_ref)
        elif isinstance(attr, SymbolRefAttr):
            w.varint(TAG_SYMBOL_REF_ATTR)
            w.varint(self.string(attr.data))
        else:
            raise BytecodeError(
                f"cannot encode attribute class "
                f"{type(attr).__module__}.{type(attr).__qualname__}; "
                "only builtin and IRDL-defined attributes have a "
                "bytecode encoding"
            )

    def _encode_param(self, w: Writer, param: ParamValue) -> None:
        if isinstance(param, IntegerParam):
            w.varint(TAG_INTEGER_PARAM)
            w.signed(param.value)
            w.varint(param.bitwidth)
            w.varint(1 if param.signed else 0)
        elif isinstance(param, FloatParam):
            w.varint(TAG_FLOAT_PARAM)
            w.f64_bits(param.value)
            w.varint(param.bitwidth)
        elif isinstance(param, StringParam):
            w.varint(TAG_STRING_PARAM)
            w.varint(self.string(param.value))
        elif isinstance(param, EnumParam):
            w.varint(TAG_ENUM_PARAM)
            w.varint(self.string(param.enum_name))
            w.varint(self.string(param.constructor))
        elif isinstance(param, ArrayParam):
            refs = [self.ref(e) for e in param.elements]
            w.varint(TAG_ARRAY_PARAM)
            w.varint(len(refs))
            for ref in refs:
                w.varint(ref)
        elif isinstance(param, LocationParam):
            w.varint(TAG_LOCATION_PARAM)
            w.varint(self.string(param.filename))
            w.varint(param.line)
            w.varint(param.column)
        elif isinstance(param, TypeIdParam):
            w.varint(TAG_TYPEID_PARAM)
            w.varint(self.string(param.qualified_name))
        elif isinstance(param, OpaqueParam):
            if not isinstance(param.value, str):
                raise BytecodeError(
                    f"cannot encode opaque parameter of {param.class_name} "
                    f"holding a non-string {type(param.value).__name__}"
                )
            w.varint(TAG_OPAQUE_PARAM)
            w.varint(self.string(param.class_name))
            w.varint(self.string(param.value))
        else:
            raise BytecodeError(
                f"cannot encode parameter class {type(param).__qualname__}"
            )


# ---------------------------------------------------------------------------
# Sections and artifact assembly
# ---------------------------------------------------------------------------


def _strings_payload(pools: Pools) -> bytes:
    w = Writer()
    w.varint(len(pools.strings))
    for text in pools.strings:
        w.string_bytes(text)
    return w.getvalue()


def _attrs_payload(pools: Pools) -> bytes:
    w = Writer()
    w.varint(len(pools.attr_entries))
    for entry in pools.attr_entries:
        w.raw(entry)
    return w.getvalue()


def _assemble(kind: int, sections: Sequence[tuple[int, bytes]]) -> bytes:
    w = Writer()
    w.raw(MAGIC)
    w.varint(FORMAT_VERSION)
    w.varint(kind)
    for section_id, payload in sections:
        w.varint(section_id)
        w.varint(len(payload))
        w.raw(payload)
    return w.getvalue()


# ---------------------------------------------------------------------------
# Module encoding
# ---------------------------------------------------------------------------


def _number_values(root: Operation) -> dict[SSAValue, int]:
    """Assign pre-order indices: op results, then per-region block args
    (all blocks first), then op bodies — exactly the decoder's order."""
    table: dict[SSAValue, int] = {}

    def visit(op: Operation) -> None:
        for result in op.results:
            table[result] = len(table)
        for region in op.regions:
            for block in region.blocks:
                for arg in block.args:
                    table[arg] = len(table)
            for block in region.blocks:
                for inner in block.ops:
                    visit(inner)

    visit(root)
    return table


def _write_name_hint(w: Writer, pools: Pools, value: SSAValue) -> None:
    """An optional SSA name hint, so ``%c`` survives the round-trip."""
    if value.name_hint is None:
        w.varint(0)
    else:
        w.varint(1)
        w.varint(pools.string(value.name_hint))


def _write_op(
    w,
    op: Operation,
    pools: Pools,
    values: dict[SSAValue, int],
    block_ids: dict[int, int],
    record: list[tuple[int, int]] | None = None,
) -> None:
    """Emit one op (and its regions) onto ``w``.

    ``w`` is a :class:`Writer` or :class:`~repro.bytecode.wire.FileWriter`
    positioned at the start of the OPS payload.  With ``record`` set —
    only ever for the root op — each directly nested op's
    ``(byte_offset, byte_length)`` span within the payload is appended
    to it, in emission order, for the op-index section.
    """
    w.varint(pools.string(op.name))
    w.varint(len(op.operands))
    for operand in op.operands:
        index = values.get(operand)
        if index is None:
            raise BytecodeError(
                f"operand of {op.name} is defined outside the module "
                "being encoded"
            )
        w.varint(index)
        w.varint(pools.ref(operand.type))
    w.varint(len(op.results))
    for result in op.results:
        w.varint(pools.ref(result.type))
        _write_name_hint(w, pools, result)
    w.varint(len(op.attributes))
    for name, attr in op.attributes.items():
        w.varint(pools.string(name))
        w.varint(pools.ref(attr))
    w.varint(len(op.successors))
    for successor in op.successors:
        block_index = block_ids.get(id(successor))
        if block_index is None:
            raise BytecodeError(
                f"successor of {op.name} is not a block of the "
                "enclosing region"
            )
        w.varint(block_index)
    w.varint(len(op.regions))
    for region in op.regions:
        w.varint(len(region.blocks))
        for block in region.blocks:
            w.varint(len(block.args))
            for arg in block.args:
                w.varint(pools.ref(arg.type))
                _write_name_hint(w, pools, arg)
        inner_ids = {id(b): i for i, b in enumerate(region.blocks)}
        for block in region.blocks:
            w.varint(len(block.ops))
            for inner in block.ops:
                if record is None:
                    _write_op(w, inner, pools, values, inner_ids)
                else:
                    start = len(w)
                    _write_op(w, inner, pools, values, inner_ids)
                    record.append((start, len(w) - start))


def _locations_payload(root: Operation, pools: Pools) -> bytes | None:
    """The optional location section of a module artifact.

    A pool of location entries (fused entries reference earlier pool
    slots, so the pool is acyclic like the attribute pool) followed by a
    sparse mapping from op pre-order index — the order :func:`_write_op`
    emits ops, which is ``Operation.walk()`` — to a pool slot.  Returns
    ``None`` when every op's location is unknown."""
    pool_entries: list[bytes] = []
    pool_ids: dict[Location, int] = {}

    def pool_ref(loc: Location) -> int:
        index = pool_ids.get(loc)
        if index is not None:
            return index
        w = Writer()
        if isinstance(loc, FileLineColLoc):
            w.varint(LOC_FILE)
            w.varint(pools.string(loc.filename))
            w.varint(loc.line)
            w.varint(loc.col)
        elif isinstance(loc, FusedLoc):
            refs = [pool_ref(part) for part in loc.locations]
            w.varint(LOC_FUSED)
            w.varint(len(refs))
            for ref in refs:
                w.varint(ref)
        else:
            raise BytecodeError(
                f"cannot encode location class {type(loc).__qualname__}"
            )
        index = len(pool_entries)
        pool_entries.append(w.getvalue())
        pool_ids[loc] = index
        return index

    mapping: list[tuple[int, int]] = []
    for op_index, op in enumerate(root.walk()):
        location = op.location
        if location.is_unknown:
            continue
        mapping.append((op_index, pool_ref(location)))
    if not mapping:
        return None
    w = Writer()
    w.varint(len(pool_entries))
    for entry in pool_entries:
        w.raw(entry)
    w.varint(len(mapping))
    for op_index, ref in mapping:
        w.varint(op_index)
        w.varint(ref)
    return w.getvalue()


def _subtree_counts(op: Operation) -> tuple[int, int]:
    """``(value_count, op_count)`` of one op's subtree.

    The value count follows :func:`_number_values`' pre-order exactly
    (results, then per region all block args, then op bodies), so each
    subtree owns one contiguous range of the module's value numbering.
    """
    value_count = len(op.results)
    op_count = 1
    for region in op.regions:
        for block in region.blocks:
            value_count += len(block.args)
        for block in region.blocks:
            for inner in block.ops:
                inner_values, inner_ops = _subtree_counts(inner)
                value_count += inner_values
                op_count += inner_ops
    return value_count, op_count


def _index_payload(
    root: Operation, spans: list[tuple[int, int]]
) -> bytes:
    """The op-index section: one 3-varint entry per top-level op.

    Each entry is ``(byte_length, value_count, op_count)``.  Byte
    offsets and value starts are deliberately *not* stored: both are
    prefix sums the lazy reader reconstructs while walking the root
    shell (op spans tile each block's run contiguously, value spans
    tile the pre-order numbering), and for a million-op module the
    difference between three mostly-single-byte varints and five is
    most of the open-time parse cost.  ``spans`` holds the byte spans
    :func:`_write_op` recorded while emitting the root op's direct
    children, in the same order the value numbering visits them.
    """
    entries: list[tuple[int, int]] = []
    for region in root.regions:
        for block in region.blocks:
            for inner in block.ops:
                entries.append(_subtree_counts(inner))
    if len(entries) != len(spans):
        raise BytecodeError(
            f"op-index mismatch: {len(spans)} byte spans recorded for "
            f"{len(entries)} top-level ops"
        )
    w = Writer()
    w.varint(len(entries))
    for (_offset, length), (value_count, op_count) in zip(spans, entries):
        w.varint(length)
        w.varint(value_count)
        w.varint(op_count)
    return w.getvalue()


def _encode_module(root: Operation, index: bool = True) -> bytes:
    pools = Pools()
    values = _number_values(root)
    ops = Writer()
    ops.varint(len(values))
    spans: list[tuple[int, int]] | None = [] if index else None
    _write_op(ops, root, pools, values, {}, record=spans)
    locations = _locations_payload(root, pools)
    sections = [
        (SECTION_STRINGS, _strings_payload(pools)),
        (SECTION_ATTRS, _attrs_payload(pools)),
        (SECTION_OPS, ops.getvalue()),
    ]
    if spans is not None:
        sections.append((SECTION_OP_INDEX, _index_payload(root, spans)))
    if locations is not None:
        sections.append((SECTION_LOCATIONS, locations))
    return _assemble(KIND_MODULE, sections)


def encode_module(root: Operation, *, index: bool = True) -> bytes:
    """Serialize an operation (usually a module) to bytecode.

    With ``index`` (the default) the artifact carries the op-index
    section that enables lazy loading; ``index=False`` reproduces the
    pre-index layout old writers emitted.
    """
    if not OBS.active:
        return _encode_module(root, index)
    import time

    start = time.perf_counter()
    with OBS.tracer.span("bytecode.encode", category="bytecode"):
        data = _encode_module(root, index)
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter("bytecode.encode.modules").inc()
        metrics.counter("bytecode.encode.ops").inc(count_ops(root))
        metrics.histogram("bytecode.encode.module_bytes").observe(len(data))
        metrics.timer("bytecode.encode.time").record(
            time.perf_counter() - start
        )
    return data


# ---------------------------------------------------------------------------
# Streaming module encoding
# ---------------------------------------------------------------------------


def _stream_section(fileobj, section_id: int, payload_len: int) -> None:
    """Emit one section frame header directly to the file."""
    fileobj.write(varint_bytes(section_id))
    fileobj.write(varint_bytes(payload_len))


def _encode_module_stream(root: Operation, fileobj, index: bool) -> int:
    if not fileobj.seekable():
        raise BytecodeError(
            "streaming encoding needs a seekable file (the OPS section "
            "length is patched in after the payload); use encode_module "
            "for pipes"
        )
    base = fileobj.tell()
    header = Writer()
    header.raw(MAGIC)
    header.varint(FORMAT_VERSION)
    header.varint(KIND_MODULE)
    fileobj.write(header.getvalue())

    # The OPS section is streamed op by op behind a reserved fixed-width
    # length slot: the attribute pool and string table fill up as ops are
    # written, and the payload never exists as one in-memory blob.
    pools = Pools()
    values = _number_values(root)
    fileobj.write(varint_bytes(SECTION_OPS))
    length_pos = fileobj.tell()
    fileobj.write(padded_varint_bytes(0))
    ops = FileWriter(fileobj)
    ops.varint(len(values))
    spans: list[tuple[int, int]] | None = [] if index else None
    _write_op(ops, root, pools, values, {}, record=spans)
    end = fileobj.tell()
    fileobj.seek(length_pos)
    fileobj.write(padded_varint_bytes(len(ops)))
    fileobj.seek(end)

    # Locations may intern new strings, so build that payload before the
    # string table is frozen.
    locations = _locations_payload(root, pools)

    if spans is not None:
        payload = _index_payload(root, spans)
        _stream_section(fileobj, SECTION_OP_INDEX, len(payload))
        fileobj.write(payload)

    # Strings and attributes stream entry by entry behind exact lengths,
    # so neither section payload is ever concatenated in memory.
    strings_len = varint_len(len(pools.strings))
    encoded_lengths = [len(text.encode("utf-8")) for text in pools.strings]
    for length in encoded_lengths:
        strings_len += varint_len(length) + length
    _stream_section(fileobj, SECTION_STRINGS, strings_len)
    strings_writer = FileWriter(fileobj)
    strings_writer.varint(len(pools.strings))
    for text in pools.strings:
        strings_writer.string_bytes(text)
    if len(strings_writer) != strings_len:
        raise BytecodeError("string section length accounting is broken")

    attrs_len = varint_len(len(pools.attr_entries))
    attrs_len += sum(len(entry) for entry in pools.attr_entries)
    _stream_section(fileobj, SECTION_ATTRS, attrs_len)
    fileobj.write(varint_bytes(len(pools.attr_entries)))
    for entry in pools.attr_entries:
        fileobj.write(entry)

    if locations is not None:
        _stream_section(fileobj, SECTION_LOCATIONS, len(locations))
        fileobj.write(locations)
    return fileobj.tell() - base


def encode_module_stream(root: Operation, fileobj, *, index: bool = True) -> int:
    """Serialize a module to a seekable binary file, section by section.

    Functionally equivalent to ``fileobj.write(encode_module(root))``
    but the op stream goes straight to the file — the encoder never
    holds the OPS payload, the string table blob, or a second copy of
    the attribute pool in memory, so modules larger than memory encode
    in bounded space.  Returns the number of bytes written.  The OPS
    section length travels as a padded (non-canonical) varint that is
    patched after the payload, which is why the file must be seekable.
    """
    if not OBS.active:
        return _encode_module_stream(root, fileobj, index)
    import time

    start = time.perf_counter()
    with OBS.tracer.span("bytecode.encode_stream", category="bytecode"):
        written = _encode_module_stream(root, fileobj, index)
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter("bytecode.encode.modules").inc()
        metrics.counter("bytecode.encode.streamed").inc()
        metrics.counter("bytecode.encode.ops").inc(count_ops(root))
        metrics.histogram("bytecode.encode.module_bytes").observe(written)
        metrics.timer("bytecode.encode.time").record(
            time.perf_counter() - start
        )
    return written


# ---------------------------------------------------------------------------
# Dialect encoding
# ---------------------------------------------------------------------------


def _write_optional_string(w: Writer, pools: Pools, text: str | None) -> None:
    if text is None:
        w.varint(0)
    else:
        w.varint(1)
        w.varint(pools.string(text))


def _write_expr(w: Writer, pools: Pools, expr: ast.ConstraintExpr) -> None:
    if isinstance(expr, ast.RefExpr):
        w.varint(EXPR_REF)
        w.varint(SIGIL_CODE[expr.sigil])
        w.varint(pools.string(expr.name))
        if expr.params is None:
            w.varint(0)
        else:
            w.varint(1)
            w.varint(len(expr.params))
            for param in expr.params:
                _write_expr(w, pools, param)
    elif isinstance(expr, ast.IntLiteralExpr):
        w.varint(EXPR_INT_LITERAL)
        w.signed(expr.value)
        _write_optional_string(w, pools, expr.type_name)
    elif isinstance(expr, ast.StringLiteralExpr):
        w.varint(EXPR_STRING_LITERAL)
        w.varint(pools.string(expr.value))
    elif isinstance(expr, ast.ListExpr):
        w.varint(EXPR_LIST)
        w.varint(len(expr.elements))
        for element in expr.elements:
            _write_expr(w, pools, element)
    else:
        raise BytecodeError(
            f"cannot encode constraint expression {type(expr).__qualname__}"
        )


def _write_param_decl(w: Writer, pools: Pools, decl: ast.ParamDecl) -> None:
    w.varint(pools.string(decl.name))
    _write_expr(w, pools, decl.constraint)


def _write_arg_decl(w: Writer, pools: Pools, decl: ast.ArgDecl) -> None:
    w.varint(pools.string(decl.name))
    _write_expr(w, pools, decl.constraint)
    w.varint(VARIADICITY_CODE[decl.variadicity])


def _write_string_list(w: Writer, pools: Pools, items: Sequence[str]) -> None:
    w.varint(len(items))
    for item in items:
        w.varint(pools.string(item))


def _write_type_decl(w: Writer, pools: Pools, decl: ast.TypeDecl) -> None:
    w.varint(pools.string(decl.name))
    w.varint(1 if decl.is_type else 0)
    w.varint(len(decl.parameters))
    for param in decl.parameters:
        _write_param_decl(w, pools, param)
    w.varint(pools.string(decl.summary))
    _write_optional_string(w, pools, decl.format)
    _write_string_list(w, pools, decl.py_constraints)


def _write_operation_decl(
    w: Writer, pools: Pools, decl: ast.OperationDecl
) -> None:
    w.varint(pools.string(decl.name))
    w.varint(len(decl.constraint_vars))
    for var in decl.constraint_vars:
        w.varint(pools.string(var.name))
        w.varint(SIGIL_CODE[var.sigil])
        _write_expr(w, pools, var.constraint)
    for args in (decl.operands, decl.results, decl.attributes):
        w.varint(len(args))
        for arg in args:
            _write_arg_decl(w, pools, arg)
    w.varint(len(decl.regions))
    for region in decl.regions:
        w.varint(pools.string(region.name))
        w.varint(len(region.arguments))
        for arg in region.arguments:
            _write_arg_decl(w, pools, arg)
        _write_optional_string(w, pools, region.terminator)
    if decl.successors is None:
        w.varint(0)
    else:
        w.varint(1)
        _write_string_list(w, pools, decl.successors)
    _write_optional_string(w, pools, decl.format)
    w.varint(pools.string(decl.summary))
    _write_string_list(w, pools, decl.py_constraints)


def _write_dialect(w: Writer, pools: Pools, decl: ast.DialectDecl) -> None:
    w.varint(pools.string(decl.name))
    w.varint(len(decl.types))
    for type_decl in decl.types:
        _write_type_decl(w, pools, type_decl)
    w.varint(len(decl.attributes))
    for attr_decl in decl.attributes:
        _write_type_decl(w, pools, attr_decl)
    w.varint(len(decl.operations))
    for op_decl in decl.operations:
        _write_operation_decl(w, pools, op_decl)
    w.varint(len(decl.aliases))
    for alias in decl.aliases:
        w.varint(pools.string(alias.name))
        w.varint(SIGIL_CODE[alias.sigil])
        _write_string_list(w, pools, alias.type_params)
        _write_expr(w, pools, alias.body)
    w.varint(len(decl.enums))
    for enum in decl.enums:
        w.varint(pools.string(enum.name))
        _write_string_list(w, pools, enum.constructors)
    w.varint(len(decl.constraints))
    for constraint in decl.constraints:
        w.varint(pools.string(constraint.name))
        _write_expr(w, pools, constraint.base)
        w.varint(pools.string(constraint.summary))
        _write_optional_string(w, pools, constraint.py_constraint)
    w.varint(len(decl.param_wrappers))
    for wrapper in decl.param_wrappers:
        w.varint(pools.string(wrapper.name))
        w.varint(pools.string(wrapper.summary))
        w.varint(pools.string(wrapper.py_class_name))
        w.varint(pools.string(wrapper.py_parser))
        w.varint(pools.string(wrapper.py_printer))


def _suppression_entries(
    decls: Sequence[ast.DialectDecl],
) -> list[tuple[int, int, int, str]]:
    entries: list[tuple[int, int, int, str]] = []
    for dialect_index, decl in enumerate(decls):
        for code in decl.suppressions:
            entries.append((dialect_index, SUPPRESS_DIALECT, 0, code))
        for kind, items in (
            (SUPPRESS_TYPE, decl.types),
            (SUPPRESS_ATTRIBUTE, decl.attributes),
            (SUPPRESS_OPERATION, decl.operations),
        ):
            for index, item in enumerate(items):
                for code in item.suppressions:
                    entries.append((dialect_index, kind, index, code))
    return entries


def _encode_dialects(decls: Sequence[ast.DialectDecl]) -> bytes:
    pools = Pools()
    body = Writer()
    body.varint(len(decls))
    for decl in decls:
        _write_dialect(body, pools, decl)
    extra: list[tuple[int, bytes]] = []
    entries = _suppression_entries(decls)
    if entries:
        w = Writer()
        w.varint(len(entries))
        for dialect_index, kind, index, code in entries:
            w.varint(dialect_index)
            w.varint(kind)
            w.varint(index)
            w.varint(pools.string(code))
        extra.append((SECTION_SUPPRESSIONS, w.getvalue()))
    return _assemble(
        KIND_DIALECTS,
        [
            (SECTION_STRINGS, _strings_payload(pools)),
            (SECTION_DIALECTS, body.getvalue()),
            *extra,
        ],
    )


def encode_dialects(
    decls: ast.DialectDecl | Sequence[ast.DialectDecl],
) -> bytes:
    """Serialize IRDL dialect declarations (the parsed AST) to bytecode."""
    if isinstance(decls, ast.DialectDecl):
        decls = [decls]
    decls = list(decls)
    if not OBS.active:
        return _encode_dialects(decls)
    import time

    start = time.perf_counter()
    with OBS.tracer.span("bytecode.encode_dialects", category="bytecode"):
        data = _encode_dialects(decls)
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter("bytecode.encode.dialects").inc(len(decls))
        metrics.histogram("bytecode.encode.dialect_bytes").observe(len(data))
        metrics.timer("bytecode.encode.time").record(
            time.perf_counter() - start
        )
    return data
