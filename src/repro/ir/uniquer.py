"""Uniqued attribute storage: the Python analogue of MLIR's interning.

MLIR allocates every attribute and type once per context and hands out
pointers, so equality is pointer equality and hashing is free.  This
module provides the same guarantee for the reproduction: an
:class:`AttributeUniquer` maps the *structural key* of an attribute to a
canonical instance, held weakly so unused attributes can still be
collected.  After interning, structurally equal attributes are the same
object, which turns the ``__eq__`` fast path in
:mod:`repro.ir.attributes` into a pointer comparison and makes id-keyed
verification memoization (:mod:`repro.irdl.plan`) sound.

Interning is *optional by construction*: plain constructor calls still
build fresh instances, and structural equality remains the fallback, so
code that never touches the uniquer behaves exactly as before.  The
producers (the textual IR parser, ``AttrDefBinding.instantiate``, the
IRDL instantiation layer, and the builtin shorthand singletons) all
route through :func:`intern`, so IR built through normal channels is
uniqued end to end.

Cache effectiveness is observable: the uniquer keeps local hit/miss
totals and mirrors them into ``repro.obs`` counters
(``ir.uniquer.hits`` / ``ir.uniquer.misses``) whenever metrics are
enabled.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Hashable, TypeVar

from repro.ir.attributes import (
    Attribute,
    Data,
    DynamicParametrizedAttribute,
    ParametrizedAttribute,
)

AttributeT = TypeVar("AttributeT", bound=Attribute)


def structural_key(attr: Attribute) -> Hashable | None:
    """The interning key of an attribute, or ``None`` when not uniquable.

    Registered attributes key on ``(class, payload)``; dynamic attributes
    additionally key on the identity of their IRDL definition, so two
    dialect registrations with the same name never share instances.
    Attributes carrying unhashable payloads (a hand-rolled ``Data``
    holding a list, say) are reported as not uniquable rather than
    rejected.
    """
    if isinstance(attr, ParametrizedAttribute):
        return (type(attr), attr.parameters)
    if isinstance(attr, Data):
        data = attr.data
        try:
            hash(data)
        except TypeError:
            return None
        return (type(attr), data)
    if isinstance(attr, DynamicParametrizedAttribute):
        # ``id`` is stable here: the canonical instance keeps its
        # definition alive for as long as the cache entry exists.
        return (type(attr), id(attr.definition), attr.parameters)
    return None


class AttributeUniquer:
    """A weak-value cache mapping structural keys to canonical instances.

    Entries disappear automatically once the canonical attribute has no
    remaining strong references, so a long-lived uniquer does not pin
    every attribute ever created.

    The cache is thread-safe: the process-wide default uniquer is
    shared by every context, and the dialect server's worker threads
    intern concurrently.  A single lock brackets each lookup-or-publish
    so two threads racing on one key always agree on the canonical
    instance (hammered by ``tests/obs/test_thread_safety.py``).
    """

    __slots__ = ("_cache", "_lock", "hits", "misses")

    def __init__(self) -> None:
        self._cache: "weakref.WeakValueDictionary[Hashable, Attribute]" = (
            weakref.WeakValueDictionary()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def intern(self, attr: AttributeT) -> AttributeT:
        """The canonical instance structurally equal to ``attr``.

        The first instance seen for a key becomes canonical; later
        structurally equal instances are dropped in favour of it.
        Attributes without a structural key pass through untouched.
        """
        key = structural_key(attr)
        if key is None:
            return attr
        with self._lock:
            try:
                canonical = self._cache.get(key)
            except TypeError:  # an unhashable parameter deep in the tree
                return attr
            if canonical is not None:
                self.hits += 1
                self._record("hits")
                return canonical  # type: ignore[return-value]
            self.misses += 1
            self._record("misses")
            self._cache[key] = attr
            return attr

    def lookup(self, attr: Attribute) -> Attribute | None:
        """The cached canonical instance for ``attr``'s key, if any."""
        key = structural_key(attr)
        if key is None:
            return None
        with self._lock:
            try:
                return self._cache.get(key)
            except TypeError:
                return None

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    @staticmethod
    def _record(which: str) -> None:
        from repro.obs.instrument import OBS

        if OBS.metrics.enabled:
            OBS.metrics.counter(f"ir.uniquer.{which}").inc()

    def stats(self) -> dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses, "live": len(self)}

    def __repr__(self) -> str:
        return (
            f"<AttributeUniquer {len(self)} live, "
            f"{self.hits} hits / {self.misses} misses>"
        )


#: The process-wide default uniquer.  Contexts share it unless handed a
#: private one (see :class:`repro.ir.context.Context`); module-level
#: producers (builtin shorthands, the textual parser) always use it.
DEFAULT_UNIQUER = AttributeUniquer()


def intern(attr: AttributeT) -> AttributeT:
    """Intern ``attr`` into the process-wide default uniquer."""
    return DEFAULT_UNIQUER.intern(attr)
