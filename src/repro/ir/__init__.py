"""The SSA+regions IR core: the substrate IRDL definitions instantiate into.

This package implements the MLIR-like object model described in §2 of the
paper: SSA values, operations with attributes / successors / nested
regions, basic blocks with block arguments, dialect namespaces, and a
context registry supporting runtime dialect registration.
"""

from repro.ir.attributes import (
    Attribute,
    Data,
    DynamicParametrizedAttribute,
    DynamicTypeAttribute,
    ParametrizedAttribute,
    TypeAttribute,
    attribute_name,
    attribute_parameters,
)
from repro.ir.block import Block
from repro.ir.builder import Builder, InsertPoint
from repro.ir.context import Context
from repro.ir.dialect import (
    AttrDefBinding,
    DialectBinding,
    EnumBinding,
    OpDefBinding,
)
from repro.ir.exceptions import (
    InvalidIRStructureError,
    IRError,
    UnregisteredConstructError,
    VerifyError,
)
from repro.ir.location import (
    UNKNOWN_LOC,
    FileLineColLoc,
    FusedLoc,
    Location,
    UnknownLoc,
    caller_location,
)
from repro.ir.operation import Operation
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    ParamValue,
    StringParam,
    TypeIdParam,
    param_kind,
)
from repro.ir.region import Region
from repro.ir.uniquer import DEFAULT_UNIQUER, AttributeUniquer, intern
from repro.ir.value import BlockArgument, OpResult, SSAValue, Use

__all__ = [
    "Attribute",
    "Data",
    "DynamicParametrizedAttribute",
    "DynamicTypeAttribute",
    "ParametrizedAttribute",
    "TypeAttribute",
    "attribute_name",
    "attribute_parameters",
    "Block",
    "Builder",
    "InsertPoint",
    "Context",
    "AttrDefBinding",
    "DialectBinding",
    "EnumBinding",
    "OpDefBinding",
    "InvalidIRStructureError",
    "IRError",
    "UnregisteredConstructError",
    "VerifyError",
    "Operation",
    "Location",
    "UnknownLoc",
    "FileLineColLoc",
    "FusedLoc",
    "UNKNOWN_LOC",
    "caller_location",
    "ArrayParam",
    "EnumParam",
    "FloatParam",
    "IntegerParam",
    "LocationParam",
    "OpaqueParam",
    "ParamValue",
    "StringParam",
    "TypeIdParam",
    "param_kind",
    "Region",
    "DEFAULT_UNIQUER",
    "AttributeUniquer",
    "intern",
    "BlockArgument",
    "OpResult",
    "SSAValue",
    "Use",
]
