"""Attributes and types: the compile-time value domain of the IR.

Following MLIR's design (§2 of the paper), *attributes* attach static
information to operations, and *types* classify SSA values.  Types are
modelled as attributes with the :class:`TypeAttribute` marker mixin, so a
single constraint language (IRDL, Figure 2) ranges over both.

Two families exist:

* **Registered** attributes are Python classes (the builtin dialect, or any
  natively implemented dialect).  They subclass :class:`Data` or
  :class:`ParametrizedAttribute`.
* **Dynamic** attributes are instantiated at runtime from an IRDL
  definition (§3: "the compiler then instantiates all necessary data
  structures at runtime, without recompilation").  They are instances of
  :class:`DynamicParametrizedAttribute` / :class:`DynamicTypeAttribute`
  holding a reference to their IRDL-derived definition.

All attributes are immutable, structurally comparable, and hashable.
On top of that, the producers route instances through the per-context
uniquer (:mod:`repro.ir.uniquer`) — the Python analogue of MLIR's
uniqued attribute storage — so structurally equal attributes built
through normal channels are the *same object*.  Equality therefore
starts with an identity fast path and falls back to the structural walk
only for un-interned instances, and hashes are computed once per
instance and cached.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable

from repro.ir.exceptions import VerifyError


class Attribute:
    """Base class of all attributes (and, via ``TypeAttribute``, types)."""

    #: Fully qualified name, ``<dialect>.<name>``, e.g. ``builtin.integer``.
    name: ClassVar[str] = ""

    # ``__weakref__`` lets the uniquer hold attributes weakly; ``_hash``
    # caches the structural hash (computed lazily on first use).
    __slots__ = ("__weakref__", "_hash")

    @classmethod
    def get(cls, *args: Any, **kwargs: Any) -> "Attribute":
        """Construct and intern: the canonical instance for these args.

        ``IntegerType.get(32)`` is the MLIR-style interning constructor:
        repeated calls with structurally equal arguments return the same
        object from the process-wide uniquer.
        """
        from repro.ir.uniquer import intern

        return intern(cls(*args, **kwargs))

    def _cached_hash(self, value: int) -> int:
        object.__setattr__(self, "_hash", value)
        return value

    @property
    def dialect_name(self) -> str:
        return type(self).name.split(".", 1)[0]

    @property
    def base_name(self) -> str:
        """The attribute name without its dialect namespace."""
        return type(self).name.split(".", 1)[-1]

    def verify(self) -> None:
        """Check this attribute's invariants; raise ``VerifyError`` if broken."""

    def is_type(self) -> bool:
        return isinstance(self, TypeAttribute)


class TypeAttribute:
    """Marker mixin: attributes that are types (classify SSA values)."""

    __slots__ = ()


class Data(Attribute):
    """An attribute wrapping a single immutable Python value.

    Subclasses set ``name`` and may override :meth:`verify` to validate
    the wrapped value.
    """

    __slots__ = ("data",)

    def __init__(self, data: Any):
        object.__setattr__(self, "data", data)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:  # interned attributes take this fast path
            return True
        if type(self) is not type(other):
            # ``NotImplemented`` (not ``False``) so reflected equality
            # still runs for foreign types and subclass comparisons.
            return NotImplemented
        return self.data == other.data  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            return self._cached_hash(hash((type(self), self.data)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.data!r})"


class ParametrizedAttribute(Attribute):
    """An attribute parametrized by a tuple of parameter values.

    Parameters are attributes (including types) or
    :class:`~repro.ir.params.ParamValue` instances.  Equality and hashing
    are structural over ``(class, parameters)``.
    """

    __slots__ = ("parameters",)

    #: Names of the parameters, parallel to ``parameters``.
    parameter_names: ClassVar[tuple[str, ...]] = ()

    #: Name→index lookup table, derived from ``parameter_names`` once per
    #: class so :meth:`param` is O(1) instead of an O(n) ``.index`` scan.
    _param_index: ClassVar[dict[str, int]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls._param_index = {
            name: i for i, name in enumerate(cls.parameter_names)
        }

    def __init__(self, parameters: Iterable[Any] = ()):
        object.__setattr__(self, "parameters", tuple(parameters))
        self._verify_arity()

    def _verify_arity(self) -> None:
        expected = type(self).parameter_names
        if expected and len(self.parameters) != len(expected):
            raise VerifyError(
                f"{type(self).name} expects {len(expected)} parameters "
                f"({', '.join(expected)}), got {len(self.parameters)}"
            )

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:  # interned attributes take this fast path
            return True
        if type(self) is not type(other):
            return NotImplemented
        return self.parameters == other.parameters  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            return self._cached_hash(hash((type(self), self.parameters)))

    def param(self, name: str) -> Any:
        """Look up a parameter by its declared name."""
        index = type(self)._param_index.get(name)
        if index is None:
            raise AttributeError(
                f"{type(self).name} has no parameter named {name!r}"
            )
        return self.parameters[index]

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.parameters)
        return f"{type(self).__name__}({params})"


class DynamicParametrizedAttribute(Attribute):
    """An attribute instantiated at runtime from an IRDL definition.

    Unlike registered attributes, all dynamic attributes share one Python
    class; identity comes from the attached definition binding.  Two
    dynamic attributes are equal iff they refer to the same definition and
    carry structurally equal parameters.
    """

    __slots__ = ("definition", "parameters")

    def __init__(self, definition: Any, parameters: Iterable[Any] = ()):
        object.__setattr__(self, "definition", definition)
        object.__setattr__(self, "parameters", tuple(parameters))

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def attr_name(self) -> str:
        return self.definition.qualified_name

    # ``name`` mirrors the ClassVar on registered attributes but is
    # per-instance for dynamic ones.
    @property  # type: ignore[override]
    def name(self) -> str:  # type: ignore[override]
        return self.definition.qualified_name

    @property
    def dialect_name(self) -> str:
        return self.definition.qualified_name.split(".", 1)[0]

    @property
    def base_name(self) -> str:
        return self.definition.qualified_name.split(".", 1)[-1]

    def param(self, name: str) -> Any:
        # Definitions expose a precomputed name→index table; fall back to
        # a scan for bare stand-ins used in tests.
        table = getattr(self.definition, "param_index", None)
        if table is not None:
            index = table.get(name)
        else:
            names = self.definition.parameter_names
            index = names.index(name) if name in names else None
        if index is None:
            raise AttributeError(
                f"{self.attr_name} has no parameter named {name!r}"
            )
        return self.parameters[index]

    def verify(self) -> None:
        self.definition.verify_parameters(self.parameters)

    def __eq__(self, other: object) -> bool:
        if self is other:  # interned attributes take this fast path
            return True
        if type(self) is not type(other):
            return NotImplemented
        return (
            self.definition is other.definition  # type: ignore[attr-defined]
            and self.parameters == other.parameters  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            return self._cached_hash(
                hash((type(self), id(self.definition), self.parameters))
            )

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.parameters)
        return f"<dynamic {self.attr_name}({params})>"

    def __str__(self) -> str:
        sigil = "!" if isinstance(self, TypeAttribute) else "#"
        if not self.parameters:
            return f"{sigil}{self.attr_name}"
        program = getattr(self.definition, "param_format", None)
        if program is not None:
            inner = program.render(self.parameters)
        else:
            inner = ", ".join(str(p) for p in self.parameters)
        return f"{sigil}{self.attr_name}<{inner}>"


class DynamicTypeAttribute(DynamicParametrizedAttribute, TypeAttribute):
    """A type instantiated at runtime from an IRDL ``Type`` definition."""

    __slots__ = ()


def attribute_name(attr: Attribute) -> str:
    """The fully qualified name of a registered or dynamic attribute."""
    if isinstance(attr, DynamicParametrizedAttribute):
        return attr.attr_name
    return type(attr).name


def attribute_parameters(attr: Attribute) -> tuple[Any, ...]:
    """The parameter tuple of an attribute (empty for data/singletons)."""
    if isinstance(attr, (ParametrizedAttribute, DynamicParametrizedAttribute)):
        return attr.parameters
    return ()
