"""Basic blocks: sequences of operations ending in a terminator (§2)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import InvalidIRStructureError, VerifyError
from repro.ir.value import BlockArgument

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.ir.region import Region


class Block:
    """A basic block: block arguments plus an ordered list of operations.

    Block arguments are the SSA-region replacement for phi nodes: a
    terminator transferring control to this block provides one value per
    argument.
    """

    __slots__ = ("args", "ops", "parent")

    def __init__(
        self,
        arg_types: Sequence[Attribute] = (),
        ops: Iterable["Operation"] = (),
    ):
        self.args: tuple[BlockArgument, ...] = tuple(
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        )
        self.ops: list[Operation] = []
        self.parent: Region | None = None
        for op in ops:
            self.add_op(op)

    # ------------------------------------------------------------------
    # Arguments
    # ------------------------------------------------------------------

    def insert_arg(self, arg_type: Attribute, index: int | None = None) -> BlockArgument:
        """Add a block argument (at the end by default)."""
        if index is None:
            index = len(self.args)
        args = list(self.args)
        new_arg = BlockArgument(arg_type, self, index)
        args.insert(index, new_arg)
        for i, arg in enumerate(args):
            arg.index = i
        self.args = tuple(args)
        return new_arg

    def erase_arg(self, arg: BlockArgument) -> None:
        arg.erase_check()
        args = [a for a in self.args if a is not arg]
        for i, a in enumerate(args):
            a.index = i
        self.args = tuple(args)

    # ------------------------------------------------------------------
    # Operation list management
    # ------------------------------------------------------------------

    def add_op(self, op: "Operation") -> "Operation":
        """Append an operation to the end of this block."""
        return self.insert_op(op, len(self.ops))

    def add_ops(self, ops: Iterable["Operation"]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op(self, op: "Operation", index: int) -> "Operation":
        if op.parent is not None:
            raise InvalidIRStructureError(
                f"operation {op.name} is already attached to a block"
            )
        op.parent = self
        self.ops.insert(index, op)
        return op

    def insert_op_before(self, op: "Operation", anchor: "Operation") -> "Operation":
        return self.insert_op(op, self.index_of(anchor))

    def insert_op_after(self, op: "Operation", anchor: "Operation") -> "Operation":
        return self.insert_op(op, self.index_of(anchor) + 1)

    def index_of(self, op: "Operation") -> int:
        for index, candidate in enumerate(self.ops):
            if candidate is op:
                return index
        raise InvalidIRStructureError(f"operation {op.name} is not in this block")

    def detach_op(self, op: "Operation") -> "Operation":
        self.ops.pop(self.index_of(op))
        op.parent = None
        return op

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def first_op(self) -> "Operation | None":
        return self.ops[0] if self.ops else None

    @property
    def last_op(self) -> "Operation | None":
        return self.ops[-1] if self.ops else None

    @property
    def terminator(self) -> "Operation | None":
        """The trailing operation if it is a terminator, else ``None``."""
        last = self.last_op
        if last is not None and last_is_terminator(last):
            return last
        return None

    def walk(self) -> Iterator["Operation"]:
        for op in list(self.ops):
            yield from op.walk()

    def predecessors(self) -> list["Block"]:
        """Blocks whose terminator lists this block as a successor."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            last = block.last_op
            if last is not None and any(s is self for s in last.successors):
                preds.append(block)
        return preds

    # ------------------------------------------------------------------

    def verify(self) -> None:
        for index, op in enumerate(self.ops):
            if op.parent is not self:
                raise VerifyError(
                    f"operation {op.name} has a stale parent pointer", obj=self
                )
            if op.successors and index != len(self.ops) - 1:
                raise VerifyError(
                    f"terminator {op.name} is not the last operation "
                    "of its block",
                    obj=self,
                )
            op.verify()

    def drop_all_references(self) -> None:
        """Drop operand references of everything in this block (for erase)."""
        for op in self.ops:
            op.operands = ()
            for region in op.regions:
                region.drop_all_references()

    def __repr__(self) -> str:
        return f"<Block with {len(self.args)} args, {len(self.ops)} ops>"


def last_is_terminator(op: "Operation") -> bool:
    """Whether an operation acts as a terminator.

    An operation is a terminator if its definition says so (IRDL: any
    ``Successors`` field, even empty, marks the op as a terminator) or if
    it carries successors.
    """
    if op.definition is not None and op.definition.is_terminator:
        return True
    return bool(op.successors)
