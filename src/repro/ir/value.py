"""SSA values and use-def chains.

Each SSA value is assigned at exactly one program location (§2): either as
the result of an operation (:class:`OpResult`) or as a block argument
(:class:`BlockArgument`, MLIR's functional substitute for phi nodes).
Values track their uses so rewrites can run ``replace_all_uses_with`` in
time proportional to the number of uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ir.attributes import Attribute
from repro.ir.exceptions import InvalidIRStructureError

if TYPE_CHECKING:
    from repro.ir.block import Block
    from repro.ir.operation import Operation


class Use:
    """One use of an SSA value: operand slot ``index`` of ``operation``."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Use)
            and self.operation is other.operation
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))

    def __repr__(self) -> str:
        return f"Use({self.operation.name}, operand #{self.index})"


class SSAValue:
    """Abstract base of all SSA values."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, value_type: Attribute, name_hint: str | None = None):
        self.type = value_type
        self.uses: set[Use] = set()
        self.name_hint = name_hint

    @property
    def owner(self) -> "Operation | Block":
        raise NotImplementedError

    def add_use(self, use: Use) -> None:
        self.uses.add(use)

    def remove_use(self, use: Use) -> None:
        self.uses.discard(use)

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    def users(self) -> Iterator["Operation"]:
        """Operations that use this value (deduplicated, stable order)."""
        seen: list[Operation] = []
        for use in sorted(self.uses, key=lambda u: u.index):
            if all(use.operation is not op for op in seen):
                seen.append(use.operation)
        return iter(seen)

    def replace_all_uses_with(self, replacement: "SSAValue") -> None:
        """Redirect every use of this value to ``replacement``."""
        if replacement is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, replacement)

    def erase_check(self) -> None:
        if self.uses:
            raise InvalidIRStructureError(
                f"cannot erase SSA value {self!r}: it still has "
                f"{len(self.uses)} uses"
            )


class OpResult(SSAValue):
    """The ``index``-th result of an operation."""

    __slots__ = ("op", "index")

    def __init__(self, value_type: Attribute, op: "Operation", index: int):
        super().__init__(value_type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op

    def __repr__(self) -> str:
        return f"<result #{self.index} of {self.op.name}>"


class BlockArgument(SSAValue):
    """The ``index``-th argument of a basic block."""

    __slots__ = ("block", "index")

    def __init__(self, value_type: Attribute, block: "Block", index: int):
        super().__init__(value_type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        return f"<block argument #{self.index}>"
