"""The IR context: a registry of dialects known to the compiler.

Registering an IRDL file with a context is the runtime analogue of
"writing, compiling, and linking several complex C++ or TableGen files"
(§3): afterwards the context can build, parse, print, and verify
operations of the new dialect without any recompilation step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.ir.attributes import Attribute
from repro.ir.dialect import (
    AttrDefBinding,
    DialectBinding,
    EnumBinding,
    OpDefBinding,
)
from repro.ir.exceptions import UnregisteredConstructError
from repro.ir.uniquer import DEFAULT_UNIQUER, AttributeUniquer

if TYPE_CHECKING:
    from repro.ir.block import Block
    from repro.ir.location import Location
    from repro.ir.operation import Operation
    from repro.ir.region import Region
    from repro.ir.value import SSAValue


class Context:
    """Holds the set of registered dialects.

    With ``allow_unregistered=True`` the context tolerates operations and
    dialects it does not know, which mirrors MLIR's
    ``allowUnregisteredDialects`` testing facility.

    Each context carries an :class:`AttributeUniquer` (shared with the
    process-wide default unless a private one is passed), mirroring
    MLIR's per-``MLIRContext`` uniqued storage: attributes built through
    the context's factories are interned so structurally equal instances
    are identical.
    """

    def __init__(
        self,
        allow_unregistered: bool = False,
        uniquer: AttributeUniquer | None = None,
    ):
        self.dialects: dict[str, DialectBinding] = {}
        self.allow_unregistered = allow_unregistered
        self.uniquer = uniquer if uniquer is not None else DEFAULT_UNIQUER

    def intern(self, attr: Attribute) -> Attribute:
        """The canonical instance of ``attr`` in this context's uniquer."""
        return self.uniquer.intern(attr)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_dialect(self, dialect: DialectBinding) -> DialectBinding:
        if dialect.name in self.dialects:
            raise UnregisteredConstructError(
                f"dialect {dialect.name!r} is already registered"
            )
        self.dialects[dialect.name] = dialect
        return dialect

    def get_dialect(self, name: str) -> DialectBinding | None:
        return self.dialects.get(name)

    # ------------------------------------------------------------------
    # Lookup by qualified name
    # ------------------------------------------------------------------

    def get_op_def(self, qualified_name: str) -> OpDefBinding | None:
        dialect_name, _, base = qualified_name.partition(".")
        dialect = self.dialects.get(dialect_name)
        if dialect is None:
            return None
        return dialect.operations.get(base)

    def get_type_def(self, qualified_name: str) -> AttrDefBinding | None:
        dialect_name, _, base = qualified_name.partition(".")
        dialect = self.dialects.get(dialect_name)
        if dialect is None:
            return None
        return dialect.types.get(base)

    def get_attr_def(self, qualified_name: str) -> AttrDefBinding | None:
        dialect_name, _, base = qualified_name.partition(".")
        dialect = self.dialects.get(dialect_name)
        if dialect is None:
            return None
        return dialect.attributes.get(base)

    def get_type_or_attr_def(self, qualified_name: str) -> AttrDefBinding | None:
        return self.get_type_def(qualified_name) or self.get_attr_def(
            qualified_name
        )

    def get_enum(self, qualified_name: str) -> EnumBinding | None:
        dialect_name, _, base = qualified_name.partition(".")
        dialect = self.dialects.get(dialect_name)
        if dialect is None:
            return None
        return dialect.enums.get(base)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def create_operation(
        self,
        name: str,
        operands: Sequence["SSAValue"] = (),
        result_types: Sequence[Attribute] = (),
        attributes: Mapping[str, Attribute] | None = None,
        successors: Sequence["Block"] = (),
        regions: Sequence["Region"] = (),
        location: "Location | None" = None,
    ) -> "Operation":
        """Create an operation, binding it to its registered definition.

        Raises :class:`UnregisteredConstructError` for unknown operations
        unless the context allows unregistered constructs.
        """
        from repro.ir.operation import Operation

        definition = self.get_op_def(name)
        if definition is None and not self.allow_unregistered:
            raise UnregisteredConstructError(
                f"operation {name!r} is not registered "
                f"(known dialects: {sorted(self.dialects)})"
            )
        return Operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            successors=successors,
            regions=regions,
            definition=definition,
            location=location,
        )

    def make_type(self, qualified_name: str, parameters: Sequence[Any] = ()) -> Attribute:
        """Instantiate a registered type by name (uniqued)."""
        type_def = self.get_type_def(qualified_name)
        if type_def is None:
            raise UnregisteredConstructError(
                f"type {qualified_name!r} is not registered"
            )
        return self.uniquer.intern(type_def.instantiate(parameters))

    def make_attr(self, qualified_name: str, parameters: Sequence[Any] = ()) -> Attribute:
        """Instantiate a registered attribute by name (uniqued)."""
        attr_def = self.get_attr_def(qualified_name)
        if attr_def is None:
            raise UnregisteredConstructError(
                f"attribute {qualified_name!r} is not registered"
            )
        return self.uniquer.intern(attr_def.instantiate(parameters))

    def clone(self) -> "Context":
        """A shallow copy sharing dialect bindings (cheap forking).

        The clone shares this context's uniquer: attributes interned
        through either context stay identical across both.
        """
        new = Context(
            allow_unregistered=self.allow_unregistered, uniquer=self.uniquer
        )
        new.dialects = dict(self.dialects)
        return new

    def __repr__(self) -> str:
        return f"<Context with dialects {sorted(self.dialects)}>"
