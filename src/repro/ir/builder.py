"""An insertion-point builder for constructing IR programmatically."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.ir.attributes import Attribute
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.location import Location, caller_location
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.value import SSAValue


class InsertPoint:
    """A position inside a block where new operations are inserted."""

    __slots__ = ("block", "index")

    def __init__(self, block: Block, index: int | None = None):
        self.block = block
        self.index = len(block.ops) if index is None else index

    @classmethod
    def at_end(cls, block: Block) -> "InsertPoint":
        return cls(block)

    @classmethod
    def at_start(cls, block: Block) -> "InsertPoint":
        return cls(block, 0)

    @classmethod
    def before(cls, op: Operation) -> "InsertPoint":
        assert op.parent is not None
        return cls(op.parent, op.parent.index_of(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertPoint":
        assert op.parent is not None
        return cls(op.parent, op.parent.index_of(op) + 1)


class Builder:
    """Creates operations through a context at a movable insertion point.

    Usage::

        builder = Builder(ctx, InsertPoint.at_end(block))
        mul = builder.create("cmath.mul", operands=[p, q], result_types=[t])
    """

    def __init__(self, context: Context, insert_point: InsertPoint | None = None,
                 track_locations: bool = True):
        self.context = context
        self.insert_point = insert_point
        #: When set (the default), :meth:`create` stamps operations with
        #: the Python caller's file/line, so programmatically built IR
        #: carries provenance just like parsed IR.
        self.track_locations = track_locations

    def set_insertion_point(self, insert_point: InsertPoint) -> None:
        self.insert_point = insert_point

    def insert(self, op: Operation) -> Operation:
        """Insert an already-built operation at the insertion point."""
        if self.insert_point is None:
            return op
        self.insert_point.block.insert_op(op, self.insert_point.index)
        self.insert_point.index += 1
        return op

    def create(
        self,
        name: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
        attributes: Mapping[str, Attribute] | None = None,
        successors: Sequence[Block] = (),
        regions: Sequence[Region] = (),
        location: Location | None = None,
    ) -> Operation:
        """Create an operation via the context and insert it.

        Without an explicit ``location`` the operation is attributed to
        the calling Python frame (when ``track_locations`` is on).
        """
        if location is None and self.track_locations:
            location = caller_location()
        op = self.context.create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            successors=successors,
            regions=regions,
            location=location,
        )
        return self.insert(op)

    def type(self, qualified_name: str, parameters: Sequence[Any] = ()) -> Attribute:
        return self.context.make_type(qualified_name, parameters)

    def attr(self, qualified_name: str, parameters: Sequence[Any] = ()) -> Attribute:
        return self.context.make_attr(qualified_name, parameters)
