"""Operations: the unit of computation in the IR.

An operation takes previously defined SSA values as operands and produces
zero or more result values (§2).  Operations may carry attributes (static
information), successors (for terminators passing control between basic
blocks), and nested regions (hierarchical control flow, MLIR's extension
of classical SSA).

Operations are *generic by default*: any name with any number of operands,
results, regions, and attributes is representable.  Invariants come from
an attached :class:`~repro.ir.dialect.OpDefBinding` — hand-written for
native dialects, generated from IRDL for dynamic ones (§3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import InvalidIRStructureError, VerifyError
from repro.ir.location import UNKNOWN_LOC, Location
from repro.ir.value import OpResult, SSAValue, Use

if TYPE_CHECKING:
    from repro.ir.block import Block
    from repro.ir.dialect import OpDefBinding
    from repro.ir.region import Region


class Operation:
    """A single IR operation."""

    __slots__ = (
        "name",
        "_operands",
        "results",
        "attributes",
        "successors",
        "regions",
        "parent",
        "definition",
        "location",
    )

    def __init__(
        self,
        name: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[Attribute] = (),
        attributes: Mapping[str, Attribute] | None = None,
        successors: Sequence["Block"] = (),
        regions: Sequence["Region"] = (),
        definition: "OpDefBinding | None" = None,
        location: Location | None = None,
    ):
        self.name = name
        self._operands: tuple[SSAValue, ...] = ()
        self.results: tuple[OpResult, ...] = tuple(
            OpResult(t, self, i) for i, t in enumerate(result_types)
        )
        self.attributes: dict[str, Attribute] = dict(attributes or {})
        self.successors: list[Block] = list(successors)
        self.regions: list[Region] = []
        self.parent: Block | None = None
        self.definition = definition
        self.location: Location = (
            location if location is not None else UNKNOWN_LOC
        )
        self._set_operands(operands)
        for region in regions:
            self.add_region(region)

    # ------------------------------------------------------------------
    # Operands and use-def maintenance
    # ------------------------------------------------------------------

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        return self._operands

    @operands.setter
    def operands(self, new_operands: Sequence[SSAValue]) -> None:
        self._set_operands(new_operands)

    def _set_operands(self, new_operands: Sequence[SSAValue]) -> None:
        for index, operand in enumerate(self._operands):
            operand.remove_use(Use(self, index))
        self._operands = tuple(new_operands)
        for index, operand in enumerate(self._operands):
            operand.add_use(Use(self, index))

    def set_operand(self, index: int, value: SSAValue) -> None:
        """Replace the operand at ``index``, maintaining use lists."""
        self._operands[index].remove_use(Use(self, index))
        operands = list(self._operands)
        operands[index] = value
        self._operands = tuple(operands)
        value.add_use(Use(self, index))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def dialect_name(self) -> str:
        return self.name.split(".", 1)[0]

    def add_region(self, region: "Region") -> None:
        if region.parent is not None:
            raise InvalidIRStructureError(
                "region is already attached to an operation"
            )
        region.parent = self
        self.regions.append(region)

    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    def operand(self, index: int = 0) -> SSAValue:
        return self._operands[index]

    @property
    def parent_op(self) -> "Operation | None":
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def is_ancestor_of(self, other: "Operation") -> bool:
        current = other.parent_op
        while current is not None:
            if current is self:
                return True
            current = current.parent_op
        return False

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def walk(self, include_self: bool = True) -> Iterator["Operation"]:
        """Pre-order traversal of this operation and everything nested."""
        if include_self:
            yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    yield from op.walk()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def detach(self) -> "Operation":
        """Remove this operation from its parent block, keeping it intact."""
        if self.parent is not None:
            self.parent.detach_op(self)
        return self

    def erase(self, *, safe_erase: bool = True) -> None:
        """Detach and destroy this operation.

        With ``safe_erase`` (the default) the operation's results must be
        unused.  Nested regions are erased recursively.
        """
        self.detach()
        if safe_erase:
            for res in self.results:
                res.erase_check()
        for region in self.regions:
            region.drop_all_references()
        self._set_operands(())

    def replace_by(self, values: Sequence[SSAValue]) -> None:
        """Replace all result uses with ``values`` and erase this op."""
        if len(values) != len(self.results):
            raise InvalidIRStructureError(
                f"replace_by got {len(values)} values for "
                f"{len(self.results)} results"
            )
        for result, value in zip(self.results, values):
            result.replace_all_uses_with(value)
        self.erase()

    def clone(
        self, value_map: dict[SSAValue, SSAValue] | None = None
    ) -> "Operation":
        """Deep-copy this operation, remapping operands through ``value_map``."""
        from repro.ir.region import Region

        value_map = value_map if value_map is not None else {}
        new_operands = [value_map.get(operand, operand) for operand in self._operands]
        new_op = Operation(
            self.name,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            successors=list(self.successors),
            definition=self.definition,
            location=self.location,
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = Region()
            region.clone_into(new_region, value_map)
            new_op.add_region(new_region)
        return new_op

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, recursive: bool = True) -> None:
        """Check structural invariants, then the attached definition's.

        Structural checks are dialect-independent: parent links are
        consistent, successors are only present on block terminators, and
        every region is well-formed.  Definition-level invariants (operand
        counts, type constraints, …) run through ``definition.verify`` —
        the code path IRDL-generated verifiers plug into.
        """
        for attr in self.attributes.values():
            attr.verify()
        for index, operand in enumerate(self._operands):
            if Use(self, index) not in operand.uses:
                raise VerifyError(
                    f"use-def chain broken: operand #{index} of {self.name} "
                    "does not know about its use",
                    obj=self,
                )
        if self.successors:
            if self.parent is not None and self.parent.ops and self.parent.ops[-1] is not self:
                raise VerifyError(
                    f"operation {self.name} has successors but is not the "
                    "last operation of its block",
                    obj=self,
                )
            for successor in self.successors:
                if self.parent is not None and successor.parent is not self.parent.parent:
                    raise VerifyError(
                        f"successor of {self.name} is not in the same region",
                        obj=self,
                    )
        if recursive:
            for region in self.regions:
                region.verify()
        if self.definition is not None:
            try:
                self.definition.verify(self)
            except VerifyError as err:
                from repro.obs.instrument import OBS

                remarks = OBS.remarks
                if remarks.enabled:
                    remarks.emit(
                        "verify-failure",
                        origin="verifier",
                        name=type(err).__name__,
                        op=self.name,
                        location=self.location,
                        message=str(err),
                    )
                raise

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<Operation {self.name}: {len(self._operands)} operands, "
            f"{len(self.results)} results, {len(self.regions)} regions>"
        )
