"""Source locations: where an operation came from.

MLIR threads location attributes through every layer of the compiler so
diagnostics and optimization remarks can point back at user code; this
module is the same idea scaled to the reproduction.  Three concrete
kinds:

* :class:`UnknownLoc` — the absence of provenance (a shared singleton,
  :data:`UNKNOWN_LOC`);
* :class:`FileLineColLoc` — a point in a source file, attached by the
  textual parser and by the builder API (caller frames);
* :class:`FusedLoc` — the merge of several locations, produced when a
  rewrite pattern replaces a set of matched operations with new ones.

Locations are immutable and hashable, so they are shareable between
operations and safely usable as pool keys by the bytecode encoder.
They are *not* attributes: they never affect IR equality or
verification, mirroring MLIR's decision to keep locations out of the
operation's folding identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from repro.utils.source import Span


class Location:
    """Base class of source locations."""

    __slots__ = ()

    @property
    def is_unknown(self) -> bool:
        return False

    def resolve(self) -> "FileLineColLoc | None":
        """The primary file position behind this location, if any."""
        return None

    @staticmethod
    def fuse(locations: Iterable["Location"]) -> "Location":
        """Merge locations, MLIR ``FusedLoc`` style.

        Nested fused locations are flattened, unknowns and duplicates
        are dropped, and degenerate merges collapse: zero distinct
        inputs yield :data:`UNKNOWN_LOC`, one yields itself.
        """
        flat: list[Location] = []
        seen: set[Location] = set()
        for loc in locations:
            parts = loc.locations if isinstance(loc, FusedLoc) else (loc,)
            for part in parts:
                if part.is_unknown or part in seen:
                    continue
                seen.add(part)
                flat.append(part)
        if not flat:
            return UNKNOWN_LOC
        if len(flat) == 1:
            return flat[0]
        return FusedLoc(flat)

    @staticmethod
    def from_span(span: "Span") -> "FileLineColLoc":
        """The location of a span's start position."""
        start = span.start_position
        return FileLineColLoc(span.source.name, start.line, start.column)


class UnknownLoc(Location):
    """No provenance information.  Use the :data:`UNKNOWN_LOC` singleton."""

    __slots__ = ()

    @property
    def is_unknown(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnknownLoc)

    def __hash__(self) -> int:
        return hash(UnknownLoc)

    def __str__(self) -> str:
        return "unknown"

    def __repr__(self) -> str:
        return "UnknownLoc()"


#: The shared "no location" instance every operation starts with.
UNKNOWN_LOC = UnknownLoc()


class FileLineColLoc(Location):
    """A 1-based line/column position in a named source file."""

    __slots__ = ("filename", "line", "col")

    def __init__(self, filename: str, line: int, col: int):
        self.filename = filename
        self.line = line
        self.col = col

    def resolve(self) -> "FileLineColLoc":
        return self

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FileLineColLoc)
            and self.filename == other.filename
            and self.line == other.line
            and self.col == other.col
        )

    def __hash__(self) -> int:
        return hash((FileLineColLoc, self.filename, self.line, self.col))

    def __str__(self) -> str:
        return f'"{self.filename}":{self.line}:{self.col}'

    def __repr__(self) -> str:
        return f"FileLineColLoc({self.filename!r}, {self.line}, {self.col})"


class FusedLoc(Location):
    """Several locations merged into one (rewrite provenance).

    Build through :meth:`Location.fuse`, which flattens and
    deduplicates; the constructor stores its inputs as given.
    """

    __slots__ = ("locations",)

    def __init__(self, locations: Sequence[Location]):
        self.locations: tuple[Location, ...] = tuple(locations)

    def resolve(self) -> "FileLineColLoc | None":
        for loc in self.locations:
            resolved = loc.resolve()
            if resolved is not None:
                return resolved
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FusedLoc) and self.locations == other.locations

    def __hash__(self) -> int:
        return hash((FusedLoc, self.locations))

    def __str__(self) -> str:
        inner = ", ".join(str(loc) for loc in self.locations)
        return f"fused[{inner}]"

    def __repr__(self) -> str:
        return f"FusedLoc({list(self.locations)!r})"


def caller_location(depth: int = 1) -> Location:
    """The location of a Python caller frame (builder provenance).

    ``depth`` counts frames above the caller of this function: the
    default attributes to whoever called the function invoking us.
    """
    import sys

    try:
        frame = sys._getframe(depth + 1)
    except ValueError:
        return UNKNOWN_LOC
    return FileLineColLoc(frame.f_code.co_filename, frame.f_lineno, 1)
