"""Parameter values carried by parametrized types and attributes.

In MLIR, type and attribute parameters are arbitrary C++ values.  Our
reproduction mirrors the inventory the paper reports in Figure 8: types
and attributes are parametrized by *other* types and attributes, integers,
floats, strings, enums, arrays, source locations, type ids, and — rarely —
domain-specific values that require the IRDL-Py escape hatch
(:class:`OpaqueParam`).

Every parameter value is immutable and hashable so that parametrized
types compare and hash structurally, exactly as MLIR's uniqued types do.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Union

# An attribute (including a type) may itself be used as a parameter, so the
# full parameter domain is ``Attribute | ParamValue``.  We import lazily to
# avoid a cycle with repro.ir.attributes.
ParamLike = Union["ParamValue", "object"]

#: Integer widths accepted by the builtin fixed-width integer parameters,
#: matching IRDL's ``int8_t`` … ``uint64_t`` constraint constructors.
INTEGER_PARAM_WIDTHS = (8, 16, 32, 64)


class ParamValue:
    """Base class for non-attribute parameter values."""

    __slots__ = ()

    #: A short kind tag used by the analysis tooling (Figure 8).
    kind = "param"


@dataclass(frozen=True)
class IntegerParam(ParamValue):
    """A fixed-width integer parameter (``int8_t`` … ``uint64_t``)."""

    value: int
    bitwidth: int = 32
    signed: bool = True

    kind = "integer"

    def __post_init__(self) -> None:
        if self.bitwidth not in INTEGER_PARAM_WIDTHS:
            raise ValueError(f"unsupported integer parameter width {self.bitwidth}")
        low, high = self.value_range(self.bitwidth, self.signed)
        if not low <= self.value <= high:
            raise ValueError(
                f"value {self.value} does not fit in "
                f"{'' if self.signed else 'u'}int{self.bitwidth}_t"
            )

    @staticmethod
    def value_range(bitwidth: int, signed: bool) -> tuple[int, int]:
        if signed:
            return -(1 << (bitwidth - 1)), (1 << (bitwidth - 1)) - 1
        return 0, (1 << bitwidth) - 1

    @property
    def type_name(self) -> str:
        return f"{'' if self.signed else 'u'}int{self.bitwidth}_t"

    def __str__(self) -> str:
        return f"{self.value} : {self.type_name}"


@dataclass(frozen=True, eq=False)
class FloatParam(ParamValue):
    """A floating-point parameter value.

    Equality and hashing are over the IEEE-754 *bit pattern*, not the
    numeric value: ``NaN`` payloads compare equal to themselves and
    ``-0.0`` stays distinct from ``0.0``, so interning and serialization
    round-trips are bit-exact.  Values whose decimal ``repr`` is lossy
    or unparseable (``inf``, ``nan``) print in the bit-exact hex form
    ``0x<16 hex digits>`` that the textual parser accepts back.
    """

    value: float
    bitwidth: int = 64

    kind = "float"

    def bits(self) -> int:
        """The raw IEEE-754 double bit pattern of the value."""
        return struct.unpack("<Q", struct.pack("<d", self.value))[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FloatParam):
            return NotImplemented
        return self.bitwidth == other.bitwidth and self.bits() == other.bits()

    def __hash__(self) -> int:
        return hash((FloatParam, self.bits(), self.bitwidth))

    def __str__(self) -> str:
        if math.isfinite(self.value):
            return f"{self.value!r} : f{self.bitwidth}"
        return f"0x{self.bits():016X} : f{self.bitwidth}"


@dataclass(frozen=True)
class StringParam(ParamValue):
    """A string parameter value."""

    value: str

    kind = "string"

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class EnumParam(ParamValue):
    """A constructor of an enum declared with IRDL's ``Enum`` directive.

    ``enum_name`` is the fully qualified enum name (``cmath.signedness``)
    and ``constructor`` one of its declared constructors (``Signed``).
    """

    enum_name: str
    constructor: str

    kind = "enum"

    def __str__(self) -> str:
        short = self.enum_name.rsplit(".", 1)[-1]
        return f"{short}.{self.constructor}"


@dataclass(frozen=True)
class ArrayParam(ParamValue):
    """An array of parameter values (attributes or other params)."""

    elements: tuple[ParamLike, ...]

    kind = "array"

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class LocationParam(ParamValue):
    """A source-location parameter, one of MLIR's builtin parameter kinds."""

    filename: str
    line: int
    column: int

    kind = "location"

    def __str__(self) -> str:
        return f'loc("{self.filename}":{self.line}:{self.column})'


@dataclass(frozen=True)
class TypeIdParam(ParamValue):
    """A type-id parameter uniquely identifying a host-language class.

    MLIR uses ``TypeID`` values to identify C++ classes; we carry the
    qualified Python class name instead.
    """

    qualified_name: str

    kind = "type id"

    def __str__(self) -> str:
        return f"typeid<{self.qualified_name}>"


@dataclass(frozen=True)
class OpaqueParam(ParamValue):
    """A domain-specific parameter wrapped via IRDL-Py's ``TypeOrAttrParam``.

    ``class_name`` names the host-language class (the paper's
    ``CppClassName``); ``value`` holds an immutable Python surrogate.
    """

    class_name: str
    value: object

    kind = "opaque"

    def __str__(self) -> str:
        return f'opaque<"{self.class_name}", "{self.value}">'


def param_kind(value: object) -> str:
    """Classify a parameter value for the Figure 8 analysis.

    Attributes and types classify as ``"attr/type"``; every
    :class:`ParamValue` reports its own ``kind`` tag.
    """
    if isinstance(value, ParamValue):
        return value.kind
    return "attr/type"
