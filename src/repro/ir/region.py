"""Regions: control-flow graphs nested inside operations.

A region contains a CFG of basic blocks with a single entry block (§2).
Regions are MLIR's extension to classical SSA that lets operations carry
hierarchical control flow (``scf.if``, loops, functions, modules, …).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.ir.block import Block
from repro.ir.exceptions import InvalidIRStructureError, VerifyError

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.ir.value import SSAValue


class Region:
    """An ordered list of basic blocks; the first block is the entry."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Iterable[Block] = ()):
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks:
            self.add_block(block)

    @property
    def entry_block(self) -> Block | None:
        return self.blocks[0] if self.blocks else None

    def add_block(self, block: Block) -> Block:
        if block.parent is not None:
            raise InvalidIRStructureError("block is already attached to a region")
        block.parent = self
        self.blocks.append(block)
        return block

    def insert_block(self, block: Block, index: int) -> Block:
        if block.parent is not None:
            raise InvalidIRStructureError("block is already attached to a region")
        block.parent = self
        self.blocks.insert(index, block)
        return block

    def detach_block(self, block: Block) -> Block:
        for index, candidate in enumerate(self.blocks):
            if candidate is block:
                self.blocks.pop(index)
                block.parent = None
                return block
        raise InvalidIRStructureError("block is not in this region")

    def walk(self) -> Iterator["Operation"]:
        for block in self.blocks:
            yield from block.walk()

    def clone_into(
        self, target: "Region", value_map: dict["SSAValue", "SSAValue"]
    ) -> None:
        """Clone all blocks of this region into ``target``.

        ``value_map`` maps original values to clones; it is extended with
        block arguments and op results as they are created, and used to
        remap operands and successors.
        """
        block_map: dict[Block, Block] = {}
        for block in self.blocks:
            new_block = Block(arg_types=[a.type for a in block.args])
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
            block_map[block] = new_block
            target.add_block(new_block)
        for block in self.blocks:
            new_block = block_map[block]
            for op in block.ops:
                new_op = op.clone(value_map)
                new_op.successors = [
                    block_map.get(succ, succ) for succ in new_op.successors
                ]
                new_block.add_op(new_op)

    def verify(self) -> None:
        for block in self.blocks:
            if block.parent is not self:
                raise VerifyError("block has a stale parent pointer", obj=self)
            block.verify()

    def drop_all_references(self) -> None:
        for block in self.blocks:
            block.drop_all_references()

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"
