"""Exception hierarchy for the IR core."""

from __future__ import annotations


class IRError(Exception):
    """Base class for all IR-level errors."""


class VerifyError(IRError):
    """An IR object violates one of its invariants.

    Raised by ``verify()`` on attributes, types, operations, blocks,
    regions, and by constraint checks generated from IRDL definitions.
    """

    def __init__(self, message: str, *, obj: object | None = None):
        self.obj = obj
        super().__init__(message)


class UnregisteredConstructError(IRError):
    """An operation, type, or attribute name is not registered.

    Raised when a context with ``allow_unregistered=False`` encounters a
    construct from a dialect it does not know about.
    """


class InvalidIRStructureError(IRError):
    """Structural misuse of the IR API (e.g. re-attaching an owned block)."""
