"""Dialect bindings: the registration interface between definitions and IR.

A *dialect* groups operations, types, and attributes under a namespace
(§2).  This module defines the binding classes a dialect registers with a
:class:`~repro.ir.context.Context`:

* :class:`OpDefBinding` — knows how to verify (and optionally parse/print)
  one kind of operation;
* :class:`AttrDefBinding` — likewise for one kind of type or attribute;
* :class:`EnumBinding` — an enum declared by the dialect (IRDL §4.8);
* :class:`DialectBinding` — the namespace bundling all of the above.

Native dialects (``builtin``, ``func``, …) implement these classes by
hand; the IRDL instantiation layer (§3) generates them at runtime from a
dialect definition file.  Both flavours flow through the exact same
registration and verification code paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyError
from repro.ir.location import UNKNOWN_LOC, Location

if TYPE_CHECKING:
    from repro.ir.operation import Operation


class OpDefBinding:
    """The definition backing one operation kind.

    ``verify`` is the hook IRDL-generated verifiers plug into — it
    corresponds to the hand-written ``MulOp::verify`` style code the paper
    shows in Listing 2, derived automatically in our system.
    """

    def __init__(
        self,
        qualified_name: str,
        *,
        summary: str = "",
        is_terminator: bool = False,
        verifier: Callable[["Operation"], None] | None = None,
    ):
        self.qualified_name = qualified_name
        self.summary = summary
        self.is_terminator = is_terminator
        self._verifier = verifier
        #: Where the definition lives (IRDL instantiation fills this in
        #: with the declaration's source span; native dialects keep the
        #: unknown default).
        self.location: Location = UNKNOWN_LOC

    @property
    def dialect_name(self) -> str:
        return self.qualified_name.split(".", 1)[0]

    @property
    def base_name(self) -> str:
        return self.qualified_name.split(".", 1)[-1]

    def verify(self, op: "Operation") -> None:
        if self._verifier is not None:
            self._verifier(op)

    # -- optional custom assembly format ------------------------------

    def has_custom_format(self) -> bool:
        return False

    def prepare_custom(self, op: "Operation") -> None:
        """Pre-flight check before printing the custom format.

        Raises :class:`VerifyError` when the operation cannot be printed
        in its declarative format (e.g. it is invalid); the printer then
        falls back to the generic form.
        """

    def print_custom(self, op: "Operation", printer: Any) -> None:
        raise NotImplementedError

    def parse_custom(self, parser: Any) -> "Operation":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<OpDefBinding {self.qualified_name}>"


class AttrDefBinding:
    """The definition backing one type or attribute kind."""

    def __init__(
        self,
        qualified_name: str,
        *,
        is_type: bool,
        parameter_names: Sequence[str] = (),
        summary: str = "",
        param_verifier: Callable[[tuple[Any, ...]], None] | None = None,
        constructor: Callable[[tuple[Any, ...]], Attribute] | None = None,
        canonical_name: str | None = None,
    ):
        self.qualified_name = qualified_name
        self.is_type = is_type
        self.parameter_names = tuple(parameter_names)
        #: Name→index table so dynamic ``param()`` lookups are O(1).
        self.param_index = {
            name: i for i, name in enumerate(self.parameter_names)
        }
        self.summary = summary
        self._param_verifier = param_verifier
        self._constructor = constructor
        #: The attribute name instances of this definition carry.  Alias
        #: registrations (e.g. ``builtin.string_attr`` for
        #: ``builtin.string``) construct attributes under a different
        #: canonical name than their registration name.
        self.canonical_name = canonical_name or qualified_name

    @property
    def dialect_name(self) -> str:
        return self.qualified_name.split(".", 1)[0]

    @property
    def base_name(self) -> str:
        return self.qualified_name.split(".", 1)[-1]

    def verify_parameters(self, parameters: tuple[Any, ...]) -> None:
        if self.parameter_names and len(parameters) != len(self.parameter_names):
            raise VerifyError(
                f"{self.qualified_name} expects {len(self.parameter_names)} "
                f"parameters, got {len(parameters)}"
            )
        if self._param_verifier is not None:
            self._param_verifier(parameters)

    def instantiate(self, parameters: Sequence[Any] = ()) -> Attribute:
        """Build a verified, uniqued attribute/type instance."""
        params = tuple(parameters)
        self.verify_parameters(params)
        if self._constructor is None:
            raise VerifyError(
                f"{self.qualified_name} has no registered constructor"
            )
        from repro.ir.uniquer import intern

        return intern(self._constructor(params))

    def __repr__(self) -> str:
        kind = "type" if self.is_type else "attribute"
        return f"<AttrDefBinding {kind} {self.qualified_name}>"


class EnumBinding:
    """An enumerated type declared by a dialect (IRDL ``Enum``, §4.8)."""

    def __init__(self, qualified_name: str, constructors: Sequence[str]):
        self.qualified_name = qualified_name
        self.constructors = tuple(constructors)
        if len(set(self.constructors)) != len(self.constructors):
            raise VerifyError(
                f"enum {qualified_name} has duplicate constructors"
            )

    @property
    def base_name(self) -> str:
        return self.qualified_name.split(".", 1)[-1]

    def has_constructor(self, name: str) -> bool:
        return name in self.constructors

    def __repr__(self) -> str:
        return f"<EnumBinding {self.qualified_name}>"


class DialectBinding:
    """A namespace of operation, type, attribute, and enum definitions."""

    def __init__(self, name: str):
        self.name = name
        self.operations: dict[str, OpDefBinding] = {}
        self.types: dict[str, AttrDefBinding] = {}
        self.attributes: dict[str, AttrDefBinding] = {}
        self.enums: dict[str, EnumBinding] = {}

    def register_op(self, op_def: OpDefBinding) -> OpDefBinding:
        self._check_namespace(op_def.qualified_name)
        self.operations[op_def.base_name] = op_def
        return op_def

    def register_type(self, type_def: AttrDefBinding) -> AttrDefBinding:
        self._check_namespace(type_def.qualified_name)
        if not type_def.is_type:
            raise VerifyError(
                f"{type_def.qualified_name} is an attribute, not a type"
            )
        self.types[type_def.base_name] = type_def
        return type_def

    def register_attr(self, attr_def: AttrDefBinding) -> AttrDefBinding:
        self._check_namespace(attr_def.qualified_name)
        if attr_def.is_type:
            raise VerifyError(
                f"{attr_def.qualified_name} is a type, not an attribute"
            )
        self.attributes[attr_def.base_name] = attr_def
        return attr_def

    def register_enum(self, enum: EnumBinding) -> EnumBinding:
        self._check_namespace(enum.qualified_name)
        self.enums[enum.base_name] = enum
        return enum

    def _check_namespace(self, qualified_name: str) -> None:
        dialect = qualified_name.split(".", 1)[0]
        if dialect != self.name:
            raise VerifyError(
                f"cannot register {qualified_name!r} in dialect {self.name!r}"
            )

    def __repr__(self) -> str:
        return (
            f"<DialectBinding {self.name}: {len(self.operations)} ops, "
            f"{len(self.types)} types, {len(self.attributes)} attrs>"
        )
