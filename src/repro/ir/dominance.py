"""SSA dominance: dominator trees and use-before-def verification.

Classical SSA requires every use of a value to be dominated by its
definition (§2).  This module computes per-region dominator trees with
the iterative Cooper–Harvey–Kennedy algorithm and exposes
:func:`verify_dominance`, which checks the property recursively through
nested regions (a use inside a nested region is dominated by any
definition in an ancestor block, matching MLIR's semantics for
non-isolated regions).
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.block import Block
from repro.ir.exceptions import VerifyError
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.value import BlockArgument, OpResult, SSAValue


class DominanceInfo:
    """Immediate dominators for the blocks of one region."""

    def __init__(self, region: Region):
        self.region = region
        self._idom: dict[Block, Block | None] = {}
        if region.blocks:
            self._compute()

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        blocks = self.region.blocks
        if len(blocks) > 1:
            # A block with no operations has no terminator, so control
            # can never leave it — in a multi-block region that is a
            # malformed CFG, not an unreachable block.
            for i, block in enumerate(blocks):
                if block.last_op is None:
                    raise VerifyError(
                        f"block #{i} in a multi-block region is empty and "
                        f"has no terminator",
                        obj=block,
                    )
        entry = blocks[0]
        order = self._reverse_postorder(entry)
        index = {block: i for i, block in enumerate(order)}
        predecessors: dict[Block, list[Block]] = {b: [] for b in blocks}
        for block in blocks:
            last = block.last_op
            if last is None:
                continue
            for successor in last.successors:
                if successor in predecessors:
                    predecessors[successor].append(block)

        idom: dict[Block, Block | None] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in order[1:]:
                candidates = [
                    p for p in predecessors[block]
                    if p in idom and p in index
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(new_idom, other, idom, index)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self._idom = {
            block: (None if block is entry else idom.get(block))
            for block in blocks
        }
        # Unreachable blocks have no dominator information; they dominate
        # only themselves.
        for block in blocks:
            if block not in idom and block is not entry:
                self._idom[block] = None

    def _reverse_postorder(self, entry: Block) -> list[Block]:
        seen: set[int] = set()
        order: list[Block] = []

        def visit(block: Block) -> None:
            if id(block) in seen:
                return
            seen.add(id(block))
            last = block.last_op
            if last is not None:
                for successor in last.successors:
                    visit(successor)
            order.append(block)

        visit(entry)
        order.reverse()
        return order

    @staticmethod
    def _intersect(left: Block, right: Block, idom, index) -> Block:
        while left is not right:
            while index.get(left, -1) > index.get(right, -1):
                parent = idom.get(left)
                if parent is None or parent is left:
                    return right
                left = parent
            while index.get(right, -1) > index.get(left, -1):
                parent = idom.get(right)
                if parent is None or parent is right:
                    return left
                right = parent
        return left

    # ------------------------------------------------------------------

    def immediate_dominator(self, block: Block) -> Block | None:
        return self._idom.get(block)

    def dominates_block(self, dominator: Block, block: Block) -> bool:
        """Whether ``dominator`` dominates ``block`` (reflexive)."""
        current: Block | None = block
        seen = 0
        while current is not None:
            if current is dominator:
                return True
            current = self._idom.get(current)
            seen += 1
            if seen > len(self.region.blocks):
                return False
        return False

    def is_reachable(self, block: Block) -> bool:
        return block is self.region.entry_block or self._idom.get(block) is not None

    def dominates(self, a: "Block | Operation", b: "Block | Operation") -> bool:
        """Whether ``a`` dominates ``b`` (reflexive).

        Accepts blocks of this region or operations nested anywhere
        under it; an operation is located by its ancestor block in this
        region.  Same-block operations compare by position; an op not
        under this region dominates (and is dominated by) nothing.
        """
        if isinstance(a, Block) and isinstance(b, Block):
            return self.dominates_block(a, b)
        if a is b:
            return True
        point_a = self._locate(a)
        point_b = self._locate(b)
        if point_a is None or point_b is None:
            return False
        block_a, index_a = point_a
        block_b, index_b = point_b
        if block_a is block_b:
            return index_a <= index_b
        return self.dominates_block(block_a, block_b)

    def _locate(self, obj: "Block | Operation") -> tuple[Block, int] | None:
        """The (block of this region, op index) containing ``obj``."""
        if isinstance(obj, Block):
            # A block's "point" is its entry: it dominates everything in
            # it, and is dominated by no single op of its own.
            block: Block | None = obj
            index = -1
        else:
            current: Operation | None = obj
            block = current.parent
            while block is not None and block.parent is not self.region:
                owner = block.parent.parent if block.parent is not None else None
                if owner is None:
                    return None
                current = owner
                block = current.parent
            if block is None or current is None:
                return None
            index = block.index_of(current)
        if block.parent is not self.region:
            return None
        return block, index


def _defining_point(value: SSAValue) -> tuple[Block | None, int]:
    """The (block, index) after which a value is available.

    Block arguments are available from index -1 (before the first op).
    """
    if isinstance(value, BlockArgument):
        return value.block, -1
    assert isinstance(value, OpResult)
    op = value.op
    if op.parent is None:
        return None, -1
    return op.parent, op.parent.index_of(op)


def _enclosing_chain(op: Operation) -> Iterator[tuple[Block, int]]:
    """(block, op-index) pairs for the op and each enclosing ancestor."""
    current: Operation | None = op
    while current is not None and current.parent is not None:
        block = current.parent
        yield block, block.index_of(current)
        current = block.parent.parent if block.parent is not None else None


def value_dominates_use(value: SSAValue, user: Operation,
                        cache: dict[int, DominanceInfo] | None = None,
                        manager: object | None = None) -> bool:
    """Whether ``value`` is available at ``user`` under SSA dominance.

    Repeated queries share dominator trees through either a plain
    ``cache`` dict or an :class:`~repro.analysis.dataflow.manager.
    AnalysisManager` (which survives across calls and is invalidated on
    mutation); ``manager`` wins when both are given.
    """
    def_block, def_index = _defining_point(value)
    if def_block is None:
        return False
    for use_block, use_index in _enclosing_chain(user):
        if use_block is def_block:
            return def_index < use_index
        if def_block.parent is use_block.parent and def_block.parent is not None:
            region = def_block.parent
            if manager is not None:
                info = manager.dominance(region)
            elif cache is not None:
                info = cache.get(id(region))
                if info is None:
                    info = cache[id(region)] = DominanceInfo(region)
            else:
                info = DominanceInfo(region)
            return info.dominates_block(def_block, use_block)
    return False


def verify_dominance(root: Operation, manager: object | None = None) -> None:
    """Check that every use in ``root``'s tree is dominated by its def.

    Raises :class:`VerifyError` naming the offending operand.  Passing
    an :class:`~repro.analysis.dataflow.manager.AnalysisManager` reuses
    (and populates) its cached per-region dominator trees instead of
    rebuilding them for this one traversal.
    """
    cache: dict[int, DominanceInfo] | None = None if manager is not None else {}
    for op in root.walk():
        for i, operand in enumerate(op.operands):
            if not value_dominates_use(operand, op, cache, manager):
                raise VerifyError(
                    f"operand #{i} of {op.name} is not dominated by its "
                    f"definition",
                    obj=op,
                )
