"""Documentation generation from IRDL definitions.

Because IRDL definitions are structured data, reference documentation is
a traversal (§3: "the concise, well-defined, and well-documented
interface that IRDL provides").  This module renders a dialect's
operations, types, and attributes — including their ``Summary`` fields
and constraint signatures — as Markdown, in the style of MLIR's
generated dialect docs.
"""

from __future__ import annotations

import io

from repro.irdl.ast import Variadicity
from repro.irdl.defs import ArgDef, DialectDef, OpDef, TypeDef


def _constraint_text(constraint) -> str:
    return repr(constraint)


def _arg_line(arg: ArgDef) -> str:
    marker = {
        Variadicity.SINGLE: "",
        Variadicity.OPTIONAL: " *(optional)*",
        Variadicity.VARIADIC: " *(variadic)*",
    }[arg.variadicity]
    return f"| `{arg.name}` | `{_constraint_text(arg.constraint)}`{marker} |"


def render_op_doc(op: OpDef) -> str:
    out = io.StringIO()
    out.write(f"### `{op.qualified_name}`\n\n")
    if op.summary:
        out.write(f"_{op.summary}_\n\n")
    if op.is_terminator:
        out.write("This operation is a **terminator**")
        if op.successors:
            out.write(f" with successors: {', '.join(op.successors)}")
        out.write(".\n\n")
    for title, args in (("Operands", op.operands), ("Results", op.results),
                        ("Attributes", op.attributes)):
        if args:
            out.write(f"**{title}:**\n\n")
            out.write("| name | constraint |\n|---|---|\n")
            for arg in args:
                out.write(_arg_line(arg) + "\n")
            out.write("\n")
    for region in op.regions:
        out.write(f"**Region `{region.name}`**")
        details = []
        if region.arguments:
            details.append(
                "arguments: "
                + ", ".join(f"`{a.name}`" for a in region.arguments)
            )
        if region.terminator:
            details.append(f"terminated by `{region.terminator}`")
        if details:
            out.write(" — " + "; ".join(details))
        out.write("\n\n")
    if op.format is not None:
        out.write(f"**Assembly format:** `{op.format}`\n\n")
    if op.py_constraints:
        out.write("**Additional invariants (IRDL-Py):**\n\n")
        for code in op.py_constraints:
            out.write(f"```python\n{code}\n```\n\n")
    return out.getvalue()


def render_type_doc(type_def: TypeDef) -> str:
    out = io.StringIO()
    kind = "type" if type_def.is_type else "attribute"
    out.write(f"### `{type_def.qualified_name}` ({kind})\n\n")
    if type_def.summary:
        out.write(f"_{type_def.summary}_\n\n")
    if type_def.parameters:
        out.write("| parameter | kind | constraint |\n|---|---|---|\n")
        for param in type_def.parameters:
            out.write(
                f"| `{param.name}` | {param.kind} | "
                f"`{_constraint_text(param.constraint)}` |\n"
            )
        out.write("\n")
    if type_def.py_constraints:
        out.write("**Additional invariants (IRDL-Py):**\n\n")
        for code in type_def.py_constraints:
            out.write(f"```python\n{code}\n```\n\n")
    return out.getvalue()


def render_dialect_doc(dialect: DialectDef) -> str:
    """Markdown reference documentation for one dialect."""
    out = io.StringIO()
    out.write(f"# Dialect `{dialect.name}`\n\n")
    out.write(
        f"{len(dialect.operations)} operations, {len(dialect.types)} types, "
        f"{len(dialect.attributes)} attributes"
    )
    if dialect.enums:
        out.write(f", {len(dialect.enums)} enums")
    out.write(".\n\n")
    for enum in dialect.enums:
        out.write(
            f"**Enum `{enum.qualified_name}`**: "
            + ", ".join(f"`{c}`" for c in enum.constructors)
            + "\n\n"
        )
    if dialect.types:
        out.write("## Types\n\n")
        for type_def in dialect.types:
            out.write(render_type_doc(type_def))
    if dialect.attributes:
        out.write("## Attributes\n\n")
        for attr_def in dialect.attributes:
            out.write(render_type_doc(attr_def))
    if dialect.operations:
        out.write("## Operations\n\n")
        for op in dialect.operations:
            out.write(render_op_doc(op))
    return out.getvalue()
