"""Text renderers producing the paper's tables and figures as rows/series.

The benchmark harness prints these; EXPERIMENTS.md records them against
the paper's numbers.  Bars are rendered as simple ASCII so the "figures"
read directly in a terminal.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

from repro.analysis.expressiveness import ExpressivenessReport
from repro.analysis.history import HistoryPoint, summarize_history
from repro.analysis.stats import CorpusStats, Histogram


def _pct(value: float) -> str:
    return f"{100 * value:5.1f}%"


def render_table1(rows: Sequence[tuple[str, str]]) -> str:
    """Table 1: the dialect inventory."""
    out = io.StringIO()
    out.write("Table 1: dialects in the corpus\n")
    width = max(len(name) for name, _ in rows)
    for name, description in sorted(rows):
        out.write(f"  {name:<{width}}  {description}\n")
    return out.getvalue()


def render_fig3(history: Sequence[HistoryPoint]) -> str:
    """Figure 3: operation growth over time."""
    out = io.StringIO()
    summary = summarize_history(tuple(history))
    out.write(
        f"Figure 3: {summary.initial_ops} -> {summary.final_ops} operations "
        f"over {summary.months} months "
        f"({summary.growth_factor:.1f}x), "
        f"{summary.initial_dialects} -> {summary.final_dialects} dialects\n"
    )
    peak = max(p.num_ops for p in history)
    for point in history:
        bar = "#" * round(40 * point.num_ops / peak)
        out.write(f"  {point.month}  {point.num_ops:4d}  {bar}\n")
    return out.getvalue()


def render_fig4(stats: CorpusStats) -> str:
    """Figure 4: operations per dialect (ascending)."""
    out = io.StringIO()
    out.write(f"Figure 4: ops per dialect (total {stats.total_ops})\n")
    rows = stats.ops_per_dialect()
    width = max(len(name) for name, _ in rows)
    peak = max(count for _, count in rows)
    for name, count in rows:
        bar = "#" * max(1, round(40 * count / peak))
        out.write(f"  {name:<{width}}  {count:4d}  {bar}\n")
    return out.getvalue()


def _render_histogram_row(title: str, histogram: Histogram,
                          buckets: Sequence[tuple[object, str]]) -> str:
    parts = [
        f"{label}: {_pct(histogram.fraction(bucket))}"
        for bucket, label in buckets
    ]
    return f"  {title:<16} {'  '.join(parts)}\n"


def render_fig5(stats: CorpusStats) -> str:
    """Figure 5: operand-count and variadic-operand distributions."""
    out = io.StringIO()
    out.write("Figure 5a: operands per operation (overall)\n")
    out.write(
        _render_histogram_row(
            "overall",
            stats.overall_operands,
            [(0, "0"), (1, "1"), (2, "2"), (3, "3+")],
        )
    )
    for dialect in sorted(stats.dialects, key=lambda d: -d.operands.fraction_at_least(3)):
        out.write(
            _render_histogram_row(
                dialect.name,
                dialect.operands,
                [(0, "0"), (1, "1"), (2, "2"), (3, "3+")],
            )
        )
    out.write("Figure 5b: variadic operand definitions per operation\n")
    out.write(
        _render_histogram_row(
            "overall",
            stats.overall_variadic_operands,
            [(0, "0"), (1, "1"), (2, "2+")],
        )
    )
    out.write(
        f"  dialects with a variadic-operand op: "
        f"{_pct(stats.dialects_with_variadic_operands())}\n"
    )
    out.write(
        f"  dialects with >25% variadic-operand ops: "
        f"{_pct(stats.dialects_with_quarter_variadic_operands())}\n"
    )
    return out.getvalue()


def render_fig6(stats: CorpusStats) -> str:
    """Figure 6: result-count and variadic-result distributions."""
    out = io.StringIO()
    out.write("Figure 6a: results per operation (overall)\n")
    out.write(
        _render_histogram_row(
            "overall", stats.overall_results, [(0, "0"), (1, "1"), (2, "2")]
        )
    )
    out.write(
        f"  dialects with multi-result ops: "
        f"{', '.join(stats.dialects_with_multi_result_ops())}\n"
    )
    out.write("Figure 6b: variadic result definitions per operation\n")
    out.write(
        _render_histogram_row(
            "overall", stats.overall_variadic_results, [(0, "0"), (1, "1")]
        )
    )
    out.write(
        f"  dialects with a variadic-result op: "
        f"{_pct(stats.dialects_with_variadic_results())}\n"
    )
    return out.getvalue()


def render_fig7(stats: CorpusStats) -> str:
    """Figure 7: attribute and region usage."""
    out = io.StringIO()
    out.write("Figure 7a: attributes per operation (overall)\n")
    out.write(
        _render_histogram_row(
            "overall", stats.overall_attributes, [(0, "0"), (1, "1"), (2, "2+")]
        )
    )
    out.write(
        f"  dialects with an attribute-bearing op: "
        f"{_pct(stats.dialects_with_attributes())}\n"
    )
    out.write(
        f"  dialects with >=25% attribute-bearing ops: "
        f"{_pct(stats.dialects_with_quarter_attributes())}\n"
    )
    out.write("Figure 7b: regions per operation (overall)\n")
    out.write(
        _render_histogram_row(
            "overall", stats.overall_regions, [(0, "0"), (1, "1"), (2, "2")]
        )
    )
    out.write(
        f"  dialects with a region-bearing op: "
        f"{_pct(stats.dialects_with_regions())}\n"
    )
    return out.getvalue()


def render_fig8(report: ExpressivenessReport) -> str:
    """Figure 8: type and attribute parameter kinds."""
    out = io.StringIO()
    for title, counter in (
        ("Figure 8a: type parameter kinds", report.type_param_kinds),
        ("Figure 8b: attribute parameter kinds", report.attr_param_kinds),
    ):
        out.write(title + "\n")
        peak = max(counter.values()) if counter else 1
        for kind, count in counter.most_common():
            bar = "#" * max(1, round(30 * count / peak))
            out.write(f"  {kind:<12} {count:3d}  {bar}\n")
    out.write(
        f"  domain-specific parameter fraction: "
        f"{_pct(report.domain_specific_param_fraction())}\n"
    )
    return out.getvalue()


def render_fig9_10(report: ExpressivenessReport) -> str:
    """Figures 9 and 10: type/attribute expressiveness per dialect."""
    out = io.StringIO()
    for title, rows, pure, verifier in (
        ("Figure 9: types", report.type_rows,
         report.types_pure_irdl_params_fraction(),
         report.types_py_verifier_fraction()),
        ("Figure 10: attributes", report.attr_rows,
         report.attrs_pure_irdl_params_fraction(),
         report.attrs_py_verifier_fraction()),
    ):
        out.write(f"{title}: {_pct(pure)} pure-IRDL parameters, "
                  f"{_pct(verifier)} need an IRDL-Py verifier\n")
        for row in sorted(rows, key=lambda r: -r.total):
            out.write(
                f"  {row.dialect:<14} total {row.total:3d}  "
                f"py-params {row.py_params:2d}  py-verifier {row.py_verifier:2d}\n"
            )
    return out.getvalue()


def render_fig11(report: ExpressivenessReport) -> str:
    """Figure 11: operation expressiveness per dialect."""
    out = io.StringIO()
    out.write(
        f"Figure 11: {_pct(report.ops_pure_irdl_local_fraction())} of ops "
        f"express local constraints in IRDL; "
        f"{_pct(report.ops_py_verifier_fraction())} need an IRDL-Py "
        f"global verifier\n"
    )
    out.write(
        f"  dialects fully IRDL-local: {report.dialects_fully_irdl_local()} "
        f"of {len(report.op_rows)}\n"
    )
    for row in sorted(report.op_rows, key=lambda r: -(r.py_local / max(r.total, 1))):
        out.write(
            f"  {row.dialect:<14} ops {row.total:4d}  "
            f"py-local {row.py_local:3d}  py-verifier {row.py_verifier:4d}\n"
        )
    return out.getvalue()


def render_fig12(report: ExpressivenessReport) -> str:
    """Figure 12: kinds of non-IRDL local constraints."""
    out = io.StringIO()
    out.write("Figure 12: non-IRDL local constraint kinds\n")
    counter = report.local_constraint_kinds
    peak = max(counter.values()) if counter else 1
    for kind, count in counter.most_common():
        bar = "#" * max(1, round(30 * count / peak))
        out.write(f"  {kind:<20} {count:3d}  {bar}\n")
    return out.getvalue()
