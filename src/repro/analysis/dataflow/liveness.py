"""Per-region liveness: which values are live across block boundaries.

A value is *live-in* at a block if some path from the block's entry
reaches a use of the value before any (re)definition; *live-out* if it
is live-in at any successor.  Uses inside nested regions count as uses
of the enclosing operation (an op with regions keeps its operands live
for as long as it runs), and definitions are SSA — a value is defined
exactly once — so the classic backward dataflow simplifies to::

    live_out(B) = union of live_in(S) for S in successors(B)
    live_in(B)  = gen(B) | (live_out(B) - defined(B))

Results are intended to be cached under the
:class:`~repro.analysis.dataflow.manager.AnalysisManager`, mirroring
:class:`~repro.ir.dominance.DominanceInfo`: construct once per region,
invalidate on mutation.
"""

from __future__ import annotations

from repro.ir.block import Block
from repro.ir.region import Region
from repro.ir.value import SSAValue


class Liveness:
    """Block-boundary liveness for one region, computed at construction."""

    def __init__(self, region: Region):
        self.region = region
        self._live_in: dict[int, frozenset[SSAValue]] = {}
        self._live_out: dict[int, frozenset[SSAValue]] = {}
        self._compute()

    def _compute(self) -> None:
        blocks = self.region.blocks
        gen: dict[int, set[SSAValue]] = {}
        defined: dict[int, set[SSAValue]] = {}
        for block in blocks:
            block_gen: set[SSAValue] = set()
            block_def: set[SSAValue] = set(block.args)
            for op in block.ops:
                # op.walk() visits nested ops too: their operands are
                # uses attributable to this block, except when the
                # operand is itself defined inside the subtree (nested
                # results and nested block args never escape).
                internal: set[SSAValue] = set()
                for nested in op.walk():
                    if nested is not op:
                        internal.update(nested.results)
                    for nested_region in nested.regions:
                        for nested_block in nested_region.blocks:
                            internal.update(nested_block.args)
                for nested in op.walk():
                    for operand in nested.operands:
                        if operand not in internal and operand not in block_def:
                            block_gen.add(operand)
                block_def.update(op.results)
            gen[id(block)] = block_gen
            defined[id(block)] = block_def
            self._live_in[id(block)] = frozenset()
            self._live_out[id(block)] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set[SSAValue] = set()
                last = block.last_op
                if last is not None:
                    for successor in last.successors:
                        out |= self._live_in[id(successor)]
                new_in = frozenset(gen[id(block)] | (out - defined[id(block)]))
                new_out = frozenset(out)
                if new_in != self._live_in[id(block)] \
                        or new_out != self._live_out[id(block)]:
                    self._live_in[id(block)] = new_in
                    self._live_out[id(block)] = new_out
                    changed = True

    def live_in(self, block: Block) -> frozenset[SSAValue]:
        """Values live on entry to ``block`` (block args excluded)."""
        return self._live_in.get(id(block), frozenset())

    def live_out(self, block: Block) -> frozenset[SSAValue]:
        """Values live on exit from ``block``."""
        return self._live_out.get(id(block), frozenset())

    def is_live_in(self, value: SSAValue, block: Block) -> bool:
        return value in self._live_in.get(id(block), frozenset())

    def is_live_out(self, value: SSAValue, block: Block) -> bool:
        return value in self._live_out.get(id(block), frozenset())

    def __repr__(self) -> str:
        return f"<Liveness of {len(self.region.blocks)} block(s)>"
