"""Sparse constant propagation over the native arith dialect.

The lattice per value is ``BOTTOM < Const(attr) < TOP`` where the
attribute is the :class:`~repro.builtin.attributes.IntegerAttr` or
:class:`~repro.builtin.attributes.FloatAttr` the value is known to
equal.  The transfer function folds exactly the operations the
declarative fold patterns fold — same plain-Python arithmetic — so the
analysis and the rewrite fixpoint agree (pinned by the differential
test in ``tests/analysis/test_dataflow.py``).  Anything the folder
would refuse (division by zero, a result that does not fit the result
type, a non-arith producer) goes conservatively to :data:`~repro.
analysis.dataflow.lattice.TOP`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.builtin.attributes import FloatAttr, IntegerAttr, StringAttr
from repro.builtin.types import IntegerType
from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyError
from repro.ir.operation import Operation
from repro.analysis.dataflow.lattice import BOTTOM, TOP, SparseForwardAnalysis


class Const:
    """A value proven equal to one attribute constant."""

    __slots__ = ("attr",)

    def __init__(self, attr: Attribute):
        self.attr = attr

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.attr == other.attr

    def __hash__(self) -> int:
        return hash(("Const", self.attr))

    def __repr__(self) -> str:
        return f"Const({self.attr})"


_INT_BINOPS: dict[str, Callable[[int, int], int]] = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    # C-style signed division truncates toward zero; Python's floors.
    "arith.divsi": lambda a, b: abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1),
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
}

_FLOAT_BINOPS: dict[str, Callable[[float, float], float]] = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
}

_CMPI: dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}

_UNSIGNED = frozenset({"ult", "ule", "ugt", "uge"})


def _as_int(state: Any) -> int | None:
    if isinstance(state, Const) and isinstance(state.attr, IntegerAttr):
        return state.attr.value
    return None


def _as_float(state: Any) -> float | None:
    if isinstance(state, Const) and isinstance(state.attr, FloatAttr):
        return state.attr.value
    return None


class ConstantPropagation(SparseForwardAnalysis):
    """Which SSA values are compile-time constants, and what they are."""

    name = "constant-prop"

    def transfer(self, op: Operation, operands: Sequence[Any]) -> Sequence[Any]:
        if op.name == "arith.constant" and len(op.results) == 1:
            value = op.attributes.get("value")
            if isinstance(value, (IntegerAttr, FloatAttr)):
                return [Const(value)]
            return [TOP]
        if (op.name in _INT_BINOPS or op.name in _FLOAT_BINOPS
                or op.name == "arith.cmpi") \
                and any(state is BOTTOM for state in operands):
            # An operand's producer has not been evaluated yet: stay
            # optimistic; the worklist revisits once it publishes.
            return [BOTTOM] * len(op.results)
        if op.name in _INT_BINOPS and len(operands) == 2 and len(op.results) == 1:
            lhs, rhs = _as_int(operands[0]), _as_int(operands[1])
            if lhs is None or rhs is None:
                return [TOP]
            if op.name == "arith.divsi" and rhs == 0:
                return [TOP]
            return [self._make_int(_INT_BINOPS[op.name](lhs, rhs),
                                   op.results[0].type)]
        if op.name in _FLOAT_BINOPS and len(operands) == 2 and len(op.results) == 1:
            lhs, rhs = _as_float(operands[0]), _as_float(operands[1])
            if lhs is None or rhs is None:
                return [TOP]
            if op.name == "arith.divf" and rhs == 0.0:
                return [TOP]
            try:
                folded = _FLOAT_BINOPS[op.name](lhs, rhs)
            except (OverflowError, ZeroDivisionError):
                return [TOP]
            return [Const(FloatAttr(folded, op.results[0].type))]
        if op.name == "arith.cmpi" and len(operands) == 2 and len(op.results) == 1:
            return [self._fold_cmpi(op, operands)]
        return [TOP] * len(op.results)

    def _make_int(self, value: int, result_type: Attribute) -> Any:
        attr = IntegerAttr(value, result_type)
        try:
            attr.verify()
        except VerifyError:
            # The fold overflowed the result type: not a representable
            # constant, so claim nothing.
            return TOP
        return Const(attr)

    def _fold_cmpi(self, op: Operation, operands: Sequence[Any]) -> Any:
        predicate = op.attributes.get("predicate")
        if not isinstance(predicate, StringAttr) or predicate.data not in _CMPI:
            return TOP
        lhs, rhs = _as_int(operands[0]), _as_int(operands[1])
        if lhs is None or rhs is None:
            return TOP
        if predicate.data in _UNSIGNED:
            operand_type = op.operands[0].type
            if not isinstance(operand_type, IntegerType):
                return TOP
            lhs %= 1 << operand_type.bitwidth
            rhs %= 1 << operand_type.bitwidth
        truth = _CMPI[predicate.data](lhs, rhs)
        return self._make_int(int(truth), op.results[0].type)

    def format(self, state: Any) -> str:
        return str(state.attr) if isinstance(state, Const) else repr(state)
