"""The analysis cache: compute once, invalidate on mutation.

An *analysis* is any callable mapping one IR object (a region, an
operation, …) to an immutable result — :class:`~repro.ir.dominance.
DominanceInfo`, :class:`~repro.analysis.dataflow.liveness.Liveness`,
or a bound :func:`~repro.analysis.dataflow.lattice.run_sparse_forward`.
The manager memoizes ``analysis(key)`` per *object identity* and owns
the invalidation story:

* :meth:`invalidate` drops every analysis of one key;
* :meth:`invalidate_scope` drops the key **and its enclosing chain** —
  the containing blocks, regions, and operations up to the root — which
  is the contract mutation sites use: editing ops inside one region
  cannot change a *sibling* region's CFG, so siblings stay cached;
* :meth:`invalidate_all` is the coarse hook pass boundaries use.

Keys are held strongly while cached (a dropped-and-collected region
must not alias a new region's ``id``), and every hit/miss/invalidation
is visible as ``analysis.dataflow.*`` metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.obs.instrument import OBS


def _enclosing_chain(key: Any):
    """The IR objects whose analyses a mutation under ``key`` can stale.

    Yields ``key`` itself, then alternating block/region/operation
    ancestors until the chain leaves the IR tree.  Works for operations
    (``parent`` is a block), blocks (``parent`` is a region), and
    regions (``parent`` is an operation); other keys yield only
    themselves.
    """
    seen: set[int] = set()
    current = key
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        yield current
        current = getattr(current, "parent", None)


class AnalysisManager:
    """Memoizes analysis results per ``(analysis, IR object)`` pair."""

    def __init__(self) -> None:
        #: ``(analysis, id(key)) -> (key, result)``; the key reference
        #: keeps ``id`` stable for the life of the entry.
        self._cache: dict[tuple[Hashable, int], tuple[Any, Any]] = {}
        #: ``id(key) -> cache keys`` reverse index for invalidation.
        self._by_key: dict[int, set[tuple[Hashable, int]]] = {}

    # -- queries -------------------------------------------------------

    def get(self, analysis: Callable[[Any], Any], key: Any) -> Any:
        """The cached ``analysis(key)``, computing on first use."""
        slot = (analysis, id(key))
        entry = self._cache.get(slot)
        if entry is not None and entry[0] is key:
            if OBS.metrics.enabled:
                OBS.metrics.counter("analysis.dataflow.cache_hits").inc()
            return entry[1]
        if OBS.metrics.enabled:
            OBS.metrics.counter("analysis.dataflow.computes").inc()
        result = analysis(key)
        self._cache[slot] = (key, result)
        self._by_key.setdefault(id(key), set()).add(slot)
        return result

    def cached(self, analysis: Callable[[Any], Any], key: Any) -> Any | None:
        """The cached result, or ``None`` without computing."""
        entry = self._cache.get((analysis, id(key)))
        return entry[1] if entry is not None and entry[0] is key else None

    def dominance(self, region: Any):
        """The cached :class:`~repro.ir.dominance.DominanceInfo`."""
        from repro.ir.dominance import DominanceInfo

        return self.get(DominanceInfo, region)

    def liveness(self, region: Any):
        """The cached :class:`~repro.analysis.dataflow.liveness.Liveness`."""
        from repro.analysis.dataflow.liveness import Liveness

        return self.get(Liveness, region)

    # -- invalidation --------------------------------------------------

    def invalidate(self, key: Any) -> int:
        """Drop every analysis of ``key``; returns the entries dropped."""
        slots = self._by_key.pop(id(key), None)
        if not slots:
            return 0
        dropped = 0
        for slot in slots:
            if self._cache.pop(slot, None) is not None:
                dropped += 1
        if dropped and OBS.metrics.enabled:
            OBS.metrics.counter("analysis.dataflow.invalidations").inc(dropped)
        return dropped

    def invalidate_scope(self, key: Any) -> int:
        """Drop analyses of ``key`` and of every enclosing IR object.

        This is the mutation hook: after editing IR under ``key``, the
        analyses of the containing region chain may be stale, while
        sibling scopes (other regions of an ancestor op) are not.
        """
        dropped = 0
        for scope in _enclosing_chain(key):
            dropped += self.invalidate(scope)
        return dropped

    def invalidate_all(self) -> int:
        """Drop the whole cache (the pass-boundary hook)."""
        dropped = len(self._cache)
        self._cache.clear()
        self._by_key.clear()
        if dropped and OBS.metrics.enabled:
            OBS.metrics.counter("analysis.dataflow.invalidations").inc(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return f"<AnalysisManager {len(self._cache)} cached result(s)>"
