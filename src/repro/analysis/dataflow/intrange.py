"""Sparse integer-range analysis over the native arith dialect.

Each integer SSA value is bounded by an inclusive interval
``Range(lo, hi)``; constants become point intervals and ``addi`` /
``subi`` / ``muli`` combine them with interval arithmetic.  An interval
that escapes the representable range of the result's integer type
means the operation may overflow, and since the IR's arithmetic has no
defined wrap-around semantics the analysis goes to :data:`~repro.
analysis.dataflow.lattice.TOP` rather than guess.  ``cmpi`` results
always land in ``[0, 1]``, tightened to a point when the operand
intervals decide the predicate.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.builtin.attributes import IntegerAttr, StringAttr
from repro.builtin.types import IntegerType
from repro.ir.operation import Operation
from repro.analysis.dataflow.lattice import BOTTOM, TOP, SparseForwardAnalysis


class Range:
    """An inclusive integer interval ``[lo, hi]``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def is_point(self) -> bool:
        return self.lo == self.hi

    def hull(self, other: "Range") -> "Range":
        return Range(min(self.lo, other.lo), max(self.hi, other.hi))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Range) and (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self) -> int:
        return hash(("Range", self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Range({self.lo}, {self.hi})"


def _fits(r: Range, result_type: Any) -> Any:
    """Clamp an interval to the result type: TOP when it may overflow."""
    if isinstance(result_type, IntegerType) and result_type.bitwidth < 64:
        bound = 1 << result_type.bitwidth
        if r.lo <= -bound or r.hi >= bound:
            return TOP
    return r


class IntegerRangeAnalysis(SparseForwardAnalysis):
    """Inclusive bounds of integer SSA values."""

    name = "int-range"

    def transfer(self, op: Operation, operands: Sequence[Any]) -> Sequence[Any]:
        if op.name == "arith.constant" and len(op.results) == 1:
            value = op.attributes.get("value")
            if isinstance(value, IntegerAttr):
                return [Range(value.value, value.value)]
            return [TOP]
        if (op.name in ("arith.addi", "arith.subi", "arith.muli",
                        "arith.cmpi")
                and any(state is BOTTOM for state in operands)):
            # Not all producers have been evaluated yet; stay optimistic.
            return [BOTTOM] * len(op.results)
        if op.name in ("arith.addi", "arith.subi", "arith.muli") \
                and len(operands) == 2 and len(op.results) == 1:
            lhs, rhs = operands[0], operands[1]
            if not (isinstance(lhs, Range) and isinstance(rhs, Range)):
                return [TOP]
            if op.name == "arith.addi":
                out = Range(lhs.lo + rhs.lo, lhs.hi + rhs.hi)
            elif op.name == "arith.subi":
                out = Range(lhs.lo - rhs.hi, lhs.hi - rhs.lo)
            else:
                corners = [lhs.lo * rhs.lo, lhs.lo * rhs.hi,
                           lhs.hi * rhs.lo, lhs.hi * rhs.hi]
                out = Range(min(corners), max(corners))
            return [_fits(out, op.results[0].type)]
        if op.name == "arith.cmpi" and len(operands) == 2 and len(op.results) == 1:
            return [self._cmpi_range(op, operands)]
        return [TOP] * len(op.results)

    def _cmpi_range(self, op: Operation, operands: Sequence[Any]) -> Range:
        """``[0, 1]``, or a point when the intervals decide the predicate."""
        default = Range(0, 1)
        predicate = op.attributes.get("predicate")
        lhs, rhs = operands[0], operands[1]
        if not (isinstance(predicate, StringAttr)
                and isinstance(lhs, Range) and isinstance(rhs, Range)):
            return default
        decided: bool | None = None
        if predicate.data == "eq":
            if lhs.is_point() and rhs.is_point() and lhs == rhs:
                decided = True
            elif lhs.hi < rhs.lo or rhs.hi < lhs.lo:
                decided = False
        elif predicate.data == "ne":
            if lhs.hi < rhs.lo or rhs.hi < lhs.lo:
                decided = True
            elif lhs.is_point() and rhs.is_point() and lhs == rhs:
                decided = False
        elif predicate.data == "slt":
            decided = True if lhs.hi < rhs.lo else (False if lhs.lo >= rhs.hi else None)
        elif predicate.data == "sle":
            decided = True if lhs.hi <= rhs.lo else (False if lhs.lo > rhs.hi else None)
        elif predicate.data == "sgt":
            decided = True if lhs.lo > rhs.hi else (False if lhs.hi <= rhs.lo else None)
        elif predicate.data == "sge":
            decided = True if lhs.lo >= rhs.hi else (False if lhs.hi < rhs.lo else None)
        if decided is None:
            return default
        return Range(int(decided), int(decided))

    def join(self, a: Any, b: Any) -> Any:
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        if a is TOP or b is TOP:
            return TOP
        return a.hull(b)

    def format(self, state: Any) -> str:
        if isinstance(state, Range):
            return f"[{state.lo}, {state.hi}]" if not state.is_point() \
                else str(state.lo)
        return repr(state)
