"""A generic sparse forward lattice engine over SSA values.

*Sparse* as in MLIR's sparse dataflow framework: states attach to SSA
values, not program points, and information flows along use-def edges
only.  An analysis supplies three ingredients:

* :meth:`SparseForwardAnalysis.boundary` — the state of values the
  engine cannot see being produced (block arguments, and results of
  operations the transfer function does not model);
* :meth:`SparseForwardAnalysis.transfer` — result states of one
  operation from its operand states;
* :meth:`SparseForwardAnalysis.join` — the least upper bound, used
  when several states meet (kept on the analysis so richer engines —
  e.g. one propagating branch arguments — can reuse the instances).

The engine seeds every result-producing op under the root, then runs a
worklist: when a value's state changes, the users of that value are
revisited.  Blocks may appear in any order (SSA only guarantees defs
*dominate* uses, not that they precede them in block-list order), so
the worklist — not a single pass — is what guarantees a fixpoint.

Two distinguished states frame every lattice:

* :data:`BOTTOM` — not computed yet (the optimistic initial state);
* :data:`TOP` — no information (the conservative final state).

Transfer functions must be monotone (never move a state back toward
:data:`BOTTOM`); with the finite lattices used here, that bounds the
number of revisits and the engine terminates.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.ir.operation import Operation
from repro.ir.value import SSAValue
from repro.obs.instrument import OBS


class _Extreme:
    """A named lattice extreme (singleton, identity-compared)."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Not computed yet: below every other state.
BOTTOM = _Extreme("BOTTOM")
#: No information: above every other state.
TOP = _Extreme("TOP")


class SparseForwardAnalysis:
    """Base class of sparse forward analyses; subclasses are stateless."""

    #: The ``--analyze=<name>`` registry key and report heading.
    name = "sparse-forward"

    def boundary(self, value: SSAValue) -> Any:
        """State of a value with no visible producer (block args, …)."""
        return TOP

    def transfer(self, op: Operation, operands: Sequence[Any]) -> Sequence[Any]:
        """States of ``op``'s results given its operand states."""
        return [TOP] * len(op.results)

    def join(self, a: Any, b: Any) -> Any:
        """Least upper bound; the default collapses disagreement to TOP."""
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        return a if a == b else TOP

    def format(self, state: Any) -> str:
        """How ``--analyze`` renders one state."""
        return repr(state)


class DataflowResult:
    """The fixpoint of one analysis over one root operation."""

    __slots__ = ("analysis", "root", "states", "steps")

    def __init__(self, analysis: SparseForwardAnalysis, root: Operation,
                 states: dict[SSAValue, Any], steps: int):
        self.analysis = analysis
        self.root = root
        #: Value -> state; values absent from the map are :data:`BOTTOM`
        #: (never reached — e.g. results of unreachable transfer input).
        self.states = states
        #: Transfer-function evaluations the fixpoint took.
        self.steps = steps

    def state_of(self, value: SSAValue) -> Any:
        return self.states.get(value, BOTTOM)


def run_sparse_forward(analysis: SparseForwardAnalysis,
                       root: Operation) -> DataflowResult:
    """Run ``analysis`` to a fixpoint over every value under ``root``."""
    states: dict[SSAValue, Any] = {}
    ops = [op for op in root.walk() if op.results]
    in_tree = {id(op) for op in ops}
    for op in root.walk():
        for region in op.regions:
            for block in region.blocks:
                for arg in block.args:
                    states[arg] = analysis.boundary(arg)
        # Operands defined outside the analyzed tree are boundary
        # values too: they will never be computed here, and leaving
        # them BOTTOM would pin their users at "not yet known".
        for operand in op.operands:
            if operand not in states and id(operand.owner) not in in_tree:
                states[operand] = analysis.boundary(operand)
    worklist: deque[Operation] = deque(ops)
    queued = {id(op) for op in ops}
    steps = 0
    while worklist:
        op = worklist.popleft()
        queued.discard(id(op))
        operand_states = [states.get(v, BOTTOM) for v in op.operands]
        steps += 1
        new_states = analysis.transfer(op, operand_states)
        for result, new in zip(op.results, new_states):
            old = states.get(result, BOTTOM)
            if old is BOTTOM:
                merged = new
            elif new is BOTTOM:
                merged = old
            else:
                merged = analysis.join(old, new)
            if merged is BOTTOM or (old is not BOTTOM and merged == old):
                continue
            states[result] = merged
            for user in result.users():
                if user.results and id(user) in in_tree \
                        and id(user) not in queued:
                    queued.add(id(user))
                    worklist.append(user)
    if OBS.metrics.enabled:
        OBS.metrics.counter("analysis.dataflow.transfer_steps").inc(steps)
    return DataflowResult(analysis, root, states, steps)


def render_dataflow_report(result: DataflowResult) -> str:
    """A stable text report of one fixpoint, for ``--analyze``.

    One line per result-producing operation (pre-order index), listing
    each result's state; :data:`TOP` states print as ``?`` so the
    interesting facts stand out.
    """
    lines = [f"=== {result.analysis.name} ==="]
    for index, op in enumerate(result.root.walk()):
        if not op.results:
            continue
        rendered = []
        for res in op.results:
            state = result.state_of(res)
            if state is TOP:
                rendered.append("?")
            elif state is BOTTOM:
                rendered.append("unreachable")
            else:
                rendered.append(result.analysis.format(state))
        lines.append(f"#{index} {op.name}: " + ", ".join(rendered))
    lines.append(f"({result.steps} transfer step(s))")
    return "\n".join(lines)
