"""Cached dataflow analyses over SSA IR.

The rewrite driver, the pass manager, and ad-hoc queries all need the
same handful of facts about a module — dominance, liveness, constant
values — and before this package each consumer recomputed them from
scratch per query.  The pieces here compose them into one reusable
layer:

* :class:`~repro.analysis.dataflow.manager.AnalysisManager` — a cache
  keyed by ``(analysis, IR object)`` with explicit invalidation hooks;
  the worklist rewrite driver and the :class:`~repro.rewriting.passes.
  PassManager` invalidate exactly the scopes a mutation touched, so
  unchanged regions keep their computed analyses;
* :mod:`~repro.analysis.dataflow.lattice` — a generic sparse forward
  lattice engine over SSA values (a worklist over use-def edges, in the
  style of MLIR's sparse dataflow framework);
* two production instances: :class:`~repro.analysis.dataflow.constant.
  ConstantPropagation` (agrees with the fold-pattern fixpoint — pinned
  by a differential test) and :class:`~repro.analysis.dataflow.intrange.
  IntegerRangeAnalysis`, both runnable as ``irdl-opt --analyze=<name>``;
* :class:`~repro.analysis.dataflow.liveness.Liveness` — per-region
  block live-in/live-out sets over the same manager.

``docs/analysis.md`` documents the lattices and the invalidation
contract.
"""

from __future__ import annotations

from repro.analysis.dataflow.constant import Const, ConstantPropagation
from repro.analysis.dataflow.intrange import IntegerRangeAnalysis, Range
from repro.analysis.dataflow.lattice import (
    BOTTOM,
    TOP,
    DataflowResult,
    SparseForwardAnalysis,
    render_dataflow_report,
    run_sparse_forward,
)
from repro.analysis.dataflow.liveness import Liveness
from repro.analysis.dataflow.manager import AnalysisManager

#: The ``irdl-opt --analyze=<name>`` registry: name -> analysis factory.
ANALYSES: dict[str, type[SparseForwardAnalysis]] = {
    "constant-prop": ConstantPropagation,
    "int-range": IntegerRangeAnalysis,
}

__all__ = [
    "ANALYSES",
    "AnalysisManager",
    "BOTTOM",
    "Const",
    "ConstantPropagation",
    "DataflowResult",
    "IntegerRangeAnalysis",
    "Liveness",
    "Range",
    "SparseForwardAnalysis",
    "TOP",
    "render_dataflow_report",
    "run_sparse_forward",
]
