"""IR statistics and expressiveness analyses (§6's evaluation tooling)."""

from repro.analysis.expressiveness import (
    ExpressivenessReport,
    OpExpressiveness,
    TypeAttrExpressiveness,
    analyze_expressiveness,
    classify_py_constraint,
)
from repro.analysis.feature_matrix import (
    FEATURE_MATRIX,
    FEATURES,
    check_irdl_feature_claims,
    check_irdl_py_feature_claims,
)
from repro.analysis.history import (
    MLIR_HISTORY,
    GrowthSummary,
    HistoryPoint,
    summarize_history,
)
from repro.analysis.stats import CorpusStats, DialectStats, Histogram

__all__ = [
    "ExpressivenessReport",
    "OpExpressiveness",
    "TypeAttrExpressiveness",
    "analyze_expressiveness",
    "classify_py_constraint",
    "FEATURE_MATRIX",
    "FEATURES",
    "check_irdl_feature_claims",
    "check_irdl_py_feature_claims",
    "MLIR_HISTORY",
    "GrowthSummary",
    "HistoryPoint",
    "summarize_history",
    "CorpusStats",
    "DialectStats",
    "Histogram",
]
