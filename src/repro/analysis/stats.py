"""Structural statistics over IR dialect definitions (§6.2).

Everything here consumes resolved :class:`~repro.irdl.defs.DialectDef`
records, so the same analyses run over any dialect expressed in IRDL —
this is the "meta-tooling for IR design" the paper's evaluation is built
on.  Each function corresponds to one panel of Figures 4–7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.irdl.ast import Variadicity
from repro.irdl.defs import DialectDef, OpDef


@dataclass
class Histogram:
    """Counts of operations per bucket, with percentage helpers."""

    counts: Counter = field(default_factory=Counter)

    def add(self, bucket: int | str) -> None:
        self.counts[bucket] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, *buckets: int | str) -> float:
        if self.total == 0:
            return 0.0
        return sum(self.counts[b] for b in buckets) / self.total

    def fraction_at_least(self, threshold: int) -> float:
        if self.total == 0:
            return 0.0
        matching = sum(
            count
            for bucket, count in self.counts.items()
            if isinstance(bucket, int) and bucket >= threshold
        )
        return matching / self.total

    def merge(self, other: "Histogram") -> None:
        self.counts.update(other.counts)


def _clamp_bucket(value: int, top: int) -> int:
    """Bucket values above ``top`` into ``top`` (rendered as "top+")."""
    return min(value, top)


@dataclass
class DialectStats:
    """Per-dialect operand/result/attribute/region statistics (§6.2)."""

    name: str
    num_ops: int = 0
    num_types: int = 0
    num_attrs: int = 0
    operands: Histogram = field(default_factory=Histogram)
    variadic_operands: Histogram = field(default_factory=Histogram)
    results: Histogram = field(default_factory=Histogram)
    variadic_results: Histogram = field(default_factory=Histogram)
    attributes: Histogram = field(default_factory=Histogram)
    regions: Histogram = field(default_factory=Histogram)

    @classmethod
    def of(cls, dialect: DialectDef) -> "DialectStats":
        stats = cls(dialect.name)
        stats.num_ops = len(dialect.operations)
        stats.num_types = len(dialect.types)
        stats.num_attrs = len(dialect.attributes)
        for op in dialect.operations:
            stats.operands.add(_clamp_bucket(len(op.operands), 3))
            stats.variadic_operands.add(
                _clamp_bucket(op.num_variadic_operands, 2)
            )
            stats.results.add(_clamp_bucket(len(op.results), 2))
            stats.variadic_results.add(_clamp_bucket(op.num_variadic_results, 1))
            stats.attributes.add(_clamp_bucket(len(op.attributes), 2))
            stats.regions.add(_clamp_bucket(len(op.regions), 2))
        return stats

    def has_variadic_operand_op(self) -> bool:
        return self.variadic_operands.fraction_at_least(1) > 0

    def has_variadic_result_op(self) -> bool:
        return self.variadic_results.fraction_at_least(1) > 0


@dataclass
class CorpusStats:
    """Aggregated statistics across a whole dialect corpus."""

    dialects: list[DialectStats] = field(default_factory=list)

    @classmethod
    def of(cls, dialect_defs: Iterable[DialectDef]) -> "CorpusStats":
        return cls([DialectStats.of(d) for d in dialect_defs])

    # -- Figure 4 ------------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(d.num_ops for d in self.dialects)

    @property
    def total_types(self) -> int:
        return sum(d.num_types for d in self.dialects)

    @property
    def total_attrs(self) -> int:
        return sum(d.num_attrs for d in self.dialects)

    def ops_per_dialect(self) -> list[tuple[str, int]]:
        """(dialect, op count) sorted ascending — the Figure 4 series."""
        return sorted(
            ((d.name, d.num_ops) for d in self.dialects), key=lambda x: x[1]
        )

    # -- overall histograms (Figures 5–7, "overall" rows) ---------------

    def _overall(self, attribute: str) -> Histogram:
        merged = Histogram()
        for dialect in self.dialects:
            merged.merge(getattr(dialect, attribute))
        return merged

    @property
    def overall_operands(self) -> Histogram:
        return self._overall("operands")

    @property
    def overall_variadic_operands(self) -> Histogram:
        return self._overall("variadic_operands")

    @property
    def overall_results(self) -> Histogram:
        return self._overall("results")

    @property
    def overall_variadic_results(self) -> Histogram:
        return self._overall("variadic_results")

    @property
    def overall_attributes(self) -> Histogram:
        return self._overall("attributes")

    @property
    def overall_regions(self) -> Histogram:
        return self._overall("regions")

    # -- dialect-level fractions quoted in the captions ------------------

    def fraction_of_dialects(self, predicate) -> float:
        if not self.dialects:
            return 0.0
        return sum(1 for d in self.dialects if predicate(d)) / len(self.dialects)

    def dialects_with_variadic_operands(self) -> float:
        """Fig. 5b caption: 79% of dialects have ≥1 variadic-operand op."""
        return self.fraction_of_dialects(DialectStats.has_variadic_operand_op)

    def dialects_with_quarter_variadic_operands(self) -> float:
        """Fig. 5b caption: 46% of dialects have >25% variadic-operand ops."""
        return self.fraction_of_dialects(
            lambda d: d.variadic_operands.fraction_at_least(1) > 0.25
        )

    def dialects_with_variadic_results(self) -> float:
        """Fig. 6b caption: half of the dialects have ≥1 variadic result."""
        return self.fraction_of_dialects(DialectStats.has_variadic_result_op)

    def dialects_with_attributes(self) -> float:
        """Fig. 7a caption: 76% of dialects define an op with an attribute."""
        return self.fraction_of_dialects(
            lambda d: d.attributes.fraction_at_least(1) > 0
        )

    def dialects_with_quarter_attributes(self) -> float:
        """§6.2: 46% of dialects have ≥25% of ops defining an attribute."""
        return self.fraction_of_dialects(
            lambda d: d.attributes.fraction_at_least(1) >= 0.25
        )

    def dialects_with_regions(self) -> float:
        """Fig. 7b caption: 54% of dialects have ≥1 op with a region."""
        return self.fraction_of_dialects(
            lambda d: d.regions.fraction_at_least(1) > 0
        )

    def dialects_with_multi_result_ops(self) -> list[str]:
        """§6.2: ops with >1 result appear in only four dialects."""
        return [
            d.name
            for d in self.dialects
            if d.results.fraction_at_least(2) > 0
        ]
