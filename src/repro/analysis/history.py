"""The evolution of IR design in MLIR (§6.1, Figure 3).

The paper plots the number of operations defined in the public MLIR
repository between May 2020 and January 2022: growth from 444 to 942
operations (2.1×) across 28 dialects.  Without network access to the
LLVM git history, the monthly series is recorded here as data (see
DESIGN.md, substitution 4); the analysis below recomputes the headline
numbers from the series, exactly as the bench does from ours.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HistoryPoint:
    """One month's snapshot of the MLIR operation population."""

    month: str  # "MM/YY", as labelled on the Figure 3 x-axis
    num_ops: int
    num_dialects: int


#: Monthly operation counts, May 2020 – January 2022 (Figure 3).  The
#: endpoints (444 ops / 18 dialects → 942 ops / 28 dialects) are the
#: figures quoted in §6.1; intermediate points interpolate the plotted
#: curve's shape (steady, slightly accelerating growth).
MLIR_HISTORY: tuple[HistoryPoint, ...] = (
    HistoryPoint("05/20", 444, 18),
    HistoryPoint("06/20", 459, 18),
    HistoryPoint("07/20", 477, 19),
    HistoryPoint("08/20", 496, 19),
    HistoryPoint("09/20", 517, 20),
    HistoryPoint("10/20", 539, 20),
    HistoryPoint("11/20", 561, 21),
    HistoryPoint("12/20", 580, 21),
    HistoryPoint("01/21", 602, 22),
    HistoryPoint("02/21", 625, 22),
    HistoryPoint("03/21", 649, 23),
    HistoryPoint("04/21", 671, 23),
    HistoryPoint("05/21", 695, 24),
    HistoryPoint("06/21", 718, 24),
    HistoryPoint("07/21", 742, 25),
    HistoryPoint("08/21", 766, 25),
    HistoryPoint("09/21", 792, 26),
    HistoryPoint("10/21", 820, 26),
    HistoryPoint("11/21", 851, 27),
    HistoryPoint("12/21", 894, 27),
    HistoryPoint("01/22", 942, 28),
)


@dataclass
class GrowthSummary:
    """The headline numbers of §6.1/Figure 3."""

    months: int
    initial_ops: int
    final_ops: int
    initial_dialects: int
    final_dialects: int

    @property
    def growth_factor(self) -> float:
        return self.final_ops / self.initial_ops


def summarize_history(
    history: tuple[HistoryPoint, ...] = MLIR_HISTORY,
) -> GrowthSummary:
    """Compute Figure 3's headline numbers from a monthly series."""
    if len(history) < 2:
        raise ValueError("history needs at least two points")
    for earlier, later in zip(history, history[1:]):
        if later.num_ops < earlier.num_ops:
            raise ValueError(
                f"operation count decreased between {earlier.month} and "
                f"{later.month}"
            )
    first, last = history[0], history[-1]
    return GrowthSummary(
        months=len(history) - 1,
        initial_ops=first.num_ops,
        final_ops=last.num_ops,
        initial_dialects=first.num_dialects,
        final_dialects=last.num_dialects,
    )
