"""Sound three-valued satisfiability analysis over IRDL constraints.

§4 motivates IRDL with analyzability: declarative definitions "can be
analyzed for correctness and tool support".  This module is that
analysis: a decision procedure over the constraint language of Figure 2
returning three-valued verdicts, never a guess.

Normal form
-----------
:meth:`SatEngine.normalize` rewrites a constraint tree into a
disjunction of *clauses*.  Each clause is a conjunction of

* positive **shape atoms** (base-shape facts: "is an f32-wide float
  parameter", "is a ``cmath.complex`` with these parameter shapes", …);
* **negated** sub-constraints (from ``Not``, kept whole);
* **opaque refinements** (``PyConstraint`` predicates and anything else
  the shape language cannot express).

The construction maintains two inclusions the verdicts rest on:

* *over-approximation* (always): every value satisfying the constraint
  lies in some clause's structural region — so if every clause region is
  proved empty, the constraint is ``UNSAT``;
* *under-approximation* (clauses flagged ``exact``): every value in the
  clause's structural region satisfies the constraint — these clauses
  witness coverage in ``subsumes`` proofs.

Verdicts
--------
* ``SAT`` verdicts are proved **constructively**: the engine enumerates
  deterministic shape-directed candidates and re-runs the *original*
  constraint's ``verify`` on them; a passing value is an exact witness
  (retrievable via :meth:`SatEngine.find_witness`).
* ``UNSAT`` and the definite relation verdicts (``subsumes``,
  ``disjoint``) are proved structurally from the inclusions above.
* Anything else is ``UNKNOWN`` — callers (e.g. the linter) may fall
  back to the random sampler, but never report a definite verdict from
  sampling alone.

Constraint variables (§4.6) are handled with assume-bind environments:
within a clause, every occurrence of a variable contributes its base
shape, and the binding is consistent only if the intersection of those
shapes is inhabited.  Cross-constraint sequences (an operation's
operands/results sharing variables) go through
:meth:`SatEngine.sequence_satisfiable` and
:meth:`SatEngine.signatures_overlap`, which thread the environment from
one position to the next.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.ir.attributes import (
    Attribute,
    TypeAttribute,
    attribute_name,
    attribute_parameters,
)
from repro.ir.exceptions import VerifyError
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    ParamValue,
    StringParam,
    TypeIdParam,
)
from repro.irdl import constraints as C
from repro.irdl.constraints import Constraint, ConstraintContext, structurally_equal
from repro.obs.instrument import OBS

__all__ = [
    "Verdict",
    "Ternary",
    "SatEngine",
    "satisfiable",
    "subsumes",
    "disjoint",
    "find_witness",
    "walk",
]


class Verdict(enum.Enum):
    """Three-valued satisfiability answer."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Ternary(enum.Enum):
    """Three-valued relation answer (for ``subsumes``/``disjoint``)."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"


def walk(constraint: Constraint) -> Iterator[Constraint]:
    """Every node of a constraint tree, root first."""
    stack = [constraint]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


# ---------------------------------------------------------------------------
# Value categories
# ---------------------------------------------------------------------------

#: Disjoint categories partitioning the IR value domain.  Two atoms whose
#: category sets do not intersect are trivially disjoint.
_CAT_TYPE = "type"
_CAT_ATTR = "attr"          # non-type attributes
_CAT_INT = "int"
_CAT_FLOAT = "float"
_CAT_STRING = "string"
_CAT_ENUM = "enum"
_CAT_ARRAY = "array"
_CAT_LOCATION = "location"
_CAT_TYPEID = "typeid"
_CAT_OPAQUE = "opaque"

ALL_CATS = frozenset({
    _CAT_TYPE, _CAT_ATTR, _CAT_INT, _CAT_FLOAT, _CAT_STRING, _CAT_ENUM,
    _CAT_ARRAY, _CAT_LOCATION, _CAT_TYPEID, _CAT_OPAQUE,
})


def _value_category(value: Any) -> str | None:
    if isinstance(value, TypeAttribute):
        return _CAT_TYPE
    if isinstance(value, Attribute):
        return _CAT_ATTR
    if isinstance(value, IntegerParam):
        return _CAT_INT
    if isinstance(value, FloatParam):
        return _CAT_FLOAT
    if isinstance(value, StringParam):
        return _CAT_STRING
    if isinstance(value, EnumParam):
        return _CAT_ENUM
    if isinstance(value, ArrayParam):
        return _CAT_ARRAY
    if isinstance(value, LocationParam):
        return _CAT_LOCATION
    if isinstance(value, TypeIdParam):
        return _CAT_TYPEID
    if isinstance(value, OpaqueParam):
        return _CAT_OPAQUE
    return None


# ---------------------------------------------------------------------------
# Shape atoms
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Atom:
    """One positive base-shape fact about a value.

    ``origin`` is the constraint the atom was derived from; it gives the
    engine an exact membership oracle for *concrete* values (running
    ``origin.verify``), which structural reasoning uses as a shortcut.
    """

    origin: Constraint | None = None


@dataclass(eq=False)
class TopAtom(Atom):
    """Any value of the given categories (``AnyType``/``AnyAttr``/…)."""

    cats: frozenset[str] = ALL_CATS


@dataclass(eq=False)
class ExactAtom(Atom):
    """Exactly one value (``Eq``, literals, enum constructors)."""

    value: Any = None


@dataclass(eq=False)
class AttrAtom(Atom):
    """An attribute/type with a given base name (``Base``/``Parametric``).

    ``params`` is ``None`` for a bare base match, or one normal-form
    formula per parameter for a parametric match.
    """

    name: str = ""
    is_type: bool = False
    params: tuple[list["Clause"], ...] | None = None
    definition: Any = None


@dataclass(eq=False)
class IntAtom(Atom):
    width: int = 32
    signed: bool = True


@dataclass(eq=False)
class StrAtom(Atom):
    pass


@dataclass(eq=False)
class FloatAtom(Atom):
    width: int = 64


@dataclass(eq=False)
class EnumAtom(Atom):
    enum_name: str = ""
    ctors: tuple[str, ...] = ()
    binding: Any = None


@dataclass(eq=False)
class ArrayAtom(Atom):
    """``elems`` fixes the arity (one formula per slot); ``elem`` is the
    homogeneous element formula of an ``array<pc>`` constraint."""

    elems: tuple[list["Clause"], ...] | None = None
    elem: list["Clause"] | None = None


@dataclass(eq=False)
class LocationAtom(Atom):
    pass


@dataclass(eq=False)
class TypeIdAtom(Atom):
    pass


@dataclass(eq=False)
class FloatAttrAtom(Atom):
    width: int = 32


@dataclass(eq=False)
class IntAttrAtom(Atom):
    width: int | None = 32  # ``None`` means the index type


@dataclass(eq=False)
class WrapperAtom(Atom):
    class_name: str = ""


def _atom_cats(atom: Atom) -> frozenset[str] | None:
    """The categories an atom's values can inhabit (``None`` = unknown)."""
    if isinstance(atom, TopAtom):
        return atom.cats
    if isinstance(atom, ExactAtom):
        cat = _value_category(atom.value)
        return frozenset({cat}) if cat is not None else None
    if isinstance(atom, AttrAtom):
        return frozenset({_CAT_TYPE if atom.is_type else _CAT_ATTR})
    if isinstance(atom, IntAtom):
        return frozenset({_CAT_INT})
    if isinstance(atom, StrAtom):
        return frozenset({_CAT_STRING})
    if isinstance(atom, FloatAtom):
        return frozenset({_CAT_FLOAT})
    if isinstance(atom, EnumAtom):
        return frozenset({_CAT_ENUM})
    if isinstance(atom, ArrayAtom):
        return frozenset({_CAT_ARRAY})
    if isinstance(atom, LocationAtom):
        return frozenset({_CAT_LOCATION})
    if isinstance(atom, TypeIdAtom):
        return frozenset({_CAT_TYPEID})
    if isinstance(atom, (FloatAttrAtom, IntAttrAtom)):
        return frozenset({_CAT_ATTR})
    if isinstance(atom, WrapperAtom):
        return frozenset({_CAT_OPAQUE})
    return None


#: Witness-enumeration priority: lower = more specific = tried first.
def _atom_specificity(atom: Atom) -> int:
    if isinstance(atom, ExactAtom):
        return 0
    if isinstance(atom, AttrAtom):
        return 1 if atom.params is not None else 2
    if isinstance(atom, TopAtom):
        return 9
    return 3


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Clause:
    """One conjunctive clause of the disjunctive normal form."""

    atoms: list[Atom] = field(default_factory=list)
    negs: list[Constraint] = field(default_factory=list)
    opaque: list[Constraint] = field(default_factory=list)
    #: Per constraint-variable: base-shape formulas of its occurrences.
    binds: dict[str, list[list["Clause"]]] = field(default_factory=dict)
    #: region(clause) ⊆ region(constraint) holds (under-approximation)?
    exact: bool = True


Formula = list  # list[Clause]; [] is the trivially UNSAT formula


def _combine(a: Clause, b: Clause) -> Clause:
    binds: dict[str, list[Formula]] = {k: list(v) for k, v in a.binds.items()}
    for k, v in b.binds.items():
        binds.setdefault(k, []).extend(v)
    return Clause(
        atoms=a.atoms + b.atoms,
        negs=a.negs + b.negs,
        opaque=a.opaque + b.opaque,
        binds=binds,
        exact=a.exact and b.exact,
    )


def _definitely_accepts(constraint: Constraint, value: Any) -> bool | None:
    """Exact membership of a concrete value; ``None`` if evaluation blew up."""
    try:
        constraint.verify(value, ConstraintContext())
        return True
    except VerifyError:
        return False
    except Exception:
        return None


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

#: Normalization gives up (opaque clause) past this many clauses.
_MAX_CLAUSES = 64
#: Recursion fuel for structural proofs.
_MAX_DEPTH = 6
#: Candidate witnesses tried per clause.
_MAX_WITNESSES = 40
#: Parameter-tuple combinations tried when building attribute witnesses.
_MAX_COMBOS = 12


class SatEngine:
    """Three-valued satisfiability/subsumption/disjointness decisions."""

    def __init__(self) -> None:
        self._norm_memo: dict[int, tuple[Constraint, Formula]] = {}
        self._sat_memo: dict[int, tuple[Constraint, Verdict, Any]] = {}

    # -- public API ----------------------------------------------------

    def satisfiable(self, constraint: Constraint,
                    env: Mapping[str, Constraint] | None = None) -> Verdict:
        """Is some well-formed IR value accepted by ``constraint``?"""
        verdict, _ = self.satisfiable_with_witness(constraint, env)
        return verdict

    def find_witness(self, constraint: Constraint,
                     env: Mapping[str, Constraint] | None = None) -> Any | None:
        """A concrete verified witness, or ``None`` if SAT was not proved."""
        verdict, witness = self.satisfiable_with_witness(constraint, env)
        return witness if verdict is Verdict.SAT else None

    def satisfiable_with_witness(
        self, constraint: Constraint,
        env: Mapping[str, Constraint] | None = None,
    ) -> tuple[Verdict, Any]:
        metrics = OBS.metrics
        metrics.counter("analysis.sat.queries").inc()
        key = id(constraint)
        if env is None and key in self._sat_memo:
            _, verdict, witness = self._sat_memo[key]
            metrics.counter(f"analysis.sat.{verdict.value}").inc()
            return verdict, witness
        formula = self.normalize(constraint, env)
        verdict, witness = Verdict.UNSAT, None
        for clause in formula:
            if self._clause_refuted(clause, _MAX_DEPTH):
                continue
            for candidate in self._clause_candidates(clause, _MAX_DEPTH):
                metrics.counter("analysis.sat.witness_checks").inc()
                if _definitely_accepts(constraint, candidate):
                    verdict, witness = Verdict.SAT, candidate
                    break
            else:
                verdict = Verdict.UNKNOWN
                continue
            break
        if env is None:
            if len(self._sat_memo) > 4096:
                self._sat_memo.clear()
            self._sat_memo[key] = (constraint, verdict, witness)
        metrics.counter(f"analysis.sat.{verdict.value}").inc()
        return verdict, witness

    def subsumes(self, a: Constraint, b: Constraint) -> Ternary:
        """Does every value satisfying ``b`` also satisfy ``a``?"""
        OBS.metrics.counter("analysis.sat.queries").inc()
        if structurally_equal(a, b):
            return Ternary.TRUE
        formula_a = self.normalize(a)
        formula_b = self.normalize(b)
        covered = True
        for clause_b in formula_b:
            if self._clause_refuted(clause_b, _MAX_DEPTH):
                continue  # the empty region is trivially covered
            if not any(self._clause_covers(clause_a, clause_b, _MAX_DEPTH)
                       for clause_a in formula_a):
                covered = False
                break
        if covered:
            return Ternary.TRUE
        # Look for a definite counterexample: a verified witness of ``b``
        # that ``a`` definitely rejects.
        for clause_b in formula_b:
            for candidate in self._clause_candidates(clause_b, _MAX_DEPTH):
                if _definitely_accepts(b, candidate) and \
                        _definitely_accepts(a, candidate) is False:
                    return Ternary.FALSE
        return Ternary.UNKNOWN

    def disjoint(self, a: Constraint, b: Constraint) -> Ternary:
        """Can no single value satisfy both constraints?"""
        OBS.metrics.counter("analysis.sat.queries").inc()
        formula_a = self.normalize(a)
        formula_b = self.normalize(b)
        if self._formulas_disjoint(formula_a, formula_b, _MAX_DEPTH):
            return Ternary.TRUE
        # A common verified witness is a definite overlap.
        for clause in itertools.chain(formula_a, formula_b):
            for candidate in self._clause_candidates(clause, _MAX_DEPTH):
                if _definitely_accepts(a, candidate) and \
                        _definitely_accepts(b, candidate):
                    return Ternary.FALSE
        return Ternary.UNKNOWN

    def sequence_satisfiable(
        self, constraints: Sequence[Constraint],
    ) -> Verdict:
        """Joint satisfiability of a constraint sequence sharing variables.

        Models an operation signature: one value per position, with
        constraint variables bound consistently across positions
        (assume-bind: the shape a variable acquires at its first
        occurrence is assumed at every later one).
        """
        env: dict[str, Constraint] = {}
        any_unknown = False
        for constraint in constraints:
            verdict = self.satisfiable(constraint, env if env else None)
            if verdict is Verdict.UNSAT:
                return Verdict.UNSAT
            if verdict is Verdict.UNKNOWN:
                any_unknown = True
            for node in walk(constraint):
                if isinstance(node, C.VarConstraint):
                    env.setdefault(node.name, node.base)
        if any_unknown:
            return Verdict.UNKNOWN
        # Positional SAT everywhere; confirm with one joint concrete run.
        cctx = ConstraintContext()
        for constraint in constraints:
            witness = self.find_witness(constraint)
            try:
                constraint.verify(witness, cctx)
            except Exception:
                return Verdict.UNKNOWN
        return Verdict.SAT

    def signatures_overlap(
        self,
        sig_a: Sequence[Constraint],
        sig_b: Sequence[Constraint],
        max_nodes: int = 200,
    ) -> Ternary:
        """Can one value vector satisfy two signatures simultaneously?

        ``TRUE`` is proved constructively (a concrete vector verified
        against both signatures, respecting each side's own variable
        bindings); ``FALSE`` is proved structurally (some position pair
        is disjoint).
        """
        if len(sig_a) != len(sig_b):
            return Ternary.FALSE
        for a, b in zip(sig_a, sig_b):
            if self.disjoint(a, b) is Ternary.TRUE:
                return Ternary.FALSE
        # Depth-first concrete search with both contexts threaded along.
        budget = [max_nodes]

        def candidates(position: int) -> list[Any]:
            values: list[Any] = []
            for constraint in (sig_a[position], sig_b[position]):
                for clause in self.normalize(constraint):
                    for value in self._clause_candidates(clause, _MAX_DEPTH):
                        values.append(value)
                        if len(values) >= 8:
                            return values
            return values

        def extend(position: int, ctx_a: ConstraintContext,
                   ctx_b: ConstraintContext) -> bool:
            if position == len(sig_a):
                return True
            for value in candidates(position):
                if budget[0] <= 0:
                    return False
                budget[0] -= 1
                saved_a, saved_b = dict(ctx_a.bindings), dict(ctx_b.bindings)
                try:
                    sig_a[position].verify(value, ctx_a)
                    sig_b[position].verify(value, ctx_b)
                except Exception:
                    ctx_a.bindings.clear(); ctx_a.bindings.update(saved_a)
                    ctx_b.bindings.clear(); ctx_b.bindings.update(saved_b)
                    continue
                if extend(position + 1, ctx_a, ctx_b):
                    return True
                ctx_a.bindings.clear(); ctx_a.bindings.update(saved_a)
                ctx_b.bindings.clear(); ctx_b.bindings.update(saved_b)
            return False

        if extend(0, ConstraintContext(), ConstraintContext()):
            return Ternary.TRUE
        return Ternary.UNKNOWN

    # -- normalization -------------------------------------------------

    def normalize(self, constraint: Constraint,
                  env: Mapping[str, Constraint] | None = None) -> Formula:
        """The disjunction of base-shape clauses covering ``constraint``."""
        if env is None:
            memo = self._norm_memo.get(id(constraint))
            if memo is not None:
                return memo[1]
        formula = self._normalize(constraint, env)
        if env is None:
            if len(self._norm_memo) > 4096:
                self._norm_memo.clear()
            self._norm_memo[id(constraint)] = (constraint, formula)
        return formula

    def _opaque_clause(self, constraint: Constraint) -> Formula:
        return [Clause(atoms=[TopAtom(origin=None, cats=ALL_CATS)],
                       opaque=[constraint], exact=False)]

    def _normalize(self, c: Constraint,
                   env: Mapping[str, Constraint] | None) -> Formula:
        if isinstance(c, C.AnyTypeConstraint):
            return [Clause(atoms=[TopAtom(origin=c, cats=frozenset({_CAT_TYPE}))])]
        if isinstance(c, C.AnyAttrConstraint):
            return [Clause(atoms=[TopAtom(
                origin=c, cats=frozenset({_CAT_TYPE, _CAT_ATTR}))])]
        if isinstance(c, C.AnyParamConstraint):
            return [Clause(atoms=[TopAtom(origin=c, cats=ALL_CATS)])]
        if isinstance(c, C.AnyOfConstraint):
            clauses: Formula = []
            for alternative in c.alternatives:
                clauses.extend(self._normalize(alternative, env))
                if len(clauses) > _MAX_CLAUSES:
                    return self._opaque_clause(c)
            return clauses
        if isinstance(c, C.AndConstraint):
            product: Formula = [Clause()]
            for conjunct in c.conjuncts:
                branch = self._normalize(conjunct, env)
                product = [_combine(left, right)
                           for left in product for right in branch]
                if len(product) > _MAX_CLAUSES:
                    return self._opaque_clause(c)
            return product
        if isinstance(c, C.NotConstraint):
            return [Clause(atoms=[TopAtom(origin=None, cats=ALL_CATS)],
                           negs=[c.inner])]
        if isinstance(c, C.VarConstraint):
            base: Constraint = c.base
            if env is not None and c.name in env:
                assumed = env[c.name]
                if assumed is not base:
                    base = C.AndConstraint([base, assumed])
            formula = []
            for clause in self._normalize(base, env):
                shape = Clause(atoms=list(clause.atoms),
                               negs=list(clause.negs),
                               opaque=list(clause.opaque),
                               exact=clause.exact)
                bound = _combine(clause, Clause())
                bound.binds.setdefault(c.name, []).append([shape])
                # Positional shape is exact, but the cross-position
                # consistency side condition is not representable here.
                bound.exact = False
                formula.append(bound)
            return formula
        if isinstance(c, C.EqConstraint):
            return [Clause(atoms=[ExactAtom(origin=c, value=c.expected)])]
        if isinstance(c, C.BaseConstraint):
            return [Clause(atoms=[AttrAtom(
                origin=c, name=c.definition.canonical_name,
                is_type=c.definition.is_type, params=None,
                definition=c.definition)])]
        if isinstance(c, C.ParametricConstraint):
            params = tuple(self._normalize(p, env) for p in c.param_constraints)
            exact = all(clause.exact for formula in params for clause in formula)
            return [Clause(atoms=[AttrAtom(
                origin=c, name=c.definition.canonical_name,
                is_type=c.definition.is_type, params=params,
                definition=c.definition)], exact=exact)]
        if isinstance(c, C.IntTypeConstraint):
            return [Clause(atoms=[IntAtom(origin=c, width=c.bitwidth,
                                          signed=c.signed)])]
        if isinstance(c, C.IntLiteralConstraint):
            return [Clause(atoms=[ExactAtom(origin=c, value=c.param)])]
        if isinstance(c, C.AnyStringConstraint):
            return [Clause(atoms=[StrAtom(origin=c)])]
        if isinstance(c, C.StringLiteralConstraint):
            return [Clause(atoms=[ExactAtom(origin=c,
                                            value=StringParam(c.value))])]
        if isinstance(c, C.AnyFloatConstraint):
            return [Clause(atoms=[FloatAtom(origin=c, width=c.bitwidth)])]
        if isinstance(c, C.FloatAttrConstraint):
            return [Clause(atoms=[FloatAttrAtom(origin=c, width=c.bitwidth)])]
        if isinstance(c, C.IntegerAttrConstraint):
            return [Clause(atoms=[IntAttrAtom(origin=c, width=c.bitwidth)])]
        if isinstance(c, C.LocationConstraint):
            return [Clause(atoms=[LocationAtom(origin=c)])]
        if isinstance(c, C.TypeIdConstraint):
            return [Clause(atoms=[TypeIdAtom(origin=c)])]
        if isinstance(c, C.EnumConstraint):
            return [Clause(atoms=[EnumAtom(
                origin=c, enum_name=c.enum.qualified_name,
                ctors=tuple(c.enum.constructors), binding=c.enum)])]
        if isinstance(c, C.EnumConstructorConstraint):
            return [Clause(atoms=[ExactAtom(
                origin=c,
                value=EnumParam(c.enum.qualified_name, c.constructor))])]
        if isinstance(c, C.ArrayAnyConstraint):
            elem = self._normalize(c.element, env)
            return [Clause(atoms=[ArrayAtom(origin=c, elem=elem)])]
        if isinstance(c, C.ArrayExactConstraint):
            elems = tuple(self._normalize(e, env) for e in c.elements)
            exact = all(cl.exact for formula in elems for cl in formula)
            return [Clause(atoms=[ArrayAtom(origin=c, elems=elems)],
                           exact=exact)]
        if isinstance(c, C.PyConstraint):
            formula = []
            for clause in self._normalize(c.base, env):
                clause = _combine(clause, Clause(opaque=[c], exact=False))
                formula.append(clause)
            return formula
        if isinstance(c, C.ParamWrapperConstraint):
            return [Clause(atoms=[WrapperAtom(origin=c,
                                              class_name=c.class_name)])]
        return self._opaque_clause(c)

    # -- structural refutation (UNSAT proofs) --------------------------

    def _clause_refuted(self, clause: Clause, depth: int) -> bool:
        """Definitely-empty structural region?  (Sound, incomplete.)"""
        if depth <= 0:
            return False
        atoms = clause.atoms
        for i, left in enumerate(atoms):
            for right in atoms[i + 1:]:
                if self._atoms_disjoint(left, right, depth - 1):
                    return True
        # A pinned exact value decides every other conjunct concretely.
        for atom in atoms:
            if not isinstance(atom, ExactAtom):
                continue
            for other in atoms:
                if other is atom or other.origin is None:
                    continue
                if _definitely_accepts(other.origin, atom.value) is False:
                    return True
            for neg in clause.negs:
                if _definitely_accepts(neg, atom.value) is True:
                    return True
            for refinement in clause.opaque:
                if _definitely_accepts(refinement, atom.value) is False:
                    return True
        # Uninhabited sub-shapes.
        for atom in atoms:
            if isinstance(atom, AttrAtom) and atom.params is not None:
                for formula in atom.params:
                    if all(self._clause_refuted(cl, depth - 1)
                           for cl in formula):
                        return True
            if isinstance(atom, ArrayAtom) and atom.elems is not None:
                for formula in atom.elems:
                    if all(self._clause_refuted(cl, depth - 1)
                           for cl in formula):
                        return True
            if isinstance(atom, EnumAtom) and not atom.ctors:
                return True
        # A negation covering the whole clause empties it.
        for neg in clause.negs:
            if self._clause_covered_by(clause, self.normalize(neg), depth - 1):
                return True
        # Inconsistent constraint-variable bindings.
        for formulas in clause.binds.values():
            for i, left in enumerate(formulas):
                for right in formulas[i + 1:]:
                    if self._formulas_disjoint(left, right, depth - 1):
                        return True
        return False

    def _clause_covered_by(self, clause: Clause, formula: Formula,
                           depth: int) -> bool:
        """Is the clause's structural region inside one formula clause?"""
        for cover in formula:
            if self._clause_covers(cover, clause, depth):
                return True
        return False

    # -- coverage (subsumption proofs) ---------------------------------

    def _clause_covers(self, general: Clause, specific: Clause,
                       depth: int) -> bool:
        """region(specific) ⊆ region(general), definitely?

        Requires ``general`` to be an under-approximating (exact) clause
        with no opaque refinements; ``specific``'s own negations and
        refinements only shrink its region, so they may be ignored.
        """
        if depth <= 0:
            return False
        if not general.exact or general.opaque:
            return False
        for atom in general.atoms:
            if not self._atom_covered(atom, specific, depth):
                return False
        for neg in general.negs:
            # ``specific`` must imply ¬neg: its region disjoint from neg's.
            if any(structurally_equal(neg, other) for other in specific.negs):
                continue
            if not self._formulas_disjoint(self.normalize(neg), [specific],
                                           depth - 1):
                return False
        return True

    def _atom_covered(self, general: Atom, specific: Clause,
                      depth: int) -> bool:
        """Do the specific clause's atoms imply the general atom?"""
        if isinstance(general, TopAtom):
            cats = set()
            for atom in specific.atoms:
                atom_cats = _atom_cats(atom)
                if atom_cats is not None:
                    cats = atom_cats if not cats else cats & atom_cats
                    if cats and cats <= general.cats:
                        return True
            return bool(cats) and cats <= general.cats
        return any(self._atom_covers(general, atom, depth)
                   for atom in specific.atoms)

    def _atom_covers(self, general: Atom, specific: Atom, depth: int) -> bool:
        """values(specific) ⊆ values(general), definitely?"""
        if depth <= 0:
            return False
        # A concrete value is decided exactly by the general origin.
        if isinstance(specific, ExactAtom) and general.origin is not None:
            return _definitely_accepts(general.origin, specific.value) is True
        if isinstance(general, TopAtom):
            specific_cats = _atom_cats(specific)
            return specific_cats is not None and specific_cats <= general.cats
        if isinstance(general, AttrAtom) and isinstance(specific, AttrAtom):
            if general.name != specific.name:
                return False
            if general.params is None:
                return True
            if specific.params is None or \
                    len(specific.params) != len(general.params):
                return False
            return all(
                self._formula_covers(gp, sp, depth - 1)
                for gp, sp in zip(general.params, specific.params)
            )
        if isinstance(general, IntAtom):
            return isinstance(specific, IntAtom) and \
                (general.width, general.signed) == (specific.width,
                                                    specific.signed)
        if isinstance(general, StrAtom):
            return isinstance(specific, StrAtom)
        if isinstance(general, FloatAtom):
            return isinstance(specific, FloatAtom) and \
                general.width == specific.width
        if isinstance(general, EnumAtom):
            return isinstance(specific, EnumAtom) and \
                general.enum_name == specific.enum_name and \
                set(specific.ctors) <= set(general.ctors)
        if isinstance(general, LocationAtom):
            return isinstance(specific, LocationAtom)
        if isinstance(general, TypeIdAtom):
            return isinstance(specific, TypeIdAtom)
        if isinstance(general, FloatAttrAtom):
            return isinstance(specific, FloatAttrAtom) and \
                general.width == specific.width
        if isinstance(general, IntAttrAtom):
            return isinstance(specific, IntAttrAtom) and \
                general.width == specific.width
        if isinstance(general, WrapperAtom):
            return isinstance(specific, WrapperAtom) and \
                general.class_name == specific.class_name
        if isinstance(general, ArrayAtom) and isinstance(specific, ArrayAtom):
            if general.elem is not None:
                if specific.elems is not None:
                    return all(self._formula_covers(general.elem, sp, depth - 1)
                               for sp in specific.elems)
                if specific.elem is not None:
                    return self._formula_covers(general.elem, specific.elem,
                                                depth - 1)
                return False
            if general.elems is not None and specific.elems is not None:
                if len(general.elems) != len(specific.elems):
                    return False
                return all(self._formula_covers(gp, sp, depth - 1)
                           for gp, sp in zip(general.elems, specific.elems))
        return False

    def _formula_covers(self, general: Formula, specific: Formula,
                        depth: int) -> bool:
        """Every inhabited clause of ``specific`` covered by ``general``."""
        if depth <= 0:
            return False
        for clause in specific:
            if self._clause_refuted(clause, depth - 1):
                continue
            if not any(self._clause_covers(cover, clause, depth - 1)
                       for cover in general):
                return False
        return True

    # -- disjointness --------------------------------------------------

    def _formulas_disjoint(self, left: Formula, right: Formula,
                           depth: int) -> bool:
        if depth <= 0:
            return False
        for clause_l in left:
            for clause_r in right:
                if not self._clauses_disjoint(clause_l, clause_r, depth):
                    return False
        return True

    def _clauses_disjoint(self, left: Clause, right: Clause,
                          depth: int) -> bool:
        combined = _combine(left, right)
        return self._clause_refuted(combined, depth - 1)

    def _atoms_disjoint(self, left: Atom, right: Atom, depth: int) -> bool:
        """No value satisfies both atoms, definitely?"""
        if depth <= 0:
            return False
        cats_l, cats_r = _atom_cats(left), _atom_cats(right)
        if cats_l is not None and cats_r is not None and not (cats_l & cats_r):
            return True
        if isinstance(left, ExactAtom) and isinstance(right, ExactAtom):
            try:
                return left.value != right.value
            except Exception:
                return False
        for exact, other in ((left, right), (right, left)):
            if isinstance(exact, ExactAtom) and other.origin is not None:
                return _definitely_accepts(other.origin, exact.value) is False
        if isinstance(left, IntAtom) and isinstance(right, IntAtom):
            return (left.width, left.signed) != (right.width, right.signed)
        if isinstance(left, FloatAtom) and isinstance(right, FloatAtom):
            return left.width != right.width
        if isinstance(left, FloatAttrAtom) and isinstance(right, FloatAttrAtom):
            return left.width != right.width
        if isinstance(left, IntAttrAtom) and isinstance(right, IntAttrAtom):
            return left.width != right.width
        if isinstance(left, WrapperAtom) and isinstance(right, WrapperAtom):
            return left.class_name != right.class_name
        if isinstance(left, EnumAtom) and isinstance(right, EnumAtom):
            if left.enum_name != right.enum_name:
                return True
            return not (set(left.ctors) & set(right.ctors))
        if isinstance(left, AttrAtom) and isinstance(right, AttrAtom):
            if left.name != right.name:
                return True
            if left.params is not None and right.params is not None:
                if len(left.params) != len(right.params):
                    return True
                return any(
                    self._formulas_disjoint(lp, rp, depth - 1)
                    for lp, rp in zip(left.params, right.params)
                )
            return False
        if isinstance(left, AttrAtom) and \
                isinstance(right, (FloatAttrAtom, IntAttrAtom)):
            return self._attr_vs_builtin_disjoint(left, right)
        if isinstance(right, AttrAtom) and \
                isinstance(left, (FloatAttrAtom, IntAttrAtom)):
            return self._attr_vs_builtin_disjoint(right, left)
        if isinstance(left, FloatAttrAtom) and isinstance(right, IntAttrAtom):
            return True
        if isinstance(left, IntAttrAtom) and isinstance(right, FloatAttrAtom):
            return True
        if isinstance(left, ArrayAtom) and isinstance(right, ArrayAtom):
            if left.elems is not None and right.elems is not None:
                if len(left.elems) != len(right.elems):
                    return True
                return any(self._formulas_disjoint(lp, rp, depth - 1)
                           for lp, rp in zip(left.elems, right.elems))
            for fixed, open_ in ((left, right), (right, left)):
                if fixed.elems is not None and open_.elem is not None \
                        and fixed.elems:
                    if any(self._formulas_disjoint(fp, open_.elem, depth - 1)
                           for fp in fixed.elems):
                        return True
            return False
        return False

    @staticmethod
    def _attr_vs_builtin_disjoint(attr: AttrAtom, builtin: Atom) -> bool:
        expected = ("builtin.float_attr" if isinstance(builtin, FloatAttrAtom)
                    else "builtin.integer_attr")
        return attr.name != expected

    # -- witness enumeration -------------------------------------------

    def _clause_candidates(self, clause: Clause, depth: int,
                           limit: int = _MAX_WITNESSES) -> Iterator[Any]:
        """Deterministic shape-directed candidate values for a clause.

        Candidates are *suggestions*: callers must re-verify against the
        original constraint, which is what makes SAT proofs exact.
        """
        produced = 0
        atoms = sorted(clause.atoms, key=_atom_specificity) \
            or [TopAtom(cats=ALL_CATS)]
        for atom in atoms:
            for candidate in self._atom_candidates(atom, depth):
                yield candidate
                produced += 1
                if produced >= limit:
                    return

    def _atom_candidates(self, atom: Atom, depth: int) -> Iterator[Any]:
        if depth <= 0:
            return
        if isinstance(atom, ExactAtom):
            yield atom.value
            return
        if isinstance(atom, IntAtom):
            low, high = IntegerParam.value_range(atom.width, atom.signed)
            for value in (0, 1, 2, high, low):
                yield IntegerParam(value, atom.width, atom.signed)
            return
        if isinstance(atom, StrAtom):
            for text in ("", "a", "witness"):
                yield StringParam(text)
            return
        if isinstance(atom, FloatAtom):
            for value in (0.0, 1.5, -2.0):
                yield FloatParam(value, atom.width)
            return
        if isinstance(atom, EnumAtom):
            for ctor in atom.ctors[:8]:
                yield EnumParam(atom.enum_name, ctor)
            return
        if isinstance(atom, LocationAtom):
            yield LocationParam("witness.mlir", 1, 1)
            return
        if isinstance(atom, TypeIdAtom):
            yield TypeIdParam("witness.TypeId")
            return
        if isinstance(atom, WrapperAtom):
            yield OpaqueParam(atom.class_name, "witness")
            return
        if isinstance(atom, FloatAttrAtom):
            from repro.builtin import FloatAttr, FloatType

            for value in (0.0, 1.5):
                yield FloatAttr(value, FloatType(atom.width))
            return
        if isinstance(atom, IntAttrAtom):
            from repro.builtin import IntegerAttr, IntegerType, index

            attr_type = index if atom.width is None \
                else IntegerType(atom.width)
            for value in (0, 1):
                yield IntegerAttr(value, attr_type)
            return
        if isinstance(atom, ArrayAtom):
            if atom.elems is not None:
                pools = [list(self._formula_candidates(f, depth - 1, 4))
                         for f in atom.elems]
                if all(pools):
                    for combo in itertools.islice(itertools.product(*pools),
                                                  _MAX_COMBOS):
                        yield ArrayParam(tuple(combo))
                return
            yield ArrayParam(())
            if atom.elem is not None:
                for value in self._formula_candidates(atom.elem, depth - 1, 2):
                    yield ArrayParam((value,))
            return
        if isinstance(atom, AttrAtom):
            yield from self._attr_candidates(atom, depth)
            return
        if isinstance(atom, TopAtom):
            yield from self._top_candidates(atom)
            return

    def _attr_candidates(self, atom: AttrAtom, depth: int) -> Iterator[Any]:
        params = atom.params
        if params is None:
            definition = atom.definition
            type_def = getattr(definition, "type_def", None)
            if type_def is not None:
                params = tuple(self.normalize(p.constraint)
                               for p in type_def.parameters)
            elif not getattr(definition, "parameter_names", ()):
                params = ()
        produced = False
        if params is not None:
            pools = [list(self._formula_candidates(f, depth - 1, 4))
                     for f in params]
            if all(pools):
                for combo in itertools.islice(itertools.product(*pools),
                                              _MAX_COMBOS):
                    try:
                        yield atom.definition.instantiate(list(combo))
                        produced = True
                    except Exception:
                        continue
        if not produced:
            # Natively registered definition (no IRDL parameter
            # constraints to mine, or none that instantiate): fall back
            # to the builtin value pool.
            for value in self._top_candidates(TopAtom(cats=frozenset(
                    {_CAT_TYPE, _CAT_ATTR}))):
                if attribute_name(value) == atom.name:
                    yield value

    def _formula_candidates(self, formula: Formula, depth: int,
                            per_clause: int) -> Iterator[Any]:
        for clause in formula:
            yield from self._clause_candidates(clause, depth, per_clause)

    @staticmethod
    def _top_candidates(atom: TopAtom) -> Iterator[Any]:
        from repro.builtin import (
            IntegerAttr, StringAttr, f32, f64, i1, i32, i64, index,
        )

        if _CAT_TYPE in atom.cats:
            yield from (i32, f32, i1, i64, f64, index)
        if _CAT_ATTR in atom.cats:
            yield StringAttr("witness")
            yield IntegerAttr(0, i32)
        if _CAT_INT in atom.cats:
            yield IntegerParam(0, 32, True)
            yield IntegerParam(1, 64, True)
        if _CAT_FLOAT in atom.cats:
            yield FloatParam(0.0, 64)
            yield FloatParam(1.5, 32)
        if _CAT_STRING in atom.cats:
            yield StringParam("witness")
        if _CAT_ARRAY in atom.cats:
            yield ArrayParam(())
        if _CAT_LOCATION in atom.cats:
            yield LocationParam("witness.mlir", 1, 1)
        if _CAT_TYPEID in atom.cats:
            yield TypeIdParam("witness.TypeId")
        if _CAT_OPAQUE in atom.cats:
            yield OpaqueParam("object", "witness")


# ---------------------------------------------------------------------------
# Module-level convenience API (a shared engine with memoization)
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE = SatEngine()


def satisfiable(constraint: Constraint,
                env: Mapping[str, Constraint] | None = None) -> Verdict:
    """Three-valued satisfiability using the shared engine."""
    return _DEFAULT_ENGINE.satisfiable(constraint, env)


def find_witness(constraint: Constraint,
                 env: Mapping[str, Constraint] | None = None) -> Any | None:
    """A verified concrete witness, or ``None`` when SAT is unproved."""
    return _DEFAULT_ENGINE.find_witness(constraint, env)


def subsumes(a: Constraint, b: Constraint) -> Ternary:
    """Does every value of ``b`` satisfy ``a``?  (Shared engine.)"""
    return _DEFAULT_ENGINE.subsumes(a, b)


def disjoint(a: Constraint, b: Constraint) -> Ternary:
    """Can no value satisfy both?  (Shared engine.)"""
    return _DEFAULT_ENGINE.disjoint(a, b)
