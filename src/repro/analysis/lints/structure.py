"""Structural dialect lints: naming, documentation, dead variables,
variadic segments, unused declarations, and provably equivalent
operation signatures.
"""

from __future__ import annotations

from repro.analysis.lints.base import LintFinding
from repro.analysis.sat import SatEngine, Ternary, walk
from repro.irdl import constraints as C
from repro.irdl.ast import DialectDecl, RefExpr
from repro.irdl.defs import DialectDef, OpDef


def check_dialect(
    engine: SatEngine,
    dialect: DialectDef,
    decl: DialectDecl | None,
    spans: dict[str, str],
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    findings.extend(_check_segments(dialect, spans))
    findings.extend(_check_duplicates(dialect, spans))
    findings.extend(_check_summaries(dialect, spans))
    findings.extend(_check_dead_vars(dialect, spans))
    findings.extend(_check_overlapping_ops(engine, dialect, spans))
    if decl is not None:
        findings.extend(_check_unused(decl))
    return findings


# -- multi-variadic segments ------------------------------------------------

def _check_segments(dialect, spans):
    findings = []
    for op in dialect.operations:
        for kind, count in (("operand", op.num_variadic_operands),
                            ("result", op.num_variadic_results)):
            if count > 1:
                findings.append(LintFinding(
                    "segment-attribute-required", "note", op.qualified_name,
                    f"{count} variadic {kind} definitions: instances must "
                    f"carry a {kind}_segment_sizes attribute (§4.6)",
                    spans.get(op.qualified_name, ""),
                ))
    return findings


# -- duplicate names --------------------------------------------------------

def _check_duplicates(dialect, spans):
    findings = []
    seen: dict[str, str] = {}
    for kind, items in (
        ("operation", dialect.operations),
        ("type", dialect.types),
        ("attribute", dialect.attributes),
    ):
        for item in items:
            key = f"{kind}:{item.name}"
            subject = f"{dialect.name}.{item.name}"
            if key in seen:
                findings.append(LintFinding(
                    "duplicate-name", "error", subject,
                    f"{kind} defined more than once",
                    spans.get(subject, ""),
                ))
            seen[key] = kind
    return findings


# -- missing summaries ------------------------------------------------------

def _check_summaries(dialect, spans):
    findings = []
    for op in dialect.operations:
        if not op.summary:
            findings.append(LintFinding(
                "missing-summary", "warning", op.qualified_name,
                "operation has no Summary documentation",
                spans.get(op.qualified_name, ""),
            ))
    for type_def in (*dialect.types, *dialect.attributes):
        if not type_def.summary:
            findings.append(LintFinding(
                "missing-summary", "warning", type_def.qualified_name,
                "definition has no Summary documentation",
                spans.get(type_def.qualified_name, ""),
            ))
    return findings


# -- dead constraint variables ----------------------------------------------

def _format_reads_var(op: OpDef, name: str) -> bool:
    """Does the op's declarative format read ``$name`` (or ``$name.p``)?"""
    if op.format is None:
        return False
    from repro.irdl.format import (
        FormatError,
        VarParamDirective,
        VarTypeDirective,
        _scan_directives,
    )

    try:
        directives = _scan_directives(op)
    except FormatError:
        return False
    return any(
        isinstance(d, (VarTypeDirective, VarParamDirective)) and d.var == name
        for d in directives
    )


def _check_dead_vars(dialect, spans):
    findings = []
    for op in dialect.operations:
        loc = spans.get(op.qualified_name, "")
        positions = [
            a.constraint
            for a in (*op.operands, *op.results, *op.attributes)
        ]
        for region in op.regions:
            positions.extend(a.constraint for a in region.arguments)
        for name in op.constraint_vars:
            uses = sum(
                1
                for constraint in positions
                for node in walk(constraint)
                if isinstance(node, C.VarConstraint) and node.name == name
            )
            if uses == 0:
                findings.append(LintFinding(
                    "dead-constraint-var", "warning", op.qualified_name,
                    f"constraint variable {name!r} is declared but never "
                    "used", loc,
                ))
            elif uses == 1 and not _format_reads_var(op, name):
                findings.append(LintFinding(
                    "dead-constraint-var", "warning", op.qualified_name,
                    f"constraint variable {name!r} is bound in a single "
                    "position and never read (no other position or "
                    "format directive uses it)", loc,
                ))
    return findings


# -- provably equivalent operation signatures -------------------------------

def _signature(op: OpDef):
    args = (*op.operands, *op.results)
    return (
        len(op.operands),
        tuple(a.variadicity for a in args),
        [a.constraint for a in args],
    )


def _check_overlapping_ops(engine, dialect, spans):
    findings = []
    signatures = [(op, *_signature(op)) for op in dialect.operations]
    for index, (op, arity, variadicity, constraints) in enumerate(signatures):
        for other, other_arity, other_variadicity, other_constraints in \
                signatures[index + 1:]:
            if arity != other_arity or variadicity != other_variadicity:
                continue
            if len(constraints) != len(other_constraints):
                continue
            equivalent = all(
                engine.subsumes(a, b) is Ternary.TRUE
                and engine.subsumes(b, a) is Ternary.TRUE
                for a, b in zip(constraints, other_constraints)
            )
            if equivalent:
                findings.append(LintFinding(
                    "overlapping-op-defs", "note", op.qualified_name,
                    "operand/result signature is provably equivalent to "
                    f"{other.qualified_name}: only the name "
                    "distinguishes their instances",
                    spans.get(op.qualified_name, ""),
                ))
    return findings


# -- unused declarations (needs the syntax tree) ----------------------------

def _collect_names(expr, names: set[str]) -> None:
    if isinstance(expr, RefExpr):
        names.add(expr.name)
        for param in expr.params or ():
            _collect_names(param, names)
    elif hasattr(expr, "elements"):
        for element in expr.elements:
            _collect_names(element, names)


def _referenced_names(decl: DialectDecl) -> set[str]:
    names: set[str] = set()
    exprs = []
    for type_decl in (*decl.types, *decl.attributes):
        exprs.extend(p.constraint for p in type_decl.parameters)
    for op in decl.operations:
        exprs.extend(a.constraint for a in (*op.operands, *op.results,
                                            *op.attributes))
        exprs.extend(v.constraint for v in op.constraint_vars)
        for region in op.regions:
            exprs.extend(a.constraint for a in region.arguments)
    for alias in decl.aliases:
        exprs.append(alias.body)
    for constraint_decl in decl.constraints:
        exprs.append(constraint_decl.base)
    for expr in exprs:
        _collect_names(expr, names)
    return names


def _check_unused(decl: DialectDecl):
    findings = []
    used = _referenced_names(decl)
    prefix = decl.name
    for alias in decl.aliases:
        if alias.name not in used:
            findings.append(LintFinding(
                "unused-alias", "warning", f"{prefix}.{alias.name}",
                "alias is never referenced",
            ))
    for constraint_decl in decl.constraints:
        if constraint_decl.name not in used:
            findings.append(LintFinding(
                "unused-constraint", "warning",
                f"{prefix}.{constraint_decl.name}",
                "named constraint is never referenced",
            ))
    for wrapper in decl.param_wrappers:
        if wrapper.name not in used:
            findings.append(LintFinding(
                "unused-wrapper", "warning", f"{prefix}.{wrapper.name}",
                "TypeOrAttrParam is never referenced",
            ))
    return findings
