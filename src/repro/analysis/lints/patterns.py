"""Rewrite-pattern lints: dead patterns and indexing defeaters.

``dead-rewrite-pattern`` covers the structural cases (unknown
operation, operand/result arity the matcher can never satisfy, from
:func:`repro.rewriting.declarative.check_pattern`) and two
constraint-level ones decided by the symbolic engine:

* an operation whose own operand/result constraints are jointly
  unsatisfiable — no instance of it can ever exist;
* a matched value produced by one operation and consumed by another
  whose constraints are provably disjoint — the use-def edge can never
  type-check.

``unindexed-rewrite-pattern`` (a warning, from
:func:`lint_pattern_set`) flags programmatic patterns registered
without an ``op_name``: the root-indexed matcher table cannot bucket
them, so they are offered to *every* operation the driver visits.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.lints.base import LintFinding
from repro.analysis.sat import SatEngine, Ternary, Verdict
from repro.ir.context import Context
from repro.rewriting.declarative import (
    PatternDecl,
    PatternParser,
    check_pattern,
)
from repro.rewriting.pattern import RewritePattern
from repro.utils.diagnostics import DiagnosticError


def lint_patterns(
    context: Context,
    text: str,
    name: str = "<patterns>",
    engine: SatEngine | None = None,
) -> list[LintFinding]:
    """Lint a declarative pattern file without raising on dead patterns."""
    engine = engine or SatEngine()
    try:
        decls = PatternParser(text, name).parse_file()
    except DiagnosticError as err:
        return [LintFinding(
            "dead-rewrite-pattern", "error", name, str(err),
        )]
    findings: list[LintFinding] = []
    for decl in decls:
        findings.extend(lint_pattern(context, decl, engine))
    return findings


def lint_pattern(
    context: Context,
    decl: PatternDecl,
    engine: SatEngine,
) -> list[LintFinding]:
    findings = [
        LintFinding("dead-rewrite-pattern", severity, decl.name, message)
        for severity, message in check_pattern(context, decl)
    ]
    # Constraint-level applicability over the match DAG.  Only ops with
    # an IRDL definition expose constraints; natively registered ops
    # (no ``binding.op_def``) are skipped.
    producers: dict[str, tuple[str, object]] = {}
    for template in decl.match_ops:
        binding = context.get_op_def(template.op_name)
        op_def = getattr(binding, "op_def", None)
        if op_def is None or any(o.is_variadic for o in op_def.operands):
            continue
        if len(template.operand_names) != len(op_def.operands):
            continue  # arity problem already reported
        signature = [
            a.constraint for a in (*op_def.operands, *op_def.results)
        ]
        if engine.sequence_satisfiable(signature) is Verdict.UNSAT:
            findings.append(LintFinding(
                "dead-rewrite-pattern", "error", decl.name,
                f"{template.op_name} has an unsatisfiable signature, so "
                "no instance can ever match",
            ))
            continue
        for value_name, operand in zip(
            template.operand_names, op_def.operands
        ):
            produced = producers.get(value_name)
            if produced is None:
                continue
            producer_name, producer_constraint = produced
            if engine.disjoint(
                producer_constraint, operand.constraint
            ) is Ternary.TRUE:
                findings.append(LintFinding(
                    "dead-rewrite-pattern", "error", decl.name,
                    f"%{value_name} is produced by {producer_name} but "
                    f"can never satisfy the {operand.name!r} operand of "
                    f"{template.op_name}: the constraints are disjoint",
                ))
        for value_name, result in zip(
            template.result_names, op_def.results
        ):
            producers[value_name] = (template.op_name, result.constraint)
    findings.extend(_lint_rewrite_soundness(context, decl, engine, producers))
    if decl.suppressions:
        suppressed = set(decl.suppressions)
        findings = [f for f in findings if f.code not in suppressed]
    return findings


def _lint_rewrite_soundness(
    context: Context,
    decl: PatternDecl,
    engine: SatEngine,
    producers: dict[str, tuple[str, object]],
) -> list[LintFinding]:
    """SAT-backed soundness of the rewrite section.

    The match section guarantees each bound value satisfies its
    producer's result constraint; each replacement op then demands its
    own operand constraints of those values.  Three verdicts:

    * provably *disjoint* demand (or an unsatisfiable replacement
      signature) — no matched instance can produce verifiable IR:
      ``unsound-rewrite-replacement`` (error);
    * demand provably *not implied* (``subsumes`` is FALSE) — some
      matched instances would produce invalid IR:
      ``possibly-unsound-rewrite`` (warning);
    * implied or undecidable — silent, so sound patterns (including the
      whole existing corpus) stay clean.

    The same logic covers the values substituted for the root's
    results: downstream uses held a value satisfying the matched
    producer's constraint and now receive the replacement's.
    """
    findings: list[LintFinding] = []
    #: Constraints the *match* established for the root's results, to
    #: compare against what the rewrite rebinds them to.
    root_constraints = {
        name: producers[name]
        for name in decl.root.result_names
        if name in producers
    }
    available = dict(producers)
    for template in decl.rewrite_ops:
        binding = context.get_op_def(template.op_name)
        op_def = getattr(binding, "op_def", None)
        if op_def is None or any(o.is_variadic for o in op_def.operands):
            continue
        if len(template.operand_names) != len(op_def.operands):
            continue  # arity problem already reported
        signature = [
            a.constraint for a in (*op_def.operands, *op_def.results)
        ]
        if engine.sequence_satisfiable(signature) is Verdict.UNSAT:
            findings.append(LintFinding(
                "unsound-rewrite-replacement", "error", decl.name,
                f"replacement op {template.op_name} has an unsatisfiable "
                "signature: the rewrite can never produce a verifiable op",
            ))
            continue
        for value_name, operand in zip(
            template.operand_names, op_def.operands
        ):
            produced = available.get(value_name)
            if produced is None:
                continue
            producer_name, producer_constraint = produced
            if engine.disjoint(
                operand.constraint, producer_constraint
            ) is Ternary.TRUE:
                findings.append(LintFinding(
                    "unsound-rewrite-replacement", "error", decl.name,
                    f"%{value_name} matched from {producer_name} can never "
                    f"satisfy the {operand.name!r} operand of replacement "
                    f"op {template.op_name}: the constraints are disjoint",
                ))
            elif engine.subsumes(
                operand.constraint, producer_constraint
            ) is Ternary.FALSE:
                findings.append(LintFinding(
                    "possibly-unsound-rewrite", "warning", decl.name,
                    f"the {operand.name!r} operand constraint of "
                    f"replacement op {template.op_name} is not implied by "
                    f"what the match guarantees for %{value_name} (from "
                    f"{producer_name}): some matched instances would "
                    "produce invalid IR",
                ))
        for value_name, result in zip(
            template.result_names, op_def.results
        ):
            available[value_name] = (template.op_name, result.constraint)
            matched = root_constraints.get(value_name)
            if matched is None:
                continue
            producer_name, matched_constraint = matched
            if engine.disjoint(
                result.constraint, matched_constraint
            ) is Ternary.TRUE:
                findings.append(LintFinding(
                    "unsound-rewrite-replacement", "error", decl.name,
                    f"%{value_name} replaces a result of {producer_name} "
                    f"but the {result.name!r} result of {template.op_name} "
                    "can never satisfy the matched constraint: downstream "
                    "uses would hold a value of a disjoint type",
                ))
            elif engine.subsumes(
                matched_constraint, result.constraint
            ) is Ternary.FALSE:
                findings.append(LintFinding(
                    "possibly-unsound-rewrite", "warning", decl.name,
                    f"%{value_name} replaces a result of {producer_name} "
                    f"with the {result.name!r} result of "
                    f"{template.op_name}, whose constraint is not implied "
                    "by the matched one: downstream uses may see an "
                    "unexpected type",
                ))
    return findings


def lint_pattern_set(
    patterns: Iterable[RewritePattern],
    suppress: Iterable[str] = (),
) -> list[LintFinding]:
    """Lint a programmatic pattern set as registered with the driver.

    Emits one ``unindexed-rewrite-pattern`` warning per pattern without
    an ``op_name``.  Suppression composes from the set-wide ``suppress``
    codes and each pattern's own :attr:`RewritePattern.suppressions`
    (the same ``Suppress`` semantics IRDL definitions use).
    """
    suppressed = set(suppress)
    findings: list[LintFinding] = []
    for rewrite_pattern in patterns:
        if rewrite_pattern.op_name is not None:
            continue
        if "unindexed-rewrite-pattern" in suppressed:
            continue
        if "unindexed-rewrite-pattern" in rewrite_pattern.suppressions:
            continue
        findings.append(LintFinding(
            "unindexed-rewrite-pattern", "warning", rewrite_pattern.label,
            "pattern has no op_name: it cannot be root-indexed and is "
            "offered to every operation",
        ))
    return findings
