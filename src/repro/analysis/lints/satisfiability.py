"""Constraint-level lints backed by the symbolic engine.

Definite verdicts come from :class:`repro.analysis.sat.SatEngine`; the
random sampler is consulted only when the engine answers ``UNKNOWN``
(opaque ``PyConstraint`` bodies), and even then only a *missing* witness
is reported — as ``possibly-unsatisfiable``, never as a definite error.
"""

from __future__ import annotations

import random

from repro.analysis.lints.base import LintFinding
from repro.analysis.sat import SatEngine, Ternary, Verdict, walk
from repro.irdl import constraints as C
from repro.irdl.defs import DialectDef
from repro.irdl.sampler import CannotSample, ConstraintSampler
from repro.obs.instrument import OBS

#: Sampler seeds tried before declaring a fallback inconclusive.
_SAMPLER_ATTEMPTS = 8


def sampler_witness(constraint: C.Constraint,
                    attempts: int = _SAMPLER_ATTEMPTS) -> bool:
    """Can the random sampler produce a verified witness?

    Only :class:`CannotSample` counts as "no": any other exception is a
    real sampler crash and propagates (the historical ``except
    Exception: return True`` hid those as false confidence).
    """
    OBS.metrics.counter("analysis.sat.sampler_fallbacks").inc()
    for seed in range(attempts):
        try:
            ConstraintSampler(random.Random(seed)).sample(constraint)
            return True
        except CannotSample:
            continue
    return False


def check_constraint(
    engine: SatEngine,
    constraint: C.Constraint,
    subject: str,
    what: str,
    loc: str = "",
) -> list[LintFinding]:
    """All satisfiability findings for one constraint tree."""
    findings: list[LintFinding] = []
    verdict = engine.satisfiable(constraint)
    if verdict is Verdict.UNSAT:
        findings.append(LintFinding(
            "unsatisfiable-constraint", "error", subject,
            f"no value can satisfy {what}", loc,
        ))
    elif verdict is Verdict.UNKNOWN and not sampler_witness(constraint):
        findings.append(LintFinding(
            "possibly-unsatisfiable", "warning", subject,
            f"cannot decide {what}: the engine answers UNKNOWN and the "
            f"sampler found no witness in {_SAMPLER_ATTEMPTS} attempts",
            loc,
        ))

    seen: set[tuple] = set()
    for node in walk(constraint):
        key = node.structural_key()
        if key in seen:
            continue
        seen.add(key)
        if isinstance(node, C.AndConstraint):
            findings.extend(_check_and(engine, node, subject, what, loc))
        elif isinstance(node, C.NotConstraint):
            findings.extend(_check_not(engine, node, subject, what, loc))
        elif isinstance(node, C.AnyOfConstraint):
            findings.extend(_check_anyof(engine, node, subject, what, loc))
    return findings


def _check_and(engine, node, subject, what, loc):
    if engine.satisfiable(node) is not Verdict.UNSAT:
        return []
    if not all(engine.satisfiable(c) is Verdict.SAT for c in node.conjuncts):
        return []  # some conjunct is itself dead; that gets its own report
    return [LintFinding(
        "contradictory-and", "warning", subject,
        f"in {what}: the And conjuncts are individually satisfiable "
        "but jointly contradictory", loc,
    )]


def _check_not(engine, node, subject, what, loc):
    if engine.satisfiable(node.inner) is not Verdict.UNSAT:
        return []
    return [LintFinding(
        "vacuous-not", "warning", subject,
        f"in {what}: Not of an unsatisfiable constraint accepts "
        "every value", loc,
    )]


def _check_anyof(engine, node, subject, what, loc):
    findings = []
    for index, alt in enumerate(node.alternatives):
        if engine.satisfiable(alt) is Verdict.UNSAT:
            findings.append(LintFinding(
                "unreachable-anyof-alt", "warning", subject,
                f"in {what}: AnyOf alternative {index + 1} is "
                "unsatisfiable", loc,
            ))
            continue
        for earlier_index in range(index):
            earlier = node.alternatives[earlier_index]
            if engine.subsumes(earlier, alt) is Ternary.TRUE:
                findings.append(LintFinding(
                    "unreachable-anyof-alt", "warning", subject,
                    f"in {what}: AnyOf alternative {index + 1} is "
                    f"subsumed by alternative {earlier_index + 1}", loc,
                ))
                break
    return findings


def check_dialect(
    engine: SatEngine, dialect: DialectDef, spans: dict[str, str]
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for op in dialect.operations:
        loc = spans.get(op.qualified_name, "")
        for arg in (*op.operands, *op.results, *op.attributes):
            findings.extend(check_constraint(
                engine, arg.constraint, op.qualified_name,
                f"the constraint of {arg.name!r}", loc,
            ))
    for type_def in (*dialect.types, *dialect.attributes):
        loc = spans.get(type_def.qualified_name, "")
        for param in type_def.parameters:
            findings.extend(check_constraint(
                engine, param.constraint, type_def.qualified_name,
                f"parameter {param.name!r}", loc,
            ))
    return findings
