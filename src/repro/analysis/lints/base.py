"""Lint findings: the shared record, code catalog, and output formats.

Every check in :mod:`repro.analysis.lints` reports
:class:`LintFinding` records.  ``Suppress "code"`` directives in IRDL
source (dialect-wide or per definition) silence matching findings;
:func:`filter_suppressed` applies them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.irdl.defs import DialectDef

#: Ordered from most to least severe; the position feeds the exit code.
SEVERITIES = ("error", "warning", "note")

#: Every code the suite can emit, with a one-line description.
LINT_CODES: dict[str, str] = {
    "unsatisfiable-constraint": (
        "a constraint provably accepts no value (engine verdict UNSAT)"
    ),
    "possibly-unsatisfiable": (
        "the engine could not decide and the sampler found no witness"
    ),
    "contradictory-and": (
        "an And whose conjuncts are individually satisfiable but "
        "jointly contradictory"
    ),
    "vacuous-not": (
        "a Not whose inner constraint is unsatisfiable, so the negation "
        "accepts everything"
    ),
    "unreachable-anyof-alt": (
        "an AnyOf alternative that is unsatisfiable or subsumed by an "
        "earlier alternative"
    ),
    "dead-constraint-var": (
        "a constraint variable that is never used, or bound in a single "
        "position and never read"
    ),
    "overlapping-op-defs": (
        "two operations whose operand/result signatures are provably "
        "equivalent"
    ),
    "ambiguous-format": (
        "a declarative format whose parse is not uniquely determined"
    ),
    "dead-rewrite-pattern": (
        "a declarative rewrite pattern that can never apply"
    ),
    "unindexed-rewrite-pattern": (
        "a rewrite pattern registered without an op_name: it defeats "
        "root indexing and is offered to every operation"
    ),
    "unsound-rewrite-replacement": (
        "a rewrite whose replacement op provably cannot verify: a "
        "replacement constraint is disjoint from what the match "
        "guarantees, or jointly unsatisfiable"
    ),
    "possibly-unsound-rewrite": (
        "a rewrite whose replacement constraints are not implied by the "
        "match constraints: some matched instances would produce "
        "invalid IR"
    ),
    "segment-attribute-required": (
        "several variadic segments: instances need a segment-sizes "
        "attribute"
    ),
    "duplicate-name": "two definitions of one kind share a name",
    "missing-summary": "a public definition has no Summary documentation",
    "unused-alias": "an alias nothing references",
    "unused-constraint": "a named constraint nothing references",
    "unused-wrapper": "a TypeOrAttrParam nothing references",
}


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    code: str
    severity: str  # "error" | "warning" | "note"
    subject: str   # qualified name of the definition
    message: str
    loc: str = ""  # "file:line:col" when the syntax tree is available

    def render(self) -> str:
        text = f"{self.severity}[{self.code}] {self.subject}: {self.message}"
        if self.loc:
            text += f" ({self.loc})"
        return text

    def to_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "loc": self.loc,
        }


def render_findings(findings: list[LintFinding]) -> str:
    if not findings:
        return "no findings\n"
    return "\n".join(f.render() for f in findings) + "\n"


def findings_to_json(findings: list[LintFinding]) -> str:
    """Stable machine-readable findings (a JSON array of objects)."""
    return json.dumps([f.to_dict() for f in findings], indent=2) + "\n"


def exit_code(findings: list[LintFinding]) -> int:
    """0 = clean (at most notes), 1 = warnings only, 2 = any error."""
    if any(f.severity == "error" for f in findings):
        return 2
    if any(f.severity == "warning" for f in findings):
        return 1
    return 0


def filter_suppressed(
    findings: list[LintFinding], dialect: DialectDef
) -> list[LintFinding]:
    """Drop findings silenced by ``Suppress`` annotations."""
    per_subject: dict[str, set[str]] = {}
    for item in (*dialect.types, *dialect.attributes, *dialect.operations):
        if item.suppressions:
            per_subject[item.qualified_name] = set(item.suppressions)
    dialect_wide = set(dialect.suppressions)
    if not dialect_wide and not per_subject:
        return findings
    kept = []
    for finding in findings:
        if finding.code in dialect_wide:
            continue
        if finding.code in per_subject.get(finding.subject, ()):
            continue
        kept.append(finding)
    return kept


def spans_of(decl) -> dict[str, str]:
    """``qualified_name -> "file:line:col"`` from a dialect syntax tree."""
    if decl is None:
        return {}
    spans: dict[str, str] = {}
    for item in (*decl.types, *decl.attributes, *decl.operations):
        if item.span is not None:
            spans[f"{decl.name}.{item.name}"] = str(item.span)
    return spans
