"""Declarative-format lints: parses that are not uniquely determined.

Both operation assembly formats (§4.7 ``Format`` on operations) and
type/attribute parameter formats are scanned for the ambiguity patterns
:func:`repro.irdl.format.find_format_ambiguities` can prove.
"""

from __future__ import annotations

from repro.analysis.lints.base import LintFinding
from repro.irdl.ast import DialectDecl
from repro.irdl.defs import DialectDef
from repro.irdl.format import (
    FormatError,
    TypeFormatProgram,
    _scan_directives,
    find_format_ambiguities,
)


def check_dialect(
    dialect: DialectDef,
    decl: DialectDecl | None,
    spans: dict[str, str],
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for op in dialect.operations:
        if op.format is None:
            continue
        try:
            directives = _scan_directives(op)
        except FormatError:
            continue  # registration already rejects malformed formats
        for _, reason in find_format_ambiguities(directives):
            findings.append(LintFinding(
                "ambiguous-format", "warning", op.qualified_name,
                reason, spans.get(op.qualified_name, ""),
            ))
    if decl is not None:
        for type_decl in (*decl.types, *decl.attributes):
            if type_decl.format is None:
                continue
            qualified = f"{decl.name}.{type_decl.name}"
            names = tuple(p.name for p in type_decl.parameters)
            try:
                program = TypeFormatProgram(
                    qualified, names, type_decl.format
                )
            except FormatError:
                continue
            for _, reason in find_format_ambiguities(
                list(program.directives)
            ):
                findings.append(LintFinding(
                    "ambiguous-format", "warning", qualified,
                    reason, spans.get(qualified, ""),
                ))
    return findings
