"""The IRDL lint suite, built on the symbolic constraint engine.

§4 motivates DSLs because definitions "can be analyzed for correctness
and tool support"; this package is that analysis.  Checks are grouped by
layer — :mod:`satisfiability` (constraint trees, via
:class:`repro.analysis.sat.SatEngine`), :mod:`structure` (naming,
documentation, dead variables, equivalent signatures),
:mod:`formats` (ambiguous declarative formats), and :mod:`patterns`
(rewrite patterns that can never apply).

``Suppress "code"`` directives in IRDL source silence findings,
dialect-wide or per definition.  :data:`base.LINT_CODES` catalogs every
code; ``docs/linting.md`` documents them with triggering examples.
"""

from __future__ import annotations

from repro.analysis.lints import formats, patterns, satisfiability, structure
from repro.analysis.lints.base import (
    LINT_CODES,
    LintFinding,
    SEVERITIES,
    exit_code,
    filter_suppressed,
    findings_to_json,
    render_findings,
    spans_of,
)
from repro.analysis.lints.patterns import lint_pattern_set, lint_patterns
from repro.analysis.sat import SatEngine
from repro.irdl.ast import DialectDecl
from repro.irdl.defs import DialectDef

__all__ = [
    "LINT_CODES",
    "LintFinding",
    "SEVERITIES",
    "exit_code",
    "filter_suppressed",
    "findings_to_json",
    "lint_dialect",
    "lint_pattern_set",
    "lint_patterns",
    "render_findings",
]

_SEVERITY_ORDER = {name: index for index, name in enumerate(SEVERITIES)}


def lint_dialect(
    dialect: DialectDef,
    decl: DialectDecl | None = None,
    *,
    engine: SatEngine | None = None,
) -> list[LintFinding]:
    """Lint one resolved dialect (optionally with its syntax tree).

    Findings suppressed by ``Suppress`` annotations are dropped;
    the rest are ordered by severity, then by subject.
    """
    engine = engine or SatEngine()
    spans = spans_of(decl)
    findings: list[LintFinding] = []
    findings.extend(satisfiability.check_dialect(engine, dialect, spans))
    findings.extend(structure.check_dialect(engine, dialect, decl, spans))
    findings.extend(formats.check_dialect(dialect, decl, spans))
    findings = filter_suppressed(findings, dialect)
    findings.sort(key=lambda f: (_SEVERITY_ORDER.get(f.severity, 99),
                                 f.subject, f.code))
    return findings
