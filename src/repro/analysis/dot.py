"""Graphviz (DOT) export of IR structure — visual IR tooling.

Two views, both plain-text DOT so they render anywhere:

* :func:`cfg_to_dot` — the control-flow graph of a region: one node per
  block (labelled with its ops), edges along terminator successors;
* :func:`use_def_to_dot` — the dataflow graph of a block or operation
  tree: one node per operation, edges from producers to consumers.
"""

from __future__ import annotations

import io

from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.value import OpResult


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(region: Region, name: str = "cfg") -> str:
    """The region's CFG as a DOT digraph."""
    out = io.StringIO()
    out.write(f'digraph "{_escape(name)}" {{\n')
    out.write("  node [shape=box, fontname=monospace];\n")
    ids = {id(block): f"bb{i}" for i, block in enumerate(region.blocks)}
    for block in region.blocks:
        label_lines = [f"^{ids[id(block)]}"]
        if block.args:
            args = ", ".join(f"arg{i}: {arg.type}" for i, arg in enumerate(block.args))
            label_lines[0] += f"({args})"
        label_lines.extend(op.name for op in block.ops)
        label = _escape("\\l".join(label_lines) + "\\l")
        out.write(f'  {ids[id(block)]} [label="{label}"];\n')
    for block in region.blocks:
        last = block.last_op
        if last is None:
            continue
        for successor in last.successors:
            if id(successor) in ids:
                out.write(f"  {ids[id(block)]} -> {ids[id(successor)]};\n")
    out.write("}\n")
    return out.getvalue()


def use_def_to_dot(root: Operation, name: str = "dataflow") -> str:
    """The use-def graph under ``root`` as a DOT digraph.

    Nodes are operations; an edge ``a -> b`` means an operand of ``b`` is
    a result of ``a``.  Block arguments appear as ellipse nodes.
    """
    out = io.StringIO()
    out.write(f'digraph "{_escape(name)}" {{\n')
    out.write("  node [shape=box, fontname=monospace];\n")
    op_ids: dict[int, str] = {}
    ops = [op for op in root.walk(include_self=False)] or [root]
    for index, op in enumerate(ops):
        op_ids[id(op)] = f"op{index}"
        out.write(f'  op{index} [label="{_escape(op.name)}"];\n')
    arg_ids: dict[int, str] = {}
    for index, op in enumerate(ops):
        for operand_index, operand in enumerate(op.operands):
            if isinstance(operand, OpResult) and id(operand.op) in op_ids:
                out.write(
                    f"  {op_ids[id(operand.op)]} -> {op_ids[id(op)]} "
                    f'[label="{operand.index}->{operand_index}"];\n'
                )
            elif not isinstance(operand, OpResult):
                key = id(operand)
                if key not in arg_ids:
                    arg_ids[key] = f"arg{len(arg_ids)}"
                    out.write(
                        f'  {arg_ids[key]} [shape=ellipse, '
                        f'label="{_escape(str(operand.type))}"];\n'
                    )
                out.write(f"  {arg_ids[key]} -> {op_ids[id(op)]};\n")
    out.write("}\n")
    return out.getvalue()
