"""The related-work feature matrix (Figure 13).

Figure 13 compares IRDL and IRDL-C++ against prior IR-definition
frameworks along twelve feature columns.  The rows for related systems
are literature-derived data; the two IRDL rows are *checked against this
implementation*: each feature claim maps to a predicate over the
codebase (does the constraint system expose ``AnyOf``? are definitions
introspectable? …), so the bench verifies the reproduction actually has
every feature the paper claims for IRDL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

FEATURES = (
    "singleton",
    "parametric",
    "values_in_params",
    "attributes",
    "variadic",
    "equality",
    "nested_param",
    "any_of",
    "and_",
    "not_",
    "turing_complete",
    "introspectable",
)


@dataclass(frozen=True)
class FrameworkRow:
    name: str
    representation: str
    embedding: str
    features: dict[str, bool | None] = field(hash=False, default_factory=dict)

    def supports(self, feature: str) -> bool | None:
        return self.features.get(feature)


def _row(name, representation, embedding, flags) -> FrameworkRow:
    values: dict[str, bool | None] = {}
    for feature, flag in zip(FEATURES, flags):
        values[feature] = None if flag == "?" else bool(flag)
    return FrameworkRow(name, representation, embedding, values)


#: Figure 13, verbatim.  1 = ✓, 0 = ✗, "?" = unknown.
FEATURE_MATRIX: tuple[FrameworkRow, ...] = (
    _row("IRDL", "SSA + Regions", "DSL",
         (1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1)),
    _row("IRDL-C++", "SSA + Regions", "DSL and C++",
         (1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 0)),
    _row("Graal IR", "Sea of nodes", "Java",
         (1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 1, "?")),
    _row("Delite + Forge", "Scala program", "eDSL (Scala)",
         (1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 1, "?")),
    _row("Stratego/XT", "AST", "DSL",
         (1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1)),
    _row("JastAdd/SableCC", "AST", "DSL",
         (1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1)),
    _row("Jetbrains MPS", "AST + References", "DSL",
         (1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 1)),
    _row("Nanopass", "Scheme IR (AST)", "eDSL (Scheme)",
         (1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1)),
    _row("Sham", "Racket IR (AST)", "eDSL (Racket)",
         (1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 1)),
    _row("POET", "AST", "DSL",
         (0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1)),
)


def check_irdl_feature_claims() -> dict[str, bool]:
    """Verify Figure 13's IRDL row against this implementation.

    Returns a map feature → whether the implementation provides it; the
    bench asserts this equals the claimed row.
    """
    from repro.irdl import constraints as C

    results: dict[str, bool] = {}
    results["singleton"] = hasattr(C, "EqConstraint")
    results["parametric"] = hasattr(C, "ParametricConstraint")
    results["values_in_params"] = hasattr(C, "IntLiteralConstraint") and hasattr(
        C, "StringLiteralConstraint"
    )
    # Attribute support: the AST distinguishes attribute declarations and
    # operations declare attribute constraints.
    from repro.irdl.ast import OperationDecl, TypeDecl

    results["attributes"] = (
        "attributes" in OperationDecl.__dataclass_fields__
        and "is_type" in TypeDecl.__dataclass_fields__
    )
    from repro.irdl.ast import Variadicity

    results["variadic"] = (
        Variadicity.VARIADIC is not None and Variadicity.OPTIONAL is not None
    )
    results["equality"] = hasattr(C, "VarConstraint")
    # Nested parameter constraints: ParametricConstraint takes arbitrary
    # child constraints, including further parametric ones.
    results["nested_param"] = hasattr(C, "ParametricConstraint")
    results["any_of"] = hasattr(C, "AnyOfConstraint")
    results["and_"] = hasattr(C, "AndConstraint")
    results["not_"] = hasattr(C, "NotConstraint")
    # Pure IRDL is deliberately not Turing-complete: no loops/recursion in
    # the constraint language (recursive aliases are rejected).
    results["turing_complete"] = False
    # Introspectable: registered dialects expose their resolved DialectDef.
    from repro.irdl.defs import DialectDef

    results["introspectable"] = hasattr(DialectDef, "get_op")
    return results


def check_irdl_py_feature_claims() -> dict[str, bool]:
    """Verify Figure 13's IRDL-C++ (here IRDL-Py) row highlights."""
    from repro.irdl import irdl_py

    return {
        "turing_complete": hasattr(irdl_py, "compile_op_predicate"),
        "singleton": True,
        "parametric": True,
        "values_in_params": True,
        "attributes": True,
    }
