"""Statistics over IR *modules* (the "IR Statistics" box of Figure 1).

Where :mod:`repro.analysis.stats` measures dialect *definitions*, this
module measures concrete programs: operation frequencies, dialect mix,
region nesting depth, SSA value fan-out, and block/CFG shape.  Useful
for corpus characterization, compiler-pipeline dashboards, and deciding
which abstractions a new dialect should provide.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir.operation import Operation


@dataclass
class ModuleStats:
    """Aggregate statistics for one operation tree."""

    num_ops: int = 0
    num_blocks: int = 0
    num_regions: int = 0
    num_values: int = 0          # op results + block arguments
    num_uses: int = 0            # operand slots
    max_region_depth: int = 0
    op_frequency: Counter = field(default_factory=Counter)
    dialect_frequency: Counter = field(default_factory=Counter)
    value_fanout: Counter = field(default_factory=Counter)

    @property
    def average_fanout(self) -> float:
        """Mean number of uses per SSA value."""
        if not self.num_values:
            return 0.0
        return self.num_uses / self.num_values

    def most_common_ops(self, count: int = 5) -> list[tuple[str, int]]:
        return self.op_frequency.most_common(count)

    def dialect_mix(self) -> dict[str, float]:
        """Fraction of operations per dialect."""
        if not self.num_ops:
            return {}
        return {
            name: occurrences / self.num_ops
            for name, occurrences in self.dialect_frequency.items()
        }


def analyze_module(root: Operation) -> ModuleStats:
    """Compute :class:`ModuleStats` for an operation tree."""
    stats = ModuleStats()
    _walk(root, stats, depth=0)
    return stats


def _walk(op: Operation, stats: ModuleStats, depth: int) -> None:
    stats.num_ops += 1
    stats.op_frequency[op.name] += 1
    stats.dialect_frequency[op.dialect_name] += 1
    stats.num_uses += len(op.operands)
    for result in op.results:
        stats.num_values += 1
        stats.value_fanout[len(result.uses)] += 1
    for region in op.regions:
        stats.num_regions += 1
        stats.max_region_depth = max(stats.max_region_depth, depth + 1)
        for block in region.blocks:
            stats.num_blocks += 1
            for argument in block.args:
                stats.num_values += 1
                stats.value_fanout[len(argument.uses)] += 1
            for nested in block.ops:
                _walk(nested, stats, depth + 1)


def render_module_stats(stats: ModuleStats, title: str = "module") -> str:
    """A compact text report for dashboards and CLI output."""
    lines = [f"IR statistics for {title}:"]
    lines.append(
        f"  {stats.num_ops} ops, {stats.num_blocks} blocks, "
        f"{stats.num_regions} regions (max depth {stats.max_region_depth})"
    )
    lines.append(
        f"  {stats.num_values} SSA values, {stats.num_uses} uses "
        f"(avg fan-out {stats.average_fanout:.2f})"
    )
    mix = ", ".join(
        f"{name} {100 * share:.0f}%"
        for name, share in sorted(stats.dialect_mix().items(),
                                  key=lambda kv: -kv[1])
    )
    lines.append(f"  dialect mix: {mix}")
    for name, occurrences in stats.most_common_ops():
        lines.append(f"    {name:<32} {occurrences}")
    return "\n".join(lines) + "\n"
