"""Expressiveness analysis: what needs IRDL-Py and what stays in IRDL.

Implements the classification behind §6.3 and §6.4:

* Figure 8 — which parameter kinds types and attributes use;
* Figures 9/10 — how many type/attribute definitions need IRDL-Py for
  their parameters, and how many need an IRDL-Py verifier;
* Figure 11 — how many operations can express their local constraints
  purely in IRDL, and how many need an IRDL-Py (global) verifier;
* Figure 12 — the kinds of local constraints that fall outside IRDL.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.irdl import constraints as C
from repro.irdl.defs import DialectDef, OpDef, TypeDef
from repro.irdl.resolver import constraint_uses_py

#: The three categories of non-IRDL local constraints found in MLIR
#: (Figure 12), plus a catch-all.
CONSTRAINT_KINDS = ("integer inequality", "stride check", "struct opacity", "other")

_COMPARISON_RE = re.compile(r"<=|>=|<|>")


def classify_py_constraint(name: str, code: str) -> str:
    """Classify a non-IRDL local constraint into a Figure 12 category.

    The classification inspects the constraint's name and embedded code:
    stride checks mention strides, struct-opacity checks mention opacity,
    and the remaining comparisons over integers are integer inequalities.
    """
    haystack = f"{name} {code}".lower()
    if "stride" in haystack:
        return "stride check"
    if "opaque" in haystack or "opacity" in haystack:
        return "struct opacity"
    if _COMPARISON_RE.search(code):
        return "integer inequality"
    return "other"


def _collect_py_constraints(constraint: C.Constraint) -> list[C.PyConstraint]:
    """All PyConstraint nodes inside a resolved constraint."""
    found: list[C.PyConstraint] = []
    stack = [constraint]
    while stack:
        current = stack.pop()
        if isinstance(current, C.PyConstraint):
            found.append(current)
            stack.append(current.base)
        elif isinstance(current, C.AnyOfConstraint):
            stack.extend(current.alternatives)
        elif isinstance(current, C.AndConstraint):
            stack.extend(current.conjuncts)
        elif isinstance(current, C.NotConstraint):
            stack.append(current.inner)
        elif isinstance(current, C.VarConstraint):
            stack.append(current.base)
        elif isinstance(current, C.ParametricConstraint):
            stack.extend(current.param_constraints)
        elif isinstance(current, (C.ArrayAnyConstraint,)):
            stack.append(current.element)
        elif isinstance(current, C.ArrayExactConstraint):
            stack.extend(current.elements)
    return found


@dataclass
class TypeAttrExpressiveness:
    """Figure 9 (types) or Figure 10 (attributes), one dialect row."""

    dialect: str
    total: int = 0
    py_params: int = 0     # definitions whose parameters need IRDL-Py
    py_verifier: int = 0   # definitions with an IRDL-Py verifier

    @property
    def irdl_params(self) -> int:
        return self.total - self.py_params

    @property
    def irdl_verifier(self) -> int:
        return self.total - self.py_verifier


@dataclass
class OpExpressiveness:
    """Figure 11, one dialect row."""

    dialect: str
    total: int = 0
    py_local: int = 0      # ops with a non-IRDL local constraint (Fig 11a)
    py_verifier: int = 0   # ops with an IRDL-Py global verifier (Fig 11b)

    @property
    def irdl_local(self) -> int:
        return self.total - self.py_local

    @property
    def irdl_verifier(self) -> int:
        return self.total - self.py_verifier


@dataclass
class ExpressivenessReport:
    """The complete §6.3/§6.4 analysis over a corpus."""

    type_rows: list[TypeAttrExpressiveness] = field(default_factory=list)
    attr_rows: list[TypeAttrExpressiveness] = field(default_factory=list)
    op_rows: list[OpExpressiveness] = field(default_factory=list)
    type_param_kinds: Counter = field(default_factory=Counter)
    attr_param_kinds: Counter = field(default_factory=Counter)
    local_constraint_kinds: Counter = field(default_factory=Counter)

    # -- totals ----------------------------------------------------------

    @property
    def total_types(self) -> int:
        return sum(r.total for r in self.type_rows)

    @property
    def total_attrs(self) -> int:
        return sum(r.total for r in self.attr_rows)

    @property
    def total_ops(self) -> int:
        return sum(r.total for r in self.op_rows)

    # -- headline fractions (the numbers quoted in the paper) -------------

    def types_pure_irdl_params_fraction(self) -> float:
        """Fig. 9a caption: 97% of type defs use only IRDL parameters."""
        if not self.total_types:
            return 1.0
        return sum(r.irdl_params for r in self.type_rows) / self.total_types

    def types_py_verifier_fraction(self) -> float:
        """Fig. 9b caption: 16% of types need an extra verifier."""
        if not self.total_types:
            return 0.0
        return sum(r.py_verifier for r in self.type_rows) / self.total_types

    def attrs_pure_irdl_params_fraction(self) -> float:
        """Fig. 10a caption: 77% of attr defs use only IRDL parameters."""
        if not self.total_attrs:
            return 1.0
        return sum(r.irdl_params for r in self.attr_rows) / self.total_attrs

    def attrs_py_verifier_fraction(self) -> float:
        """Fig. 10b caption: 20% of attributes need an extra verifier."""
        if not self.total_attrs:
            return 0.0
        return sum(r.py_verifier for r in self.attr_rows) / self.total_attrs

    def ops_pure_irdl_local_fraction(self) -> float:
        """Fig. 11a: 97% of ops express local constraints in IRDL."""
        if not self.total_ops:
            return 1.0
        return sum(r.irdl_local for r in self.op_rows) / self.total_ops

    def ops_py_verifier_fraction(self) -> float:
        """Fig. 11b: 30% of ops need an IRDL-Py global verifier."""
        if not self.total_ops:
            return 0.0
        return sum(r.py_verifier for r in self.op_rows) / self.total_ops

    def dialects_fully_irdl_local(self) -> int:
        """§6.4: 20 of 28 dialects express all local constraints in IRDL."""
        return sum(1 for r in self.op_rows if r.py_local == 0)

    def domain_specific_param_fraction(self) -> float:
        """Fig. 8 caption: only ~3% of parameters are domain-specific."""
        builtin_kinds = {
            "attr/type", "integer", "enum", "float", "string",
            "location", "type id", "array",
        }
        total = sum(self.type_param_kinds.values()) + sum(
            self.attr_param_kinds.values()
        )
        if not total:
            return 0.0
        domain = sum(
            count
            for kind, count in (self.type_param_kinds + self.attr_param_kinds).items()
            if kind not in builtin_kinds
        )
        return domain / total


def analyze_expressiveness(
    dialect_defs: Iterable[DialectDef],
) -> ExpressivenessReport:
    """Run the full §6.3/§6.4 analysis over resolved dialect definitions."""
    report = ExpressivenessReport()
    for dialect in dialect_defs:
        _analyze_type_attrs(dialect, dialect.types, report.type_rows,
                            report.type_param_kinds, report)
        _analyze_type_attrs(dialect, dialect.attributes, report.attr_rows,
                            report.attr_param_kinds, report)
        _analyze_ops(dialect, report)
    return report


def _analyze_type_attrs(
    dialect: DialectDef,
    defs: list[TypeDef],
    rows: list[TypeAttrExpressiveness],
    kind_counter: Counter,
    report: ExpressivenessReport,
) -> None:
    if not defs:
        return
    row = TypeAttrExpressiveness(dialect.name, total=len(defs))
    for type_def in defs:
        if type_def.needs_py_for_parameters:
            row.py_params += 1
        if type_def.needs_py_verifier:
            row.py_verifier += 1
        for param in type_def.parameters:
            kind_counter[param.kind] += 1
    rows.append(row)


def _analyze_ops(dialect: DialectDef, report: ExpressivenessReport) -> None:
    if not dialect.operations:
        return
    row = OpExpressiveness(dialect.name, total=len(dialect.operations))
    for op in dialect.operations:
        if op.has_py_local_constraint:
            row.py_local += 1
            for arg in (*op.operands, *op.results, *op.attributes):
                for py_constraint in _collect_py_constraints(arg.constraint):
                    report.local_constraint_kinds[
                        classify_py_constraint(
                            py_constraint.name, py_constraint.code
                        )
                    ] += 1
        if op.has_py_verifier:
            row.py_verifier += 1
    report.op_rows.append(row)
