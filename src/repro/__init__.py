"""IRDL: an IR definition language for SSA compilers — Python reproduction.

A from-scratch implementation of the PLDI 2022 paper's system:

* :mod:`repro.ir` — the SSA+regions IR substrate (values, operations,
  blocks, regions, dialect registry);
* :mod:`repro.builtin` — natively implemented builtin/func/arith/cf
  dialects;
* :mod:`repro.textir` — the MLIR-like textual syntax (parser/printer);
* :mod:`repro.irdl` — the IRDL language itself: parsing, constraint
  resolution, verifier generation, declarative formats, runtime dialect
  instantiation, and the IRDL-Py escape hatch (≙ IRDL-C++);
* :mod:`repro.rewriting` — pattern rewriting for dynamic compilation flows;
* :mod:`repro.analysis` — the §6 meta-analyses over dialect definitions;
* :mod:`repro.corpus` — the 28-dialect MLIR corpus expressed in IRDL.

Quickstart::

    from repro.builtin import default_context
    from repro.irdl import register_irdl
    from repro.textir import parse_module, print_op

    ctx = default_context()
    register_irdl(ctx, open("cmath.irdl").read())
    module = parse_module(ctx, "...textual IR...")
    module.verify()
    print(print_op(module))
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
