"""Source-file bookkeeping shared by the IRDL and textual-IR frontends.

Both parsers in this project (the IRDL definition-language parser and the
MLIR-like textual IR parser) report errors against precise source spans.
This module provides the small amount of machinery needed for that:
a :class:`SourceFile` wrapper that memoizes line offsets, and immutable
:class:`Position` / :class:`Span` records.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """A 1-based line/column position in a source file."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open byte range ``[start, end)`` inside a source file."""

    start: int
    end: int
    source: "SourceFile"

    @property
    def text(self) -> str:
        return self.source.contents[self.start : self.end]

    @property
    def start_position(self) -> Position:
        return self.source.position_of(self.start)

    @property
    def end_position(self) -> Position:
        return self.source.position_of(self.end)

    def until(self, other: "Span") -> "Span":
        """The span covering this span up to the end of ``other``."""
        return Span(self.start, other.end, self.source)

    def __str__(self) -> str:
        return f"{self.source.name}:{self.start_position}"


@dataclass
class SourceFile:
    """A named piece of source text with cached line-offset lookup."""

    contents: str
    name: str = "<input>"
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for index, char in enumerate(self.contents):
            if char == "\n":
                starts.append(index + 1)
        self._line_starts = starts

    def position_of(self, offset: int) -> Position:
        """Convert a byte offset into a 1-based line/column position."""
        offset = max(0, min(offset, len(self.contents)))
        line_index = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_index] + 1
        return Position(line_index + 1, column)

    def line_text(self, line: int) -> str:
        """The text of a 1-based line, without its trailing newline."""
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.contents.find("\n", start)
        if end == -1:
            end = len(self.contents)
        return self.contents[start:end]

    def span(self, start: int, end: int) -> Span:
        return Span(start, end, self)
