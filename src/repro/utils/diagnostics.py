"""Diagnostics carrying source spans, rendered in a compiler-like style.

A :class:`Diagnostic` points at a :class:`~repro.utils.source.Span` and
renders a caret snippet, e.g.::

    cmath.irdl:4:13: error: unknown type '!f33'
        Parameters (elementType: !f33)
                                 ^~~~
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.utils.source import Span

if TYPE_CHECKING:
    from repro.ir.location import Location


@dataclass
class Diagnostic:
    """A single error or note attached to an optional source span.

    When no span is available a :class:`~repro.ir.location.Location`
    may stand in: the header then names the location (no caret snippet,
    since the original source text is not at hand).
    """

    message: str
    span: Span | None = None
    severity: str = "error"
    location: "Location | Any | None" = None

    def render(self) -> str:
        if self.span is None:
            if self.location is not None and not getattr(
                self.location, "is_unknown", True
            ):
                return f"{self.location}: {self.severity}: {self.message}"
            return f"{self.severity}: {self.message}"
        start = self.span.start_position
        header = f"{self.span.source.name}:{start}: {self.severity}: {self.message}"
        line = self.span.source.line_text(start.line)
        if not line:
            return header
        end = self.span.end_position
        if end.line == start.line:
            width = end.column - start.column
        else:
            # Multi-line span: underline from the caret to the end of the
            # first line (the viewer can't see the later lines anyway).
            width = len(line) - start.column + 1
        width = max(1, width)
        caret = " " * (start.column - 1) + "^" + "~" * (width - 1)
        return f"{header}\n{line}\n{caret}"

    def __str__(self) -> str:
        return self.render()


class DiagnosticError(Exception):
    """An exception wrapping one or more diagnostics."""

    def __init__(self, *diagnostics: Diagnostic):
        self.diagnostics = list(diagnostics)
        super().__init__("\n".join(d.render() for d in self.diagnostics))

    @classmethod
    def at(cls, message: str, span: Span | None = None,
           location: "Location | None" = None) -> "DiagnosticError":
        return cls(Diagnostic(message, span, location=location))
