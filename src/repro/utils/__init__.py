"""Shared utilities: source locations, diagnostics, and text scanning."""

from repro.utils.source import Position, SourceFile, Span
from repro.utils.diagnostics import Diagnostic, DiagnosticError

__all__ = ["Position", "SourceFile", "Span", "Diagnostic", "DiagnosticError"]
