"""The 28-dialect MLIR corpus expressed in IRDL (§6, Table 1).

Two corpus flavours:

* the **hand-written corpus** — every dialect's characteristic
  operations, all 62 types, and all 30 attributes, loaded verbatim from
  the ``dialects/*.irdl`` files;
* the **full corpus** — the hand-written corpus extended by the
  deterministic scaling model in :mod:`repro.corpus.generator` to the
  paper's 942-operation population (see DESIGN.md, substitution 3).

Both register through the complete IRDL pipeline (parser → resolver →
instantiation) into a fresh context whose root dialect is the corpus's
own IRDL-defined ``builtin``.
"""

from __future__ import annotations

import os

from repro.corpus import paper_data
from repro.corpus.generator import extend_dialect
from repro.corpus.synth import (
    BENCH_DIALECT_SOURCE,
    bench_dialect_source,
    register_bench_dialect,
    synthesize_module,
)
from repro.ir.context import Context
from repro.irdl.ast import DialectDecl
from repro.irdl.defs import DialectDef
from repro.irdl.instantiate import register_dialect
from repro.irdl.parser import parse_irdl

#: Registration order: builtin first (every dialect references it), then
#: dependency order (pdl before pdl_interp).
CORPUS_ORDER = (
    "builtin", "std", "arith", "math", "complex", "scf", "affine",
    "memref", "tensor", "linalg", "sparse_tensor", "vector", "quant",
    "shape", "emitc", "async", "pdl", "pdl_interp", "gpu", "nvvm",
    "rocdl", "llvm", "spv", "tosa", "amx", "arm_neon", "arm_sve",
    "x86vector",
)

_DIALECT_DIR = os.path.join(os.path.dirname(__file__), "dialects")


def dialect_source_path(name: str) -> str:
    """Filesystem path of one dialect's ``.irdl`` source."""
    return os.path.join(_DIALECT_DIR, f"{name}.irdl")


def dialect_source(name: str) -> str:
    """The IRDL source text of one corpus dialect."""
    with open(dialect_source_path(name), encoding="utf-8") as handle:
        return handle.read()


def parse_corpus_decl(name: str) -> DialectDecl:
    """Parse one corpus dialect's hand-written declaration."""
    decls = parse_irdl(dialect_source(name), f"{name}.irdl")
    if len(decls) != 1 or decls[0].name != name:
        raise ValueError(f"{name}.irdl must define exactly the {name!r} dialect")
    return decls[0]


def load_corpus(
    context: Context | None = None, scale: bool = True
) -> tuple[Context, list[DialectDef]]:
    """Load the 28-dialect corpus into a context.

    With ``scale=True`` (the default), each dialect is extended to the
    paper's per-dialect operation population before registration.
    """
    if context is None:
        context = Context()
    defs: list[DialectDef] = []
    for name in CORPUS_ORDER:
        decl = parse_corpus_decl(name)
        if scale:
            decl = extend_dialect(decl)
        defs.append(register_dialect(context, decl))
    return context, defs


def load_hand_corpus(
    context: Context | None = None,
) -> tuple[Context, list[DialectDef]]:
    """Load only the hand-written corpus (no synthesized scaling)."""
    return load_corpus(context, scale=False)


def cmath_source() -> str:
    """The running-example dialect of Listings 1/3/5/6."""
    return dialect_source("cmath")


__all__ = [
    "CORPUS_ORDER",
    "paper_data",
    "dialect_source",
    "dialect_source_path",
    "parse_corpus_decl",
    "load_corpus",
    "load_hand_corpus",
    "cmath_source",
    "BENCH_DIALECT_SOURCE",
    "bench_dialect_source",
    "register_bench_dialect",
    "synthesize_module",
]
