"""Ground-truth numbers from the paper's evaluation (§6, Figures 3–12).

Everything the corpus generator aims at, and everything the benchmark
harness compares against, lives here — a single source of truth for
"what the paper reports".  Exact numbers come from captions and body
text; per-dialect figures without printed values are reconstructed from
the bar charts (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

#: Table 1 — the 28 dialects and their domains, verbatim.
TABLE1: dict[str, str] = {
    "affine": "Affine loops and memory operations",
    "amx": "Intel's advanced matrix instruction set",
    "arith": "Arithmetic operations on integers and floats",
    "arm_sve": "ARM's scalable vector instruction set",
    "arm_neon": "ARM's SIMD architecture extension",
    "async": "Asynchronous execution",
    "builtin": "MLIR's builtin intermediate representation",
    "complex": "Complex arithmetic",
    "emitc": "Printable C code",
    "gpu": "GPU abstraction",
    "linalg": "High-level linear algebra operations",
    "llvm": "LLVM's intermediate representation in MLIR",
    "math": "Scalar arithmetic beyond simple operations",
    "memref": "Multi-dimensional memory references",
    "nvvm": "LLVM's IR for GPU compute kernels",
    "pdl": "Rewrite pattern description language",
    "pdl_interp": "The IR for a PDL interpreter",
    "quant": "Quantization",
    "rocdl": "AMD's IR for GPU compute kernels",
    "scf": "Structured control flow, e.g. 'for' and 'if'",
    "shape": "Shape inference",
    "sparse_tensor": "Sparse tensor computations",
    "spv": "Graphics shaders and compute kernels",
    "std": "Non domain-specific operations",
    "tensor": "Dense tensors computations",
    "tosa": "Tensor operator set architecture",
    "vector": "A generic vector abstraction",
    "x86vector": "The Intel x86 vector instruction set",
}

#: Figure 4 — operations per dialect.  The paper prints only the total
#: (942), the extremes (3 for arm_neon/builtin, >100 for llvm/spv), and
#: the ascending dialect order; the individual counts are reconstructed
#: from the log-scale bars, preserving order and total.
OPS_PER_DIALECT: dict[str, int] = {
    "builtin": 3,
    "arm_neon": 3,
    "emitc": 10,
    "sparse_tensor": 12,
    "linalg": 14,
    "scf": 16,
    "quant": 17,
    "tensor": 18,
    "affine": 19,
    "amx": 20,
    "pdl": 21,
    "x86vector": 22,
    "complex": 24,
    "math": 26,
    "async": 27,
    "nvvm": 29,
    "memref": 31,
    "gpu": 33,
    "pdl_interp": 36,
    "vector": 40,
    "arith": 42,
    "rocdl": 45,
    "shape": 48,
    "arm_sve": 50,
    "std": 55,
    "tosa": 60,
    "llvm": 110,
    "spv": 111,
}

TOTAL_OPS = 942          # §6.1
TOTAL_TYPES = 62         # §6.3
TOTAL_ATTRS = 30         # §6.3
TOTAL_DIALECTS = 28      # §6.1

#: Overall operand-count distribution (Figure 5a caption): zero 12%,
#: one 41%, two 32%, three-or-more 16%.  (The caption's rounded
#: percentages sum to 101; the two-operand share is trimmed to 31%.)
OPERAND_DISTRIBUTION = {0: 0.12, 1: 0.41, 2: 0.31, 3: 0.16}

#: Fig. 5b caption: 17% of ops define a variadic operand; 79% of dialects
#: have at least one such op; 46% have more than a quarter.
VARIADIC_OPERAND_OP_FRACTION = 0.17
DIALECTS_WITH_VARIADIC_OPERANDS = 0.79
DIALECTS_QUARTER_VARIADIC_OPERANDS = 0.46

#: Fig. 6a caption: zero 16%, one 84%, two rare (1%).  (The 16/84 split in
#: the caption is rounded; we target 15/84/1.)
RESULT_DISTRIBUTION = {0: 0.15, 1: 0.84, 2: 0.01}

#: §6.2: multi-result ops appear in exactly these four dialects.
MULTI_RESULT_DIALECTS = ("gpu", "x86vector", "async", "shape")

#: Fig. 6b caption: 3% of ops define a variadic result; no op defines two;
#: exactly half of the dialects define at least one.
VARIADIC_RESULT_OP_FRACTION = 0.03
DIALECTS_WITH_VARIADIC_RESULTS = 0.50
VARIADIC_RESULT_DIALECTS = (
    "scf", "builtin", "affine", "emitc", "linalg", "quant", "pdl",
    "shape", "tosa", "async", "memref", "std", "pdl_interp", "llvm",
)

#: Fig. 7a caption: zero 73%, one 16%, two-or-more 11%; 76% of dialects
#: define at least one op with an attribute; 46% have >=25% such ops.
ATTRIBUTE_DISTRIBUTION = {0: 0.73, 1: 0.16, 2: 0.11}
DIALECTS_WITH_ATTRIBUTES = 0.76
DIALECTS_QUARTER_ATTRIBUTES = 0.46

#: Reconstructed dialect groups for attribute usage (Fig. 7a ordering).
ATTR_HEAVY_DIALECTS = (
    "builtin", "emitc", "quant", "pdl", "linalg", "vector", "tensor",
    "spv", "pdl_interp", "affine", "tosa", "memref", "llvm",
)
ATTR_NONE_DIALECTS = (
    "scf", "arm_neon", "math", "rocdl", "complex", "x86vector", "arm_sve",
)

#: Fig. 7b caption: zero 96%, one 4%, two 1% (rounded; we target
#: 95.9/3.4/0.7); 54% of dialects have at least one region op; builtin
#: and scf have regions on more than half of their operations.
REGION_DISTRIBUTION = {0: 0.959, 1: 0.034, 2: 0.007}
DIALECTS_WITH_REGIONS = 0.54
REGION_DIALECTS = (
    "scf", "affine", "tosa", "builtin", "linalg", "pdl", "gpu", "quant",
    "tensor", "shape", "async", "memref", "spv", "llvm", "std",
)
REGION_HEAVY_DIALECTS = ("builtin", "scf")

#: Dialects targeting SIMD/matrix hardware define mostly 3+-operand ops
#: (§6.2: amx, arm_neon, arm_sve, x86vector).
SIMD_DIALECTS = ("amx", "arm_neon", "arm_sve", "x86vector")
SIMD_OPERAND_DISTRIBUTION = {0: 0.02, 1: 0.06, 2: 0.12, 3: 0.80}

#: Fig. 5b reconstruction: dialects with many variadic-operand ops (top
#: of the figure) and dialects with none (bottom).
VARIADIC_OPERAND_HEAVY = (
    "linalg", "tensor", "memref", "scf", "pdl", "gpu", "pdl_interp",
    "async", "std", "vector", "llvm", "spv", "affine",
)
VARIADIC_OPERAND_NONE = (
    "complex", "math", "arith", "arm_neon", "arm_sve", "rocdl",
)
VARIADIC_OPERAND_HEAVY_FRACTION = 0.30   # ~30% of ops in heavy dialects

# ---------------------------------------------------------------------------
# Expressiveness (§6.3, §6.4)
# ---------------------------------------------------------------------------

#: Fig. 9 captions: 97% of type definitions use only IRDL parameters, 16%
#: define an extra (IRDL-C++) verifier.
TYPES_PURE_IRDL_PARAMS = 0.97
TYPES_PY_VERIFIER = 0.16

#: Fig. 10 captions: 77% of attribute definitions use only IRDL
#: parameters, 20% define an extra verifier.
ATTRS_PURE_IRDL_PARAMS = 0.77
ATTRS_PY_VERIFIER = 0.20

#: §6.3: only these dialects need IRDL-C++ for type/attr parameters.
PY_PARAM_DIALECTS = ("llvm", "builtin", "sparse_tensor")

#: §6.3: 14 of the 28 dialects define a type or an attribute.
DIALECTS_WITH_TYPES_OR_ATTRS = 14

#: Fig. 11 captions: 97% of ops express local constraints in IRDL; 30%
#: need an IRDL-C++ verifier for global constraints; 20 of 28 dialects
#: are fully IRDL for local constraints.
OPS_PURE_IRDL_LOCAL = 0.97
OPS_PY_VERIFIER = 0.30
DIALECTS_FULLY_IRDL_LOCAL = 20

#: Fig. 12 — non-IRDL local constraints fall into exactly three kinds,
#: with roughly these populations (read off the bars: ~20 / ~8 / ~4).
LOCAL_CONSTRAINT_KINDS = {
    "integer inequality": 19,
    "stride check": 8,
    "struct opacity": 4,
}

#: Per-dialect plan for non-IRDL local constraints: dialect →
#: {named constraint: total ops carrying it}.  The names refer to
#: ``Constraint`` declarations in the hand-written .irdl files.
PY_LOCAL_PLAN: dict[str, dict[str, int]] = {
    "memref": {"StaticStrides": 3, "ContiguousStride": 2, "SmallRank": 2},
    "affine": {"TiledStride": 3, "BoundedMapCount": 2},
    "sparse_tensor": {"SmallWidth": 3},
    "pdl_interp": {
        "BoundedOperandIndex": 2,
        "BoundedResultIndex": 1,
        "BoundedTypeCount": 1,
        "PositiveCaseCount": 1,
    },
    "linalg": {"SmallPermutation": 3},
    "async": {"SmallGroupSize": 2},
    "pdl": {"SmallBenefit": 2},
    "llvm": {"OpaqueStruct": 2, "NonOpaqueStruct": 2},
}

#: Fig. 11b reconstruction: dialects ordered by decreasing fraction of
#: ops with an IRDL-C++ global verifier.
VERIFIER_RANK_ORDER = (
    "sparse_tensor", "affine", "vector", "linalg", "pdl", "scf", "memref",
    "builtin", "tensor", "emitc", "spv", "nvvm", "amx", "shape", "gpu",
    "quant", "std", "pdl_interp", "llvm", "arith", "async", "tosa",
    "x86vector", "arm_neon", "math", "rocdl", "complex", "arm_sve",
)

#: Fig. 8 caption: only ~3% of type/attribute parameters are
#: domain-specific (from the LLVM or affine "dialects").
DOMAIN_SPECIFIC_PARAM_FRACTION = 0.03

#: Figure 3 headline (§6.1): 444 → 942 operations in 20 months, 2.1x.
GROWTH_INITIAL_OPS = 444
GROWTH_FINAL_OPS = 942
GROWTH_MONTHS = 20
GROWTH_FACTOR = 2.1


def validate() -> None:
    """Internal consistency checks over the reconstruction tables."""
    assert len(TABLE1) == TOTAL_DIALECTS
    assert set(OPS_PER_DIALECT) == set(TABLE1)
    assert sum(OPS_PER_DIALECT.values()) == TOTAL_OPS
    assert abs(sum(OPERAND_DISTRIBUTION.values()) - 1.0) < 1e-9
    assert abs(sum(RESULT_DISTRIBUTION.values()) - 1.0) < 1e-9
    assert abs(sum(ATTRIBUTE_DISTRIBUTION.values()) - 1.0) < 1e-9
    assert abs(sum(REGION_DISTRIBUTION.values()) - 1.0) < 1e-9
    assert len(VARIADIC_RESULT_DIALECTS) == 14
    assert len(REGION_DIALECTS) == 15
    assert set(SIMD_DIALECTS) <= set(TABLE1)
    assert set(PY_LOCAL_PLAN) <= set(TABLE1)
    assert set(VERIFIER_RANK_ORDER) == set(TABLE1)
