"""Deterministic synthetic IR modules for scale benchmarks.

:func:`synthesize_module` emits an arbitrarily large, *valid* flat
module over the tiny ``bench`` dialect — the workload behind
``BENCH_parallel.json`` and the ``repro-irgen`` CLI.  Unlike
:mod:`repro.irdl.irgen` (which explores dialect features randomly), this
generator is built for volume: a handful of op shapes, a bounded live
set, and one interned attribute pool, so a million-op module encodes to
a compact artifact whose decode/verify cost is dominated by op count —
exactly what the lazy reader and the sharded verifier are measured
against.

Generation is deterministic for a given ``(n_ops, seed)`` on every
platform (the same LCG idiom as :mod:`repro.corpus.generator`), so the
benchmark module and any diagnostics positions are reproducible.
"""

from __future__ import annotations

from repro.builtin.types import IntegerType
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.operation import Operation
from repro.ir.region import Region

#: The benchmark dialect: trivially shaped ops whose compiled verifiers
#: are cheap, so sharded-verification scaling measures parallelism, not
#: one pathological verifier.
BENCH_DIALECT_SOURCE = """
Dialect bench {
  Operation source {
    Results (r: !i32)
    Summary "produce a fresh i32"
  }
  Operation add {
    Operands (lhs: !i32, rhs: !i32)
    Results (r: !i32)
    Summary "i32 addition"
  }
  Operation mul {
    Operands (lhs: !i32, rhs: !i32)
    Results (r: !i32)
    Summary "i32 multiplication"
  }
  Operation accumulate {
    Operands (v: !i32)
    Results (r: !i32)
    Attributes (weight: #AnyAttr)
    Summary "weighted accumulation"
  }
  Operation sink {
    Operands (v: !i32)
    Summary "consume a value"
  }
}
"""


def bench_dialect_source() -> str:
    """The IRDL source of the ``bench`` benchmark dialect."""
    return BENCH_DIALECT_SOURCE


class _Lcg:
    """A tiny deterministic LCG (stable across Python versions)."""

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = (seed * 2654435761 + 1) % (1 << 64) or 1

    def next(self, bound: int) -> int:
        self.state = (
            self.state * 6364136223846793005 + 1442695040888963407
        ) % (1 << 64)
        return (self.state >> 33) % max(1, bound)


def register_bench_dialect(context: Context) -> None:
    """Register the ``bench`` dialect if the context lacks it."""
    if "bench" in context.dialects:
        return
    from repro.irdl.instantiate import register_irdl

    register_irdl(context, BENCH_DIALECT_SOURCE)


def synthesize_module(
    n_ops: int, seed: int = 0, context: Context | None = None
) -> Operation:
    """A valid flat ``builtin.module`` holding ``n_ops`` top-level ops.

    Every generated op is a direct child of the module's single block,
    so the op-index section carries exactly ``n_ops`` entries and the
    sharded verifier partitions the whole module.  Operand references
    stay within a sliding window of recent values, mirroring the
    locality of real straight-line IR.  Returns the module; ``context``
    defaults to a fresh :func:`~repro.builtin.default_context` with the
    ``bench`` dialect registered (it is registered into a supplied
    context too, if missing).
    """
    if n_ops < 0:
        raise ValueError(f"cannot synthesize {n_ops} ops")
    if context is None:
        from repro.builtin import default_context

        context = default_context()
    register_bench_dialect(context)
    from repro.builtin.attributes import IntegerAttr

    i32 = context.intern(IntegerType(32))
    weights = [
        context.intern(IntegerAttr(value, i32)) for value in range(16)
    ]
    create = context.create_operation
    rng = _Lcg(seed)
    block = Block()
    append = block.add_op
    values: list = []
    for _ in range(n_ops):
        live = len(values)
        choice = rng.next(8) if live >= 2 else 7
        if choice < 3:
            lhs = values[live - 1 - rng.next(min(live, 16))]
            rhs = values[live - 1 - rng.next(min(live, 16))]
            op = create("bench.add", operands=[lhs, rhs],
                        result_types=[i32])
            values.append(op.results[0])
        elif choice < 5:
            lhs = values[live - 1 - rng.next(min(live, 16))]
            rhs = values[live - 1 - rng.next(min(live, 16))]
            op = create("bench.mul", operands=[lhs, rhs],
                        result_types=[i32])
            values.append(op.results[0])
        elif choice == 5:
            value = values[live - 1 - rng.next(min(live, 16))]
            op = create(
                "bench.accumulate",
                operands=[value],
                result_types=[i32],
                attributes={"weight": weights[rng.next(16)]},
            )
            values.append(op.results[0])
        elif choice == 6:
            value = values[live - 1 - rng.next(min(live, 16))]
            op = create("bench.sink", operands=[value])
        else:
            op = create("bench.source", result_types=[i32])
            values.append(op.results[0])
        append(op)
        if len(values) > 64:
            del values[:-32]
    return create("builtin.module", regions=[Region([block])])
