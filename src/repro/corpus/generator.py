"""Corpus scaling: grow hand-written dialects to the paper's population.

The hand-written ``.irdl`` files carry each dialect's characteristic
operations, all 62 types, and all 30 attributes.  MLIR's 942-operation
population additionally contains long mechanical tails (hundreds of
``llvm.intr.*`` / ``spv.*`` intrinsics and similar); this module
synthesizes those tails as genuine IRDL syntax trees whose per-dialect
operand/result/attribute/region/variadicity/verifier distributions match
the reconstruction targets in :mod:`repro.corpus.paper_data`.

Synthesis is deterministic (a fixed linear-congruential stream seeded
per dialect), produces real IRDL that round-trips through the printer
and parser, and registers through the exact same resolver/instantiation
pipeline as hand-written code — so corpus-scale benchmarks exercise the
full implementation, not a shortcut.
"""

from __future__ import annotations

import zlib
from collections import Counter

from repro.corpus import paper_data as P
from repro.irdl import ast


class _Rng:
    """A tiny deterministic LCG (stable across Python versions)."""

    def __init__(self, seed: str):
        self.state = zlib.crc32(seed.encode()) or 1

    def next(self, bound: int) -> int:
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (
            1 << 64
        )
        return (self.state >> 33) % max(1, bound)

    def shuffle(self, items: list) -> list:
        for i in range(len(items) - 1, 0, -1):
            j = self.next(i + 1)
            items[i], items[j] = items[j], items[i]
        return items


def largest_remainder(fractions: dict[int, float], total: int) -> dict[int, int]:
    """Apportion ``total`` into integer buckets matching ``fractions``."""
    raw = {k: v * total for k, v in fractions.items()}
    counts = {k: int(v) for k, v in raw.items()}
    shortfall = total - sum(counts.values())
    by_remainder = sorted(raw, key=lambda k: raw[k] - counts[k], reverse=True)
    for k in by_remainder[:shortfall]:
        counts[k] += 1
    return counts


# ---------------------------------------------------------------------------
# Default (non-SIMD) operand profile, derived so the corpus-wide operand
# distribution matches Figure 5a once SIMD dialects get their own profile.
# ---------------------------------------------------------------------------

def _default_operand_profile() -> dict[int, float]:
    simd_ops = sum(P.OPS_PER_DIALECT[d] for d in P.SIMD_DIALECTS)
    rest_ops = P.TOTAL_OPS - simd_ops
    profile = {}
    for bucket, overall in P.OPERAND_DISTRIBUTION.items():
        simd = P.SIMD_OPERAND_DISTRIBUTION[bucket]
        profile[bucket] = max(
            0.0, (overall * P.TOTAL_OPS - simd * simd_ops) / rest_ops
        )
    norm = sum(profile.values())
    return {k: v / norm for k, v in profile.items()}


DEFAULT_OPERAND_PROFILE = _default_operand_profile()

#: Exact two-result-op targets per dialect (§6.2's four dialects).
MULTI_RESULT_PLAN = {"gpu": 3, "x86vector": 1, "async": 2, "shape": 2}

#: (one-region ops, two-region ops) per dialect, tuned so ~4% of all ops
#: carry a region while builtin and scf stay above 50% (Fig. 7b).
REGION_OP_PLAN: dict[str, tuple[int, int]] = {
    "scf": (7, 2), "builtin": (2, 0), "affine": (2, 1), "tosa": (1, 2),
    "linalg": (1, 0), "pdl": (3, 0), "gpu": (3, 0), "quant": (1, 0),
    "tensor": (1, 0), "shape": (1, 0), "async": (1, 0), "memref": (2, 0),
    "spv": (3, 0), "llvm": (3, 0), "std": (2, 0),
}

#: Attribute-count profiles per dialect group (Fig. 7a).
ATTR_PROFILE_HEAVY = {0: 0.55, 1: 0.25, 2: 0.20}
ATTR_PROFILE_SOME = {0: 0.88, 1: 0.10, 2: 0.02}

#: Operand-type palettes: what synthesized operations range over.
TYPE_PALETTES: dict[str, list[str]] = {
    "arith": ["!i32", "!i64", "!f32", "!f64", "!index"],
    "math": ["!f32", "!f64"],
    "complex": ["!complex<!f32>", "!complex<!f64>"],
    "memref": ["!memref", "!index"],
    "tensor": ["!tensor", "!index"],
    "linalg": ["!tensor", "!memref", "!index"],
    "sparse_tensor": ["!tensor", "!memref", "!index"],
    "vector": ["!vector", "!index"],
    "amx": ["!amx.tile", "!index", "!memref"],
    "arm_neon": ["!vector"],
    "arm_sve": ["!arm_sve.scalable_vector", "!arm_sve.predicate"],
    "x86vector": ["!vector", "!i32"],
    "gpu": ["!index", "!gpu.async_token", "!AnyType"],
    "pdl": ["!pdl.value_type", "!pdl.operation_type", "!pdl.type_type"],
    "pdl_interp": ["!pdl.value_type", "!pdl.operation_type"],
    "llvm": ["!llvm.ptr", "!i32", "!i64", "!f32", "!AnyType"],
    "nvvm": ["!i32", "!f32", "!vector"],
    "rocdl": ["!i32", "!f32", "!vector"],
    "spv": ["!spv.ptr", "!i32", "!f32", "!AnyType"],
    "shape": ["!shape.shape_type", "!shape.size"],
    "async": ["!async.token", "!async.value", "!index"],
    "quant": ["!tensor", "!f32"],
    "tosa": ["!tensor"],
    "scf": ["!index", "!i1", "!AnyType"],
    "std": ["!AnyType", "!i1", "!index"],
    "emitc": ["!emitc.opaque", "!AnyType"],
    "builtin": ["!AnyType"],
}

ATTR_CONSTRAINTS = ["string_attr", "integer_attr", "#builtin.array", "#AnyAttr"]
ATTR_NAMES = ["mode", "flags", "alignment", "axis", "kind", "order",
              "config", "hint"]

NAME_STEMS = [
    "select", "broadcast", "gather", "scatter", "convert", "clamp",
    "round", "shift", "pack", "unpack", "splat", "reduce", "expand",
    "trunc", "widen", "copy", "move", "swap", "merge", "split", "mask",
    "blend", "scale", "probe", "sync", "fence", "query", "emit", "fold",
    "align", "rotate", "extract", "insert", "test", "wait", "signal",
    "resume", "drop", "clone", "freeze", "lower", "raise", "wrap",
]


# ---------------------------------------------------------------------------
# Feature accounting over hand-written declarations
# ---------------------------------------------------------------------------

def _bucket(value: int, top: int) -> int:
    return min(value, top)


def _op_features(op: ast.OperationDecl) -> dict:
    return {
        "operands": _bucket(len(op.operands), 3),
        "results": _bucket(len(op.results), 2),
        "attrs": _bucket(len(op.attributes), 2),
        "regions": _bucket(len(op.regions), 2),
        "variadic_operand": any(
            a.variadicity is not ast.Variadicity.SINGLE for a in op.operands
        ),
        "variadic_result": any(
            a.variadicity is not ast.Variadicity.SINGLE for a in op.results
        ),
        "verifier": bool(op.py_constraints),
    }


def _constraint_refs(op: ast.OperationDecl, names: set[str]) -> set[str]:
    used = set()
    for arg in (*op.operands, *op.results, *op.attributes):
        expr = arg.constraint
        if isinstance(expr, ast.RefExpr) and expr.name in names:
            used.add(expr.name)
    return used


def _deficit_hist(target: dict[int, int], existing: Counter, n_synth: int) -> list[int]:
    """Per-bucket deficits as a flat list of bucket labels of length n_synth."""
    deficits = {k: max(0, target.get(k, 0) - existing.get(k, 0)) for k in target}
    labels: list[int] = []
    for bucket, count in sorted(deficits.items()):
        labels.extend([bucket] * count)
    # Reconcile rounding and any hand-written overshoot.
    while len(labels) > n_synth:
        labels.remove(max(labels, key=lambda b: deficits[b]))
    filler = max(target, key=lambda k: target[k])
    while len(labels) < n_synth:
        labels.append(filler)
    return labels


# ---------------------------------------------------------------------------
# Per-dialect verifier targets (Figure 11b)
# ---------------------------------------------------------------------------

def verifier_targets() -> dict[str, int]:
    """Ops-with-global-verifier count per dialect, matching 30% overall."""
    raws = {}
    for rank, name in enumerate(P.VERIFIER_RANK_ORDER):
        raws[name] = (len(P.VERIFIER_RANK_ORDER) - rank) / len(
            P.VERIFIER_RANK_ORDER
        )
    weighted = sum(raws[d] * P.OPS_PER_DIALECT[d] for d in raws)
    scale = (P.OPS_PY_VERIFIER * P.TOTAL_OPS) / weighted
    return {
        d: min(P.OPS_PER_DIALECT[d], round(scale * raws[d] * P.OPS_PER_DIALECT[d]))
        for d in raws
    }


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def variadic_operand_target(name: str) -> int:
    if name in P.VARIADIC_OPERAND_NONE:
        return 0
    if name in P.VARIADIC_OPERAND_HEAVY:
        return round(P.VARIADIC_OPERAND_HEAVY_FRACTION * P.OPS_PER_DIALECT[name])
    return 1


def extend_dialect(decl: ast.DialectDecl) -> ast.DialectDecl:
    """Synthesize operations in place until the dialect hits its targets."""
    name = decl.name
    target_ops = P.OPS_PER_DIALECT[name]
    n_existing = len(decl.operations)
    n_synth = target_ops - n_existing
    if n_synth < 0:
        raise ValueError(
            f"dialect {name} already has {n_existing} ops, paper target is "
            f"{target_ops}"
        )
    if n_synth == 0:
        return decl
    rng = _Rng(name)

    existing = [_op_features(op) for op in decl.operations]
    count = lambda key: Counter(f[key] for f in existing)
    flag_count = lambda key: sum(1 for f in existing if f[key])

    # -- operand / result / attribute / region bucket plans ---------------
    operand_profile = (
        P.SIMD_OPERAND_DISTRIBUTION if name in P.SIMD_DIALECTS
        else DEFAULT_OPERAND_PROFILE
    )
    operand_plan = _deficit_hist(
        largest_remainder(operand_profile, target_ops), count("operands"), n_synth
    )

    two_results = MULTI_RESULT_PLAN.get(name, 0)
    zero_results = largest_remainder(
        {0: P.RESULT_DISTRIBUTION[0], 1: P.RESULT_DISTRIBUTION[1]},
        target_ops - two_results,
    )[0]
    result_target = {0: zero_results, 1: target_ops - two_results - zero_results,
                     2: two_results}
    result_plan = _deficit_hist(result_target, count("results"), n_synth)

    if name in P.ATTR_NONE_DIALECTS:
        attr_profile = {0: 1.0, 1: 0.0, 2: 0.0}
    elif name in P.ATTR_HEAVY_DIALECTS:
        attr_profile = ATTR_PROFILE_HEAVY
    else:
        attr_profile = ATTR_PROFILE_SOME
    attr_plan = _deficit_hist(
        largest_remainder(attr_profile, target_ops), count("attrs"), n_synth
    )

    one_region, two_region = REGION_OP_PLAN.get(name, (0, 0))
    region_target = {0: target_ops - one_region - two_region, 1: one_region,
                     2: two_region}
    region_plan = _deficit_hist(region_target, count("regions"), n_synth)

    rng.shuffle(operand_plan)
    rng.shuffle(result_plan)
    rng.shuffle(attr_plan)
    rng.shuffle(region_plan)

    # -- flag plans --------------------------------------------------------
    n_variadic_operands = max(
        0, variadic_operand_target(name) - flag_count("variadic_operand")
    )
    n_variadic_results = max(
        0,
        (2 if name in P.VARIADIC_RESULT_DIALECTS else 0)
        - flag_count("variadic_result"),
    )
    n_verifiers = max(0, verifier_targets()[name] - flag_count("verifier"))

    # -- local-constraint plan (Figure 12) ----------------------------------
    constraint_names = {c.name for c in decl.constraints}
    used = Counter()
    for op in decl.operations:
        for ref in _constraint_refs(op, constraint_names):
            used[ref] += 1
    py_local_queue: list[str] = []
    for constraint_name, total in P.PY_LOCAL_PLAN.get(name, {}).items():
        py_local_queue.extend([constraint_name] * max(0, total - used[constraint_name]))

    # -- build operations ----------------------------------------------------
    palette = TYPE_PALETTES.get(name, ["!AnyType"])
    taken = {op.name for op in decl.operations}
    new_ops: list[ast.OperationDecl] = []
    for index in range(n_synth):
        op = _synth_op(
            name, index, rng, palette, taken,
            n_operands=_expand_bucket(operand_plan[index], rng),
            n_results=result_plan[index],
            n_attrs=attr_plan[index] + (rng.next(2) if attr_plan[index] == 2 else 0),
            n_regions=region_plan[index],
        )
        new_ops.append(op)

    _assign_flag(
        new_ops, rng, n_variadic_operands,
        eligible=lambda op: bool(op.operands),
        apply=lambda op: _make_variadic(op.operands, rng),
    )
    _assign_flag(
        new_ops, rng, n_variadic_results,
        eligible=lambda op: bool(op.results),
        apply=lambda op: _make_variadic(op.results, rng),
    )
    _assign_flag(
        new_ops, rng, n_verifiers,
        eligible=lambda op: not op.py_constraints,
        apply=_add_verifier,
    )
    for constraint_name in py_local_queue:
        candidates = [
            op for op in new_ops
            if not any(a.name == "checked" for a in op.attributes)
        ]
        if not candidates:
            break
        target = candidates[rng.next(len(candidates))]
        target.attributes.append(
            ast.ArgDecl("checked", ast.RefExpr(None, constraint_name))
        )

    decl.operations.extend(new_ops)
    return decl


def _expand_bucket(bucket: int, rng: _Rng) -> int:
    """Turn a "3+" (or "2+" attribute) bucket into a concrete count."""
    if bucket < 3:
        return bucket
    return 3 + rng.next(4)  # 3..6 operands, like real SIMD intrinsics


def _make_variadic(args: list[ast.ArgDecl], rng: _Rng) -> None:
    args[rng.next(len(args))].variadicity = ast.Variadicity.VARIADIC


def _add_verifier(op: ast.OperationDecl) -> None:
    # A representative global constraint relating several features of the
    # operation at once, in terms of its actual synthesized signature.
    n_fixed_operands = sum(
        1 for a in op.operands if a.variadicity is ast.Variadicity.SINGLE
    )
    op.py_constraints.append(
        f"len($_self.op.operands) >= {n_fixed_operands} and "
        f"len($_self.op.results) == {len(op.results)}"
    )


def _assign_flag(ops, rng: _Rng, count: int, eligible, apply) -> None:
    candidates = [op for op in ops if eligible(op)]
    rng.shuffle(candidates)
    for op in candidates[:count]:
        apply(op)


def _synth_op(
    dialect: str,
    index: int,
    rng: _Rng,
    palette: list[str],
    taken: set[str],
    n_operands: int,
    n_results: int,
    n_attrs: int,
    n_regions: int,
) -> ast.OperationDecl:
    stem = NAME_STEMS[rng.next(len(NAME_STEMS))]
    prefix = "intr_" if dialect in P.SIMD_DIALECTS + ("nvvm", "rocdl", "llvm") else ""
    op_name = f"{prefix}{stem}"
    if op_name in taken:
        op_name = f"{prefix}{stem}_{index}"
    taken.add(op_name)

    def type_ref() -> ast.RefExpr:
        text = palette[rng.next(len(palette))]
        return _parse_type_ref(text)

    operand_names = ["a", "b", "c", "d", "e", "f"]
    operands = [
        ast.ArgDecl(operand_names[i], type_ref()) for i in range(n_operands)
    ]
    results = [
        ast.ArgDecl(f"res{i}" if i else "res", type_ref())
        for i in range(n_results)
    ]
    attributes = [
        ast.ArgDecl(
            ATTR_NAMES[i],
            _parse_type_ref(ATTR_CONSTRAINTS[rng.next(len(ATTR_CONSTRAINTS))]),
        )
        for i in range(n_attrs)
    ]
    regions = [
        ast.RegionDecl("body" if i == 0 else f"region{i}")
        for i in range(n_regions)
    ]
    return ast.OperationDecl(
        op_name,
        operands=operands,
        results=results,
        attributes=attributes,
        regions=regions,
        summary=f"Synthesized {dialect} operation ({stem})",
    )


def _parse_type_ref(text: str) -> ast.RefExpr:
    """Parse a palette entry like ``!complex<!f32>`` into a RefExpr."""
    from repro.irdl.parser import IRDLParser

    expr = IRDLParser(text, "<palette>").parse_constraint_expr()
    assert isinstance(expr, ast.RefExpr)
    return expr
