"""Natively implemented dialects: builtin, func, arith, cf.

The builtin dialect provides the types (``i32``, ``f32``, ``tensor``, …)
and attributes IRDL treats as always in scope (§4.2).  The func/arith/cf
dialects supply the scaffolding operations the paper's examples use
around IRDL-defined dialects.
"""

from repro.builtin.attributes import (
    ArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    f32_attr,
)
from repro.builtin.registry import (
    default_context,
    make_builtin_dialect,
    register_builtin_dialects,
)
from repro.builtin.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    Signedness,
    TensorType,
    VectorType,
    f16,
    f32,
    f64,
    i1,
    i8,
    i16,
    i32,
    i64,
    index,
)

__all__ = [
    "ArrayAttr",
    "DictionaryAttr",
    "f32_attr",
    "FloatAttr",
    "IntegerAttr",
    "StringAttr",
    "SymbolRefAttr",
    "TypeAttr",
    "UnitAttr",
    "default_context",
    "make_builtin_dialect",
    "register_builtin_dialects",
    "DYNAMIC",
    "FloatType",
    "FunctionType",
    "IndexType",
    "IntegerType",
    "MemRefType",
    "Signedness",
    "TensorType",
    "VectorType",
    "f16",
    "f32",
    "f64",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "index",
]
