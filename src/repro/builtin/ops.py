"""Builtin, func, arith, and cf dialects implemented natively.

These are the hand-written dialects the examples build IR with (the
paper's Listing 1 uses ``func``/``std`` operations next to the
IRDL-defined ``cmath`` dialect).  They demonstrate that native and
IRDL-instantiated dialects register through the same binding interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.builtin.attributes import FloatAttr, IntegerAttr, StringAttr, TypeAttr
from repro.builtin.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    i1,
)
from repro.ir.dialect import DialectBinding, OpDefBinding
from repro.ir.exceptions import VerifyError

if TYPE_CHECKING:
    from repro.ir.operation import Operation


def _expect(condition: bool, message: str, op: "Operation") -> None:
    if not condition:
        raise VerifyError(f"{op.name}: {message}", obj=op)


# ---------------------------------------------------------------------------
# builtin dialect operations
# ---------------------------------------------------------------------------

def _verify_module(op: "Operation") -> None:
    _expect(not op.operands, "expects no operands", op)
    _expect(not op.results, "expects no results", op)
    _expect(len(op.regions) == 1, "expects exactly one region", op)


def _verify_unrealized_cast(op: "Operation") -> None:
    _expect(len(op.results) >= 1, "expects at least one result", op)


# ---------------------------------------------------------------------------
# func dialect
# ---------------------------------------------------------------------------

def _function_type_of(op: "Operation") -> FunctionType | None:
    """The function signature attribute, unwrapping an optional TypeAttr."""
    fn_attr = op.attributes.get("function_type")
    if isinstance(fn_attr, TypeAttr):
        fn_attr = fn_attr.type
    return fn_attr if isinstance(fn_attr, FunctionType) else None


def _verify_func(op: "Operation") -> None:
    _expect("sym_name" in op.attributes, "expects a sym_name attribute", op)
    _expect(
        isinstance(op.attributes.get("sym_name"), StringAttr),
        "sym_name must be a string attribute",
        op,
    )
    fn_type = _function_type_of(op)
    _expect(
        fn_type is not None,
        "expects a function_type attribute holding a function type",
        op,
    )
    assert fn_type is not None
    _expect(len(op.regions) == 1, "expects exactly one region", op)
    body = op.regions[0]
    entry = body.entry_block
    if entry is None:
        return  # external function declaration
    _expect(
        len(entry.args) == len(fn_type.inputs),
        f"entry block has {len(entry.args)} arguments but the signature "
        f"has {len(fn_type.inputs)} inputs",
        op,
    )
    for arg, expected in zip(entry.args, fn_type.inputs):
        _expect(
            arg.type == expected,
            f"entry argument type {arg.type} differs from signature type "
            f"{expected}",
            op,
        )


def _verify_return(op: "Operation") -> None:
    _expect(not op.results, "expects no results", op)
    parent = op.parent_op
    if parent is None or parent.name != "func.func":
        return
    fn_type = _function_type_of(parent)
    if fn_type is None:
        return
    expected = fn_type.result_types
    _expect(
        len(op.operands) == len(expected),
        f"returns {len(op.operands)} values but the enclosing function "
        f"expects {len(expected)}",
        op,
    )
    for operand, result_type in zip(op.operands, expected):
        _expect(
            operand.type == result_type,
            f"return operand type {operand.type} differs from function "
            f"result type {result_type}",
            op,
        )


def _verify_call(op: "Operation") -> None:
    _expect("callee" in op.attributes, "expects a callee attribute", op)


# ---------------------------------------------------------------------------
# arith dialect
# ---------------------------------------------------------------------------

def _verify_constant(op: "Operation") -> None:
    _expect(not op.operands, "expects no operands", op)
    _expect(len(op.results) == 1, "expects one result", op)
    value = op.attributes.get("value")
    _expect(value is not None, "expects a value attribute", op)
    if isinstance(value, (IntegerAttr, FloatAttr)):
        _expect(
            value.type == op.results[0].type,
            f"constant value type {value.type} differs from result type "
            f"{op.results[0].type}",
            op,
        )


def _make_binary_verifier(type_check, type_desc: str):
    def verify(op: "Operation") -> None:
        _expect(len(op.operands) == 2, "expects two operands", op)
        _expect(len(op.results) == 1, "expects one result", op)
        _expect(not op.regions, "expects no regions", op)
        lhs, rhs = op.operands
        res = op.results[0]
        _expect(lhs.type == rhs.type, "operand types must match", op)
        _expect(lhs.type == res.type, "operand and result types must match", op)
        _expect(type_check(lhs.type), f"operands must be {type_desc}", op)

    return verify


_verify_int_binary = _make_binary_verifier(
    lambda t: isinstance(t, (IntegerType, IndexType)), "integers"
)
_verify_float_binary = _make_binary_verifier(
    lambda t: isinstance(t, FloatType), "floats"
)

CMPI_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


def _verify_cmpi(op: "Operation") -> None:
    _expect(len(op.operands) == 2, "expects two operands", op)
    _expect(len(op.results) == 1, "expects one result", op)
    _expect(op.operands[0].type == op.operands[1].type, "operand types must match", op)
    _expect(op.results[0].type == i1, "result must be i1", op)
    predicate = op.attributes.get("predicate")
    _expect(
        isinstance(predicate, StringAttr) and predicate.data in CMPI_PREDICATES,
        f"predicate must be one of {CMPI_PREDICATES}",
        op,
    )


# ---------------------------------------------------------------------------
# cf dialect (unstructured control flow)
# ---------------------------------------------------------------------------

def _check_successor_args(op: "Operation", successor_index: int, values) -> None:
    successor = op.successors[successor_index]
    _expect(
        len(values) == len(successor.args),
        f"successor #{successor_index} expects {len(successor.args)} "
        f"arguments, got {len(values)}",
        op,
    )
    for value, arg in zip(values, successor.args):
        _expect(
            value.type == arg.type,
            f"block argument type mismatch: {value.type} vs {arg.type}",
            op,
        )


def _verify_br(op: "Operation") -> None:
    _expect(len(op.successors) == 1, "expects one successor", op)
    _check_successor_args(op, 0, op.operands)


def _verify_cond_br(op: "Operation") -> None:
    _expect(len(op.successors) == 2, "expects two successors", op)
    _expect(len(op.operands) >= 1, "expects a condition operand", op)
    _expect(op.operands[0].type == i1, "condition must be i1", op)
    # Remaining operands split between successors via segment attributes is
    # not modelled for the native dialect; both successors must take no
    # arguments unless explicitly checked by the user.


# ---------------------------------------------------------------------------
# Dialect construction
# ---------------------------------------------------------------------------

def make_builtin_op_bindings(dialect: DialectBinding) -> None:
    dialect.register_op(
        OpDefBinding("builtin.module", summary="A top-level container",
                     verifier=_verify_module)
    )
    dialect.register_op(
        OpDefBinding(
            "builtin.unrealized_conversion_cast",
            summary="A cast between types during partial conversion",
            verifier=_verify_unrealized_cast,
        )
    )


def make_func_dialect() -> DialectBinding:
    dialect = DialectBinding("func")
    dialect.register_op(
        OpDefBinding("func.func", summary="A function definition",
                     verifier=_verify_func)
    )
    dialect.register_op(
        OpDefBinding(
            "func.return",
            summary="Return values from a function",
            is_terminator=True,
            verifier=_verify_return,
        )
    )
    dialect.register_op(
        OpDefBinding("func.call", summary="Call a function by symbol",
                     verifier=_verify_call)
    )
    return dialect


def make_arith_dialect() -> DialectBinding:
    dialect = DialectBinding("arith")
    dialect.register_op(
        OpDefBinding("arith.constant", summary="An integer or float constant",
                     verifier=_verify_constant)
    )
    for op_name in ("addi", "subi", "muli", "divsi", "andi", "ori", "xori"):
        dialect.register_op(
            OpDefBinding(f"arith.{op_name}", summary="Integer arithmetic",
                         verifier=_verify_int_binary)
        )
    for op_name in ("addf", "subf", "mulf", "divf"):
        dialect.register_op(
            OpDefBinding(f"arith.{op_name}", summary="Float arithmetic",
                         verifier=_verify_float_binary)
        )
    dialect.register_op(
        OpDefBinding("arith.cmpi", summary="Integer comparison",
                     verifier=_verify_cmpi)
    )
    return dialect


def _verify_float_unary(op: "Operation") -> None:
    _expect(len(op.operands) == 1, "expects one operand", op)
    _expect(len(op.results) == 1, "expects one result", op)
    _expect(op.operands[0].type == op.results[0].type,
            "operand and result types must match", op)
    _expect(isinstance(op.operands[0].type, FloatType),
            "operand must be a float", op)


def make_math_dialect() -> DialectBinding:
    dialect = DialectBinding("math")
    for op_name in ("sqrt", "exp", "log", "sin", "cos", "absf"):
        dialect.register_op(
            OpDefBinding(f"math.{op_name}", summary="Unary float math",
                         verifier=_verify_float_unary)
        )
    return dialect


def make_cf_dialect() -> DialectBinding:
    dialect = DialectBinding("cf")
    dialect.register_op(
        OpDefBinding("cf.br", summary="Unconditional branch",
                     is_terminator=True, verifier=_verify_br)
    )
    dialect.register_op(
        OpDefBinding("cf.cond_br", summary="Conditional branch",
                     is_terminator=True, verifier=_verify_cond_br)
    )
    return dialect
