"""Builtin attributes: compile-time constants attached to operations."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.ir.attributes import Attribute, Data, ParametrizedAttribute, TypeAttribute
from repro.ir.exceptions import VerifyError
from repro.builtin.types import FloatType, IndexType, IntegerType, f32, f64, i64


class StringAttr(Data):
    """A string attribute, printed as ``"text"``."""

    name = "builtin.string"

    def verify(self) -> None:
        if not isinstance(self.data, str):
            raise VerifyError(f"string attribute holds {type(self.data).__name__}")

    def __str__(self) -> str:
        escaped = self.data.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class IntegerAttr(ParametrizedAttribute):
    """An integer constant together with its type: ``42 : i32``."""

    name = "builtin.integer_attr"
    parameter_names = ("value", "type")

    def __init__(self, value: int, value_type: Attribute | None = None):
        from repro.ir.params import IntegerParam

        if value_type is None:
            value_type = i64
        super().__init__((IntegerParam(value, 64, True), value_type))

    @property
    def value(self) -> int:
        return self.parameters[0].value

    @property
    def type(self) -> Attribute:
        return self.parameters[1]

    def verify(self) -> None:
        if not isinstance(self.type, (IntegerType, IndexType)):
            raise VerifyError(
                f"integer attribute type must be integer or index, got {self.type}"
            )
        if isinstance(self.type, IntegerType):
            width = self.type.bitwidth
            if width < 64 and not -(1 << width) < self.value < (1 << width):
                raise VerifyError(
                    f"value {self.value} does not fit in {self.type}"
                )

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


class FloatAttr(ParametrizedAttribute):
    """A floating-point constant together with its type: ``1.0 : f32``."""

    name = "builtin.float_attr"
    parameter_names = ("value", "type")

    def __init__(self, value: float, value_type: Attribute | None = None):
        from repro.ir.params import FloatParam

        if value_type is None:
            value_type = f64
        super().__init__((FloatParam(float(value), 64), value_type))

    @property
    def value(self) -> float:
        return self.parameters[0].value

    @property
    def type(self) -> Attribute:
        return self.parameters[1]

    def verify(self) -> None:
        if not isinstance(self.type, FloatType):
            raise VerifyError(
                f"float attribute type must be a float type, got {self.type}"
            )

    def __str__(self) -> str:
        import math

        if math.isfinite(self.value):
            return f"{self.value} : {self.type}"
        # Decimal repr cannot express this value; print the bit-exact
        # hex form the parser accepts back.
        return f"0x{self.parameters[0].bits():016X} : {self.type}"


class UnitAttr(ParametrizedAttribute):
    """A presence-only attribute (its existence is the information)."""

    name = "builtin.unit"

    def __init__(self) -> None:
        super().__init__(())

    def __str__(self) -> str:
        return "unit"


class TypeAttr(ParametrizedAttribute):
    """An attribute wrapping a type, e.g. a function's signature."""

    name = "builtin.type_attr"
    parameter_names = ("type",)

    def __init__(self, wrapped: Attribute):
        super().__init__((wrapped,))

    @property
    def type(self) -> Attribute:
        return self.parameters[0]

    def verify(self) -> None:
        if not isinstance(self.type, TypeAttribute):
            raise VerifyError(f"type attribute wraps non-type {self.type!r}")

    def __str__(self) -> str:
        return str(self.type)


class ArrayAttr(ParametrizedAttribute):
    """An ordered array of attributes: ``[1 : i64, "a"]``."""

    name = "builtin.array"

    def __init__(self, elements: Iterable[Attribute]):
        super().__init__(tuple(elements))

    @property
    def elements(self) -> tuple[Attribute, ...]:
        return self.parameters

    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def verify(self) -> None:
        for element in self.parameters:
            if not isinstance(element, Attribute):
                raise VerifyError(f"array element {element!r} is not an attribute")
            element.verify()

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.parameters) + "]"


class DictionaryAttr(ParametrizedAttribute):
    """A sorted name→attribute dictionary: ``{key = value}``."""

    name = "builtin.dictionary"

    def __init__(self, entries: Mapping[str, Attribute]):
        items = tuple(sorted(entries.items()))
        super().__init__(items)

    @property
    def entries(self) -> dict[str, Attribute]:
        return dict(self.parameters)

    def get(self, key: str) -> Attribute | None:
        return self.entries.get(key)

    def verify(self) -> None:
        for key, value in self.parameters:
            if not isinstance(key, str) or not isinstance(value, Attribute):
                raise VerifyError("dictionary attribute entries must map str→Attribute")
            value.verify()

    def __str__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.parameters)
        return "{" + inner + "}"


class SymbolRefAttr(Data):
    """A reference to a symbol by name: ``@conorm``."""

    name = "builtin.symbol_ref"

    def verify(self) -> None:
        if not isinstance(self.data, str) or not self.data:
            raise VerifyError("symbol reference must be a non-empty string")

    def __str__(self) -> str:
        return f"@{self.data}"


def f32_attr(value: float) -> FloatAttr:
    """The paper's ``#f32_attr``: a single-precision float constant."""
    return FloatAttr.get(value, f32)  # type: ignore[return-value]
