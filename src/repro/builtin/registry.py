"""Registration of the builtin, func, arith, and cf dialects."""

from __future__ import annotations

from typing import Any

from repro.builtin import attributes as battrs
from repro.builtin import types as btypes
from repro.builtin.ops import (
    make_arith_dialect,
    make_builtin_op_bindings,
    make_cf_dialect,
    make_func_dialect,
    make_math_dialect,
)
from repro.ir.attributes import Attribute
from repro.ir.context import Context
from repro.ir.dialect import AttrDefBinding, DialectBinding, EnumBinding
from repro.ir.exceptions import VerifyError
from repro.ir.params import ArrayParam, EnumParam, FloatParam, IntegerParam, StringParam


def _singleton_type(name: str, instance: Attribute) -> AttrDefBinding:
    """A zero-parameter type binding returning an interned instance."""

    def construct(params: tuple[Any, ...]) -> Attribute:
        if params:
            raise VerifyError(f"builtin.{name} takes no parameters")
        return instance

    return AttrDefBinding(
        f"builtin.{name}",
        is_type=True,
        constructor=construct,
        summary=f"The builtin {name} type",
    )


def _construct_integer(params: tuple[Any, ...]) -> Attribute:
    bitwidth, signedness = params
    width = bitwidth.value if isinstance(bitwidth, IntegerParam) else int(bitwidth)
    if isinstance(signedness, EnumParam):
        sign = btypes.Signedness[signedness.constructor.upper()]
    else:
        sign = signedness
    return btypes.IntegerType(width, sign)


def _construct_float(params: tuple[Any, ...]) -> Attribute:
    (bitwidth,) = params
    width = bitwidth.value if isinstance(bitwidth, IntegerParam) else int(bitwidth)
    return btypes.FloatType(width)


def _construct_function(params: tuple[Any, ...]) -> Attribute:
    inputs, results = params
    return btypes.FunctionType(tuple(inputs), tuple(results))


def _shaped_constructor(cls: type) -> Any:
    def construct(params: tuple[Any, ...]) -> Attribute:
        shape_param, element = params
        shape = [
            d.value if isinstance(d, IntegerParam) else int(d)
            for d in (shape_param.elements if isinstance(shape_param, ArrayParam) else shape_param)
        ]
        return cls(shape, element)

    return construct


def make_builtin_dialect() -> DialectBinding:
    """Build the full builtin dialect binding (types, attrs, enums, ops)."""
    dialect = DialectBinding("builtin")

    dialect.register_enum(
        EnumBinding("builtin.signedness", ("Signless", "Signed", "Unsigned"))
    )

    # Parametric types.
    dialect.register_type(
        AttrDefBinding(
            "builtin.integer",
            is_type=True,
            parameter_names=("bitwidth", "signedness"),
            constructor=_construct_integer,
            summary="Arbitrary-bitwidth integers",
        )
    )
    dialect.register_type(
        AttrDefBinding(
            "builtin.float",
            is_type=True,
            parameter_names=("bitwidth",),
            constructor=_construct_float,
            summary="IEEE floating point",
        )
    )
    dialect.register_type(
        AttrDefBinding(
            "builtin.function",
            is_type=True,
            parameter_names=("inputs", "results"),
            constructor=_construct_function,
            summary="Function types",
        )
    )
    for name, cls in (
        ("tensor", btypes.TensorType),
        ("vector", btypes.VectorType),
        ("memref", btypes.MemRefType),
    ):
        dialect.register_type(
            AttrDefBinding(
                f"builtin.{name}",
                is_type=True,
                parameter_names=("shape", "element_type"),
                constructor=_shaped_constructor(cls),
                summary=f"The builtin {name} shaped type",
            )
        )

    # Singleton shorthands (``!f32`` resolves here, §4.2).
    for name, instance in (
        ("i1", btypes.i1),
        ("i8", btypes.i8),
        ("i16", btypes.i16),
        ("i32", btypes.i32),
        ("i64", btypes.i64),
        ("f16", btypes.f16),
        ("f32", btypes.f32),
        ("f64", btypes.f64),
        ("index", btypes.index),
    ):
        dialect.register_type(_singleton_type(name, instance))

    # Attributes.
    def string_ctor(params: tuple[Any, ...]) -> Attribute:
        (value,) = params
        return battrs.StringAttr(value.value if isinstance(value, StringParam) else value)

    def integer_attr_ctor(params: tuple[Any, ...]) -> Attribute:
        value, value_type = params
        raw = value.value if isinstance(value, IntegerParam) else int(value)
        return battrs.IntegerAttr(raw, value_type)

    def float_attr_ctor(params: tuple[Any, ...]) -> Attribute:
        value, value_type = params
        raw = value.value if isinstance(value, FloatParam) else float(value)
        return battrs.FloatAttr(raw, value_type)

    def f32_attr_ctor(params: tuple[Any, ...]) -> Attribute:
        (value,) = params
        raw = value.value if isinstance(value, FloatParam) else float(value)
        return battrs.f32_attr(raw)

    def unit_ctor(params: tuple[Any, ...]) -> Attribute:
        return battrs.UnitAttr()

    def type_attr_ctor(params: tuple[Any, ...]) -> Attribute:
        (wrapped,) = params
        return battrs.TypeAttr(wrapped)

    def array_ctor(params: tuple[Any, ...]) -> Attribute:
        (elements,) = params
        items = elements.elements if isinstance(elements, ArrayParam) else tuple(elements)
        return battrs.ArrayAttr(items)

    def symbol_ref_ctor(params: tuple[Any, ...]) -> Attribute:
        (value,) = params
        return battrs.SymbolRefAttr(
            value.value if isinstance(value, StringParam) else value
        )

    def dictionary_ctor(params: tuple[Any, ...]) -> Attribute:
        (entries,) = params
        return battrs.DictionaryAttr(dict(entries))

    for name, names, ctor, summary, canonical in (
        ("string", ("value",), string_ctor, "A string attribute", None),
        # "string_attr" is the spelling the IRDL corpus uses; both resolve
        # to the same constructor (and the same canonical attribute name).
        ("string_attr", ("value",), string_ctor, "A string attribute",
         "builtin.string"),
        ("integer_attr", ("value", "type"), integer_attr_ctor,
         "A typed integer", None),
        ("float_attr", ("value", "type"), float_attr_ctor,
         "A typed float", None),
        ("f32_attr", ("value",), f32_attr_ctor,
         "A single-precision float", "builtin.float_attr"),
        ("unit", (), unit_ctor, "A presence-only attribute", None),
        ("type_attr", ("type",), type_attr_ctor, "A type as an attribute",
         None),
        ("array", ("elements",), array_ctor, "An array of attributes", None),
        ("dictionary", ("entries",), dictionary_ctor,
         "A name-attribute map", None),
        ("symbol_ref", ("symbol",), symbol_ref_ctor,
         "A symbol reference", None),
        ("flat_symbol_ref", ("symbol",), symbol_ref_ctor,
         "A non-nested symbol reference", "builtin.symbol_ref"),
    ):
        dialect.register_attr(
            AttrDefBinding(
                f"builtin.{name}",
                is_type=False,
                parameter_names=names,
                constructor=ctor,
                summary=summary,
                canonical_name=canonical,
            )
        )

    make_builtin_op_bindings(dialect)
    return dialect


def register_builtin_dialects(ctx: Context) -> Context:
    """Register builtin, func, arith, math, and cf into a context."""
    ctx.register_dialect(make_builtin_dialect())
    ctx.register_dialect(make_func_dialect())
    ctx.register_dialect(make_arith_dialect())
    ctx.register_dialect(make_math_dialect())
    ctx.register_dialect(make_cf_dialect())
    return ctx


def default_context(allow_unregistered: bool = False) -> Context:
    """A fresh context with all native dialects pre-registered."""
    return register_builtin_dialects(Context(allow_unregistered=allow_unregistered))
