"""Builtin types: integers, floats, index, function, and shaped types.

These mirror MLIR's builtin type system, which IRDL treats as always in
scope — ``f32`` is shorthand for ``builtin.f32`` even outside the builtin
dialect (§4.2).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.ir.attributes import Attribute, ParametrizedAttribute, TypeAttribute
from repro.ir.exceptions import VerifyError
from repro.ir.params import EnumParam, IntegerParam


class Signedness(Enum):
    """Integer signedness semantics, as in MLIR's builtin integer type."""

    SIGNLESS = "signless"
    SIGNED = "signed"
    UNSIGNED = "unsigned"

    def to_param(self) -> EnumParam:
        return EnumParam("builtin.signedness", self.name.capitalize())


class IntegerType(ParametrizedAttribute, TypeAttribute):
    """An arbitrary-bitwidth integer type: ``i32``, ``si8``, ``ui16``, …"""

    name = "builtin.integer"
    parameter_names = ("bitwidth", "signedness")

    def __init__(self, bitwidth: int, signedness: Signedness = Signedness.SIGNLESS):
        super().__init__(
            (IntegerParam(bitwidth, 32, False), signedness.to_param())
        )

    @property
    def bitwidth(self) -> int:
        return self.parameters[0].value

    @property
    def signedness(self) -> Signedness:
        constructor = self.parameters[1].constructor
        return Signedness[constructor.upper()]

    def verify(self) -> None:
        if self.bitwidth <= 0:
            raise VerifyError(
                f"integer type bitwidth must be positive, got {self.bitwidth}"
            )

    def __str__(self) -> str:
        prefix = {
            Signedness.SIGNLESS: "i",
            Signedness.SIGNED: "si",
            Signedness.UNSIGNED: "ui",
        }[self.signedness]
        return f"{prefix}{self.bitwidth}"


class IndexType(ParametrizedAttribute, TypeAttribute):
    """The platform-sized index type used for loop bounds and subscripts."""

    name = "builtin.index"

    def __init__(self) -> None:
        super().__init__(())

    def __str__(self) -> str:
        return "index"


class FloatType(ParametrizedAttribute, TypeAttribute):
    """An IEEE floating-point type: ``f16``, ``f32``, ``f64``."""

    name = "builtin.float"
    parameter_names = ("bitwidth",)

    SUPPORTED_WIDTHS = (16, 32, 64)

    def __init__(self, bitwidth: int):
        super().__init__((IntegerParam(bitwidth, 32, False),))

    @property
    def bitwidth(self) -> int:
        return self.parameters[0].value

    def verify(self) -> None:
        if self.bitwidth not in self.SUPPORTED_WIDTHS:
            raise VerifyError(
                f"unsupported float bitwidth {self.bitwidth}; "
                f"expected one of {self.SUPPORTED_WIDTHS}"
            )

    def __str__(self) -> str:
        return f"f{self.bitwidth}"


class FunctionType(ParametrizedAttribute, TypeAttribute):
    """A function type ``(inputs...) -> (results...)``."""

    name = "builtin.function"
    parameter_names = ("inputs", "results")

    def __init__(self, inputs: Sequence[Attribute], results: Sequence[Attribute]):
        from repro.ir.params import ArrayParam

        super().__init__((ArrayParam(tuple(inputs)), ArrayParam(tuple(results))))

    @property
    def inputs(self) -> tuple[Attribute, ...]:
        return self.parameters[0].elements

    @property
    def result_types(self) -> tuple[Attribute, ...]:
        return self.parameters[1].elements

    def verify(self) -> None:
        for t in (*self.inputs, *self.result_types):
            if not isinstance(t, TypeAttribute):
                raise VerifyError(f"function type component {t!r} is not a type")

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.result_types)
        single = len(self.result_types) == 1
        if single and not isinstance(self.result_types[0], FunctionType):
            return f"({ins}) -> {outs}"
        # Zero, several, or a nested function result: parenthesize so the
        # arrow nesting stays unambiguous when parsed back.
        return f"({ins}) -> ({outs})"


#: Sentinel dimension size for dynamic dimensions in shaped types.
DYNAMIC = -1


class _ShapedType(ParametrizedAttribute, TypeAttribute):
    """Shared implementation of tensor/vector/memref shaped types."""

    parameter_names = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: Attribute):
        from repro.ir.params import ArrayParam

        shape_param = ArrayParam(
            tuple(IntegerParam(d, 64, True) for d in shape)
        )
        super().__init__((shape_param, element_type))

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(p.value for p in self.parameters[0].elements)

    @property
    def element_type(self) -> Attribute:
        return self.parameters[1]

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def num_elements(self) -> int:
        if not self.has_static_shape():
            raise VerifyError("cannot count elements of a dynamic shape")
        total = 1
        for d in self.shape:
            total *= d
        return total

    def verify(self) -> None:
        if not isinstance(self.element_type, TypeAttribute):
            raise VerifyError(
                f"shaped type element {self.element_type!r} is not a type"
            )
        for d in self.shape:
            if d < 0 and d != DYNAMIC:
                raise VerifyError(f"invalid dimension size {d}")

    def _shape_str(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        return f"{dims}x" if dims else ""


class TensorType(_ShapedType):
    """A dense tensor type ``tensor<4x?xf32>``."""

    name = "builtin.tensor"

    def __str__(self) -> str:
        return f"tensor<{self._shape_str()}{self.element_type}>"


class VectorType(_ShapedType):
    """A fixed-shape vector type ``vector<4xf32>``."""

    name = "builtin.vector"

    def verify(self) -> None:
        super().verify()
        if not self.has_static_shape():
            raise VerifyError("vector types require a static shape")
        if self.rank == 0:
            raise VerifyError("vector types must have at least one dimension")

    def __str__(self) -> str:
        return f"vector<{self._shape_str()}{self.element_type}>"


class MemRefType(_ShapedType):
    """A buffer reference type ``memref<4x4xf32>``."""

    name = "builtin.memref"

    def __str__(self) -> str:
        return f"memref<{self._shape_str()}{self.element_type}>"


# ---------------------------------------------------------------------------
# Interned shorthands (the paper's f32, i32, … abbreviations)
# ---------------------------------------------------------------------------
# Built through ``Attribute.get`` so the module-level singletons seed the
# process-wide uniquer: any later ``IntegerType.get(32)`` (e.g. from the
# textual parser) resolves to these exact objects.

i1 = IntegerType.get(1)
i8 = IntegerType.get(8)
i16 = IntegerType.get(16)
i32 = IntegerType.get(32)
i64 = IntegerType.get(64)
f16 = FloatType.get(16)
f32 = FloatType.get(32)
f64 = FloatType.get(64)
index = IndexType.get()
