"""Pattern rewriting: the dynamic compilation flow of §3."""

from repro.rewriting.conversion import (
    ConversionError,
    ConversionTarget,
    TypeConverter,
    apply_full_conversion,
    apply_partial_conversion,
)
from repro.rewriting.declarative import (
    DeclarativePattern,
    infer_result_types,
    parse_patterns,
)
from repro.rewriting.driver import (
    GreedyPatternDriver,
    PatternStatistics,
    apply_patterns_greedily,
)
from repro.rewriting.matcher import (
    MatcherTable,
    PatternSlot,
)
from repro.rewriting.passes import (
    Canonicalizer,
    CommonSubexpressionElimination,
    DeadCodeElimination,
    Pass,
    PassManager,
    VerifyPass,
    default_is_pure,
)
from repro.rewriting.pattern import (
    FunctionPattern,
    PatternRewriter,
    RewritePattern,
    pattern,
)

__all__ = [
    "ConversionError",
    "ConversionTarget",
    "TypeConverter",
    "apply_full_conversion",
    "apply_partial_conversion",
    "DeclarativePattern",
    "infer_result_types",
    "parse_patterns",
    "GreedyPatternDriver",
    "MatcherTable",
    "PatternSlot",
    "PatternStatistics",
    "apply_patterns_greedily",
    "Canonicalizer",
    "CommonSubexpressionElimination",
    "DeadCodeElimination",
    "Pass",
    "PassManager",
    "VerifyPass",
    "default_is_pure",
    "FunctionPattern",
    "PatternRewriter",
    "RewritePattern",
    "pattern",
]
