"""A small pass infrastructure: DCE, CSE, canonicalization, pipelines.

§3 notes that "more work is needed to define an entire transformation
pipeline dynamically"; this module supplies the pipeline half: passes
are objects with a ``run(op) -> bool`` method, composed by a
:class:`PassManager`.  The built-in passes are the classic cleanups
every SSA compiler ships:

* :class:`DeadCodeElimination` — erase pure operations with no users;
* :class:`CommonSubexpressionElimination` — deduplicate structurally
  identical pure operations within a block (dominance-safe because it
  only looks backwards in the same block);
* :class:`Canonicalizer` — a greedy pattern-application pass wrapping a
  pattern set.

Purity is determined by a configurable predicate; by default an
operation is treated as pure when it has results, no regions, no
successors, and is not a terminator — a conservative approximation the
caller can replace (e.g. with IRDL-derived effect metadata).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.ir.attributes import Attribute
from repro.ir.context import Context
from repro.ir.operation import Operation
from repro.obs import timing as _timing
from repro.obs.instrument import OBS, count_ops
from repro.obs.timing import PassRunRecord
from repro.rewriting.driver import GreedyPatternDriver
from repro.rewriting.pattern import RewritePattern


def default_is_pure(op: Operation) -> bool:
    """Conservative purity: value-producing, region-free, non-terminator."""
    if not op.results or op.regions or op.successors:
        return False
    if op.definition is not None and op.definition.is_terminator:
        return False
    return True


class Pass:
    """Base class: a named transformation over an operation tree."""

    name = "pass"

    #: The shared :class:`~repro.analysis.dataflow.manager.
    #: AnalysisManager`, set by the :class:`PassManager` before each
    #: :meth:`run`; ``None`` when the pass runs standalone.  Passes that
    #: need dominance/liveness should query it so repeated runs over an
    #: unchanged tree reuse cached results.
    analyses = None

    def run(self, root: Operation) -> bool:
        """Transform ``root``; return True when anything changed."""
        raise NotImplementedError

    def statistics(self) -> list[tuple[str, int]]:
        """``(label, value)`` rows for the ``--pass-statistics`` report."""
        return []


class DeadCodeElimination(Pass):
    """Erase pure operations none of whose results are used.

    Runs to a fixpoint so chains of dead producers disappear in one
    invocation.
    """

    name = "dce"

    def __init__(self, is_pure: Callable[[Operation], bool] = default_is_pure):
        self.is_pure = is_pure

    def run(self, root: Operation) -> bool:
        changed_any = False
        while True:
            dead = [
                op
                for op in root.walk(include_self=False)
                if self.is_pure(op)
                and not any(result.has_uses for result in op.results)
            ]
            if not dead:
                return changed_any
            for op in dead:
                op.erase()
            changed_any = True


def _operation_key(op: Operation) -> tuple:
    """A structural key: two pure ops with equal keys compute the same."""
    return (
        op.name,
        tuple(id(operand) for operand in op.operands),
        tuple(sorted(op.attributes.items(), key=lambda kv: kv[0])),
        tuple(result.type for result in op.results),
    )


class CommonSubexpressionElimination(Pass):
    """Deduplicate structurally identical pure operations.

    Within a block the pass looks backwards (a previous identical op
    trivially dominates).  With ``use_dominance=True`` it also merges
    across blocks of the same region: an op is replaced by an identical
    op in a strictly dominating block.
    """

    name = "cse"

    def __init__(self, is_pure: Callable[[Operation], bool] = default_is_pure,
                 use_dominance: bool = False):
        self.is_pure = is_pure
        self.use_dominance = use_dominance

    def run(self, root: Operation) -> bool:
        changed = False
        for region_op in root.walk():
            for region in region_op.regions:
                if self.use_dominance and len(region.blocks) > 1:
                    changed |= self._run_on_region(region)
                else:
                    for block in region.blocks:
                        changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block) -> bool:
        seen: dict[tuple, Operation] = {}
        changed = False
        for op in list(block.ops):
            if not self.is_pure(op):
                continue
            key = _operation_key(op)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            op.replace_by(list(existing.results))
            changed = True
        return changed

    def _run_on_region(self, region) -> bool:
        from repro.ir.dominance import DominanceInfo

        if self.analyses is not None:
            info = self.analyses.dominance(region)
        else:
            info = DominanceInfo(region)
        seen: dict[tuple, list[Operation]] = {}
        changed = False
        # Visit blocks so dominators come first: order by dominator-tree
        # depth (entry has depth 0).
        def depth(block) -> int:
            steps = 0
            current = block
            while True:
                parent = info.immediate_dominator(current)
                if parent is None:
                    return steps
                current = parent
                steps += 1

        for block in sorted(region.blocks, key=depth):
            for op in list(block.ops):
                if not self.is_pure(op):
                    continue
                key = _operation_key(op)
                for candidate in seen.get(key, ()):
                    candidate_block = candidate.parent
                    if candidate_block is block and (
                        block.index_of(candidate) < block.index_of(op)
                    ):
                        op.replace_by(list(candidate.results))
                        changed = True
                        break
                    if candidate_block is not block and info.dominates_block(
                        candidate_block, block
                    ):
                        op.replace_by(list(candidate.results))
                        changed = True
                        break
                else:
                    seen.setdefault(key, []).append(op)
        return changed


class Canonicalizer(Pass):
    """Apply a pattern set greedily to a fixpoint.

    The persistent :class:`GreedyPatternDriver` compiles the pattern
    set into its root-indexed matcher table once, at pass construction,
    so repeated :meth:`run` calls amortize the table build.
    """

    name = "canonicalize"

    def __init__(self, context: Context, patterns: Sequence[RewritePattern],
                 max_iterations: int = 64, validate_rewrites: bool = False):
        self.context = context
        self.patterns = list(patterns)
        self.max_iterations = max_iterations
        #: The persistent driver; its statistics accumulate across runs
        #: and back this pass's :meth:`statistics`.
        self.driver = GreedyPatternDriver(context, self.patterns,
                                          max_iterations,
                                          validate_rewrites=validate_rewrites)
        self.driver.remark_origin = self.name

    def run(self, root: Operation) -> bool:
        self.driver.analyses = self.analyses
        return self.driver.run(root)

    def statistics(self) -> list[tuple[str, int]]:
        return self.driver.statistics()


class VerifyPass(Pass):
    """Verify the IR (structure + dialect invariants + SSA dominance)."""

    name = "verify"

    def run(self, root: Operation) -> bool:
        from repro.ir.dominance import verify_dominance

        root.verify()
        verify_dominance(root, self.analyses)
        return False


class PassManager:
    """Runs a pipeline of passes, optionally verifying between them.

    Every run produces two logs: :attr:`history`, the compact
    ``(pass name, changed)`` pairs, and :attr:`records`, the
    :class:`~repro.obs.timing.PassRunRecord` list carrying per-pass wall
    time (always) and IR op-count deltas (when the observability layer
    is active).  ``verify_each`` interleaves a :class:`VerifyPass` after
    every pass; its cost shows up as ``verify`` rows in :attr:`records`
    and hence in the ``--timing`` report.
    """

    def __init__(self, passes: Iterable[Pass] = (),
                 verify_each: bool = False, analyses=None):
        from repro.analysis.dataflow.manager import AnalysisManager

        self.passes: list[Pass] = list(passes)
        self.verify_each = verify_each
        #: The shared analysis cache, handed to every pass via its
        #: ``analyses`` attribute and invalidated after changing passes.
        self.analyses = analyses if analyses is not None else AnalysisManager()
        #: (pass name, changed) log of the last run.
        self.history: list[tuple[str, bool]] = []
        #: Timed per-pass records of the last run (incl. ``verify`` rows).
        self.records: list[PassRunRecord] = []

    def add(self, new_pass: Pass) -> "PassManager":
        self.passes.append(new_pass)
        return self

    def run(self, root: Operation) -> bool:
        self.history = []
        self.records = []
        verifier = VerifyPass()
        verifier.analyses = self.analyses
        changed_any = False
        for pipeline_pass in self.passes:
            pipeline_pass.analyses = self.analyses
            changed = self._run_timed(pipeline_pass, root)
            self.history.append((pipeline_pass.name, changed))
            changed_any |= changed
            if changed:
                # Coarse pass-boundary invalidation: a pass that edited
                # the tree may have staled any cached analysis it did
                # not itself invalidate incrementally.
                self.analyses.invalidate_all()
            if self.verify_each:
                self._run_timed(verifier, root)
        return changed_any

    def _run_timed(self, pipeline_pass: Pass, root: Operation) -> bool:
        active = OBS.active
        ops_before = count_ops(root) if active else None
        start = _timing.now()
        if active:
            with OBS.tracer.span(f"pass:{pipeline_pass.name}",
                                 category="pass"):
                changed = pipeline_pass.run(root)
        else:
            changed = pipeline_pass.run(root)
        wall_time = _timing.now() - start
        ops_after = count_ops(root) if active else None
        self.records.append(PassRunRecord(
            pipeline_pass.name, wall_time, changed, ops_before, ops_after,
        ))
        if OBS.metrics.enabled:
            OBS.metrics.timer(
                f"rewriting.passes.{pipeline_pass.name}"
            ).record(wall_time)
        remarks = OBS.remarks
        if remarks.enabled:
            remarks.emit(
                "pass",
                origin=pipeline_pass.name,
                name=pipeline_pass.name,
                op=root.name,
                location=root.location,
                changed=changed,
                wall_time_s=wall_time,
                ops_before=ops_before,
                ops_after=ops_after,
            )
        return changed

    def timing_report(self) -> str:
        """The MLIR-style execution-time report of the last run."""
        from repro.obs.report import render_timing_report

        return render_timing_report(self.records)

    def statistics_report(self) -> str:
        """The ``--pass-statistics`` report over passes that have stats."""
        from repro.obs.report import render_pass_statistics

        sections = [
            (pipeline_pass.name, pipeline_pass.statistics())
            for pipeline_pass in self.passes
            if pipeline_pass.statistics()
        ]
        return render_pass_statistics(sections)
