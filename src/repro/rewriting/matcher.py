"""Compiled root-indexed pattern matching for the greedy driver.

The naive driver offers every operation to every pattern, so one round
costs ``O(ops x patterns)`` attribute loads, name comparisons, and
polymorphic ``match_and_rewrite`` calls.  This module applies the same
definition-time specialization trick :mod:`repro.irdl.codegen` uses for
verifiers to the *matching* side of rewriting:

* at driver construction the registered patterns are partitioned by
  root operation name into a dict-dispatched **matcher table** — during
  the walk, one ``dict.get(op.name)`` replaces the per-pattern
  ``op_name`` comparisons, and ops no pattern can root at cost a single
  lookup;
* each bucket is lowered to one flat, ``exec``-compiled Python function
  that runs every candidate pattern in benefit order: the generated
  code inlines each pattern's **match prefix** — operand/result arity
  literals and root-attribute equality against interned constants via
  identity tests (with a structural ``==`` fallback for non-interned
  attributes) — and only calls the pattern's residual
  ``match_and_rewrite`` predicate when the prefix holds.  Statistics
  objects and the remark protocol are threaded through the generated
  source, so the observable surface (per-pattern tallies,
  applied/missed remarks) matches the interpretive loop;
* patterns registered *without* an ``op_name`` defeat the index: they
  land in a catch-all bucket that is merged into every root bucket (and
  offered to unknown roots), and the ``unindexed-rewrite-pattern`` lint
  flags them.

The interpretive round-based driver remains the reference
implementation: ``REPRO_NO_COMPILED_MATCH=1`` (or ``irdl-opt
--no-compiled-match``) disables the compiled table and the worklist
walk, and ``tests/rewriting/test_driver_differential.py`` proves the
two drivers agree on final IR, statistics, and remark verdicts.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.irdl.codegen import Emitter
from repro.obs.instrument import OBS

if TYPE_CHECKING:
    from repro.rewriting.driver import PatternStatistics
    from repro.rewriting.pattern import RewritePattern

__all__ = [
    "MatcherTable",
    "PatternSlot",
    "STATS",
    "enabled",
    "set_enabled",
]


_ENV_FLAG = "REPRO_NO_COMPILED_MATCH"
_disabled_by_flag = False

#: Process-lifetime matcher-compiler statistics (mirrored into
#: ``repro.obs`` as ``rewriting.matcher.*`` whenever metrics are
#: enabled at table-construction time).
STATS = {
    "tables_compiled": 0,
    "buckets_compiled": 0,
    "patterns_indexed": 0,
    "patterns_unindexed": 0,
    "source_bytes": 0,
}


def enabled() -> bool:
    """Whether compiled matching (and the worklist driver) is on.

    Consulted at *driver construction* time: flipping the switch
    affects drivers built afterwards, never already-built tables.
    """
    if _disabled_by_flag:
        return False
    return os.environ.get(_ENV_FLAG, "") not in ("1", "true", "yes", "on")


def set_enabled(value: bool) -> None:
    """Force compiled matching on/off (``irdl-opt --no-compiled-match``)."""
    global _disabled_by_flag
    _disabled_by_flag = not value


class PatternSlot:
    """One registered pattern plus its driver-owned bookkeeping.

    ``label`` is the driver's *disambiguated* statistics label (distinct
    even when two patterns share a class or function name); ``stats`` is
    the mutable tally row the generated matcher code updates in place.
    """

    __slots__ = ("pattern", "stats", "label")

    def __init__(
        self, pattern: "RewritePattern", stats: "PatternStatistics", label: str
    ):
        self.pattern = pattern
        self.stats = stats
        self.label = label


class _Bucket:
    """One compiled dispatch target: all candidate slots for a root name."""

    __slots__ = ("match", "slots", "source", "size")

    def __init__(self, match, slots: Sequence[PatternSlot], source: str):
        #: ``match(op, rewriter, remarks, origin) -> int`` — the applied
        #: slot's index into :attr:`slots`, or ``-1`` when nothing fired.
        self.match = match
        self.slots = list(slots)
        self.source = source
        #: Plain int (not a property): read once per non-firing offer.
        self.size = len(self.slots)


def _compile_bucket(root_name: str, slots: Sequence[PatternSlot]) -> _Bucket:
    """Lower one bucket's candidate list to a flat matcher function.

    The generated function mirrors the reference loop exactly: attempts
    are tallied before the prefix runs (the interpretive driver counts
    an attempt per *offer*, prefix included), an ``applied`` remark is
    emitted for the fired slot, and a ``missed`` remark for every
    offered-but-unmatched slot that declared an ``op_name`` — same
    remark fields, same order.
    """
    em = Emitter()
    em.emit(0, f"# compiled matcher bucket: root {root_name!r}, "
               f"{len(slots)} pattern(s)")
    em.emit(0, "def __match(op, rewriter, remarks, origin):")
    em.emit(1, "_name = op.name")
    if any(slot.pattern.root_attrs for slot in slots):
        em.emit(1, "_attrs = op.attributes")
    from repro.rewriting.pattern import FunctionPattern

    for index, slot in enumerate(slots):
        rewrite_pattern = slot.pattern
        # A plain FunctionPattern's match_and_rewrite only forwards to
        # the wrapped function; bind that directly to skip a call level
        # (subclasses may override, so only the exact type qualifies).
        residual = (
            rewrite_pattern.fn
            if type(rewrite_pattern) is FunctionPattern
            else rewrite_pattern.match_and_rewrite
        )
        fn = em.bind(residual, "p")
        st = em.bind(slot.stats, "s")
        em.emit(1, f"{st}.attempts += 1")
        conds: list[str] = []
        if rewrite_pattern.operand_arity is not None:
            conds.append(f"len(op.operands) == {int(rewrite_pattern.operand_arity)}")
        if rewrite_pattern.result_arity is not None:
            conds.append(f"len(op.results) == {int(rewrite_pattern.result_arity)}")
        for key, value in (rewrite_pattern.root_attrs or {}).items():
            const = em.bind(value, "a")
            probe = f"_attrs.get({key!r})"
            # Identity is the uniqued-attribute fast path; the ``==``
            # arm keeps non-interned attributes from being rejected.
            conds.append(f"({probe} is {const} or {probe} == {const})")
        conds.append(f"{fn}(op, rewriter)")
        em.emit(1, f"if {' and '.join(conds)}:")
        em.emit(2, f"{st}.applications += 1")
        em.emit(2, "if remarks is not None:")
        em.emit(3, f"remarks.emit('applied', origin=origin, "
                   f"name={slot.label!r}, op=_name, "
                   f"location=rewriter.root_location)")
        em.emit(2, f"return {index}")
        if rewrite_pattern.op_name is not None:
            em.emit(1, "if remarks is not None:")
            em.emit(2, f"remarks.emit('missed', origin=origin, "
                       f"name={slot.label!r}, op=_name, "
                       f"location=rewriter.root_location, "
                       f"message='pattern did not match')")
    em.emit(1, "return -1")
    source = em.source()
    fn = em.compile("__match", f"<matcher:{root_name}>")
    STATS["buckets_compiled"] += 1
    STATS["source_bytes"] += len(source)
    return _Bucket(fn, slots, source)


class MatcherTable:
    """The root-op-indexed dispatch table for one pattern set.

    ``slots`` must already be in global benefit order (the driver sorts
    once); each per-root bucket preserves that order over the root's own
    patterns *merged with* the catch-all patterns, so benefit tie-breaks
    are identical to the reference driver's linear scan.
    """

    __slots__ = ("buckets", "catchall", "catchall_slots")

    def __init__(self, slots: Sequence[PatternSlot]):
        indexed_roots: dict[str, None] = {}
        catchall_slots = [
            slot for slot in slots if slot.pattern.op_name is None
        ]
        for slot in slots:
            if slot.pattern.op_name is not None:
                indexed_roots.setdefault(slot.pattern.op_name)
        #: root op name -> compiled bucket over that root's candidates.
        self.buckets: dict[str, _Bucket] = {}
        for name in indexed_roots:
            merged = [
                slot for slot in slots
                if slot.pattern.op_name in (None, name)
            ]
            self.buckets[name] = _compile_bucket(name, merged)
        #: The bucket offered to roots no pattern declared (only the
        #: unindexed patterns can match there); ``None`` when every
        #: pattern is indexed — unknown roots then cost one dict miss.
        self.catchall: _Bucket | None = (
            _compile_bucket("<any>", catchall_slots) if catchall_slots else None
        )
        self.catchall_slots = catchall_slots
        STATS["tables_compiled"] += 1
        STATS["patterns_indexed"] += len(slots) - len(catchall_slots)
        STATS["patterns_unindexed"] += len(catchall_slots)
        metrics = OBS.metrics
        if metrics.enabled:
            scope = metrics.scope("rewriting.matcher")
            scope.counter("tables_compiled").inc()
            scope.counter("buckets_compiled").inc(
                len(self.buckets) + (1 if self.catchall else 0)
            )
            scope.counter("patterns_unindexed").inc(len(catchall_slots))

    def bucket_for(self, op_name: str) -> _Bucket | None:
        """The compiled bucket for a root name (``None``: skip the op)."""
        bucket = self.buckets.get(op_name)
        if bucket is not None:
            return bucket
        return self.catchall

    def sources(self) -> dict[str, str]:
        """Generated source per bucket, for tests and debugging."""
        out = {name: bucket.source for name, bucket in self.buckets.items()}
        if self.catchall is not None:
            out["<any>"] = self.catchall.source
        return out
