"""A greedy pattern application driver, in the style of MLIR's.

Two walk strategies share one observable surface:

* the **compiled worklist driver** (the default): patterns are
  partitioned into a root-op-indexed :class:`~repro.rewriting.matcher.
  MatcherTable` of ``exec``-compiled bucket functions, and after the
  seeding walk only the IR a rewrite could have affected is revisited —
  the inserted ops, the users of replaced results, the parents of
  erased ops, and the defining ops of erased ops' operands;
* the **interpretive round-based driver** (the reference
  implementation, behind ``REPRO_NO_COMPILED_MATCH`` / ``irdl-opt
  --no-compiled-match``): every round re-walks the whole module and
  offers every op to every pattern.

Both honor the same contracts: benefit-descending pattern order with
registration-order tie-breaks, the first firing pattern wins an op and
ends its offer round, at most ``max_iterations`` rounds/generations,
and identical statistics/remark semantics (the differential test pins
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ir.context import Context
from repro.ir.operation import Operation
from repro.obs.instrument import OBS
from repro.rewriting import matcher
from repro.rewriting.matcher import MatcherTable, PatternSlot
from repro.rewriting.pattern import PatternRewriter, RewritePattern


@dataclass
class PatternStatistics:
    """Match/apply tallies for one pattern label."""

    attempts: int = 0
    applications: int = 0


def _is_stale(op: Operation, root: Operation) -> bool:
    """Whether ``op`` is no longer attached under ``root``.

    Erasing an op detaches it but leaves the parent links *inside* its
    regions intact, so a nested survivor of an erased ancestor still has
    ``op.parent``.  Climbing the ancestor chain catches both the
    directly-erased op (no parent block) and anything stranded inside an
    erased ancestor (the chain dead-ends before reaching ``root``).
    """
    current = op
    while current is not root:
        block = current.parent
        if block is None or block.parent is None:
            return True
        current = block.parent.parent
        if current is None:
            return True
    return False


class GreedyPatternDriver:
    """Applies a pattern set to a fixpoint.

    Patterns are sorted by descending benefit.  By default the patterns
    are compiled into a root-indexed matcher table and the walk is
    incremental (see the module docstring); with compiled matching
    disabled, each round walks every operation under the root and
    offers it to each applicable pattern.  Either way, rounds repeat
    until no pattern fires or ``max_iterations`` is hit.

    The driver keeps running statistics (match attempts vs. rewrites per
    pattern, rounds to fixpoint) which accumulate across :meth:`run`
    calls; they feed ``irdl-opt --pass-statistics`` and, when the
    observability layer is enabled, the global metrics registry.
    """

    def __init__(
        self,
        context: Context,
        patterns: Sequence[RewritePattern],
        max_iterations: int = 64,
        validate_rewrites: bool = False,
    ):
        self.context = context
        self.patterns = sorted(patterns, key=lambda p: -p.benefit)
        self.max_iterations = max_iterations
        #: ``--validate-rewrites``: re-check dominance, def-use
        #: integrity, and the verifier around every application.
        self.validate_rewrites = validate_rewrites
        #: Optional :class:`~repro.analysis.dataflow.manager.
        #: AnalysisManager`; when set, the driver invalidates the scopes
        #: each rewrite touched (so unrelated cached analyses survive)
        #: and validation reuses its cached dominator trees.
        self.analyses = None
        #: The ``origin`` field of emitted remarks; the owning pass
        #: (e.g. the Canonicalizer) overwrites it with its own name.
        self.remark_origin = "greedy-driver"
        self.rewrites_applied = 0
        self.match_attempts = 0
        self.rounds = 0
        self.validations = 0
        self.validation_failures = 0
        #: Ops pushed onto the incremental worklist after rewrites
        #: (0 under the reference driver, which re-walks instead).
        self.worklist_pushes = 0
        #: Per-pattern tallies, keyed by the disambiguated label.
        self.pattern_stats: dict[str, PatternStatistics] = {}
        self._slots: list[PatternSlot] = []
        label_counts: dict[str, int] = {}
        for rewrite_pattern in self.patterns:
            base = rewrite_pattern.label
            n = label_counts.get(base, 0) + 1
            label_counts[base] = n
            # Two patterns reporting under one name (two instances of a
            # class, two wrapped functions with the same __name__) get
            # distinct rows: the first keeps the bare label.
            label = base if n == 1 else f"{base}#{n}"
            stats = PatternStatistics()
            self.pattern_stats[label] = stats
            self._slots.append(PatternSlot(rewrite_pattern, stats, label))
        self._compiled = matcher.enabled()
        self._table: MatcherTable | None = (
            MatcherTable(self._slots) if self._compiled else None
        )
        self._lint_unindexed()

    def _lint_unindexed(self) -> None:
        """Remark on patterns that defeat root indexing (both paths)."""
        remarks = OBS.remarks
        if not remarks.enabled:
            return
        for slot in self._slots:
            rewrite_pattern = slot.pattern
            if rewrite_pattern.op_name is not None:
                continue
            if "unindexed-rewrite-pattern" in rewrite_pattern.suppressions:
                continue
            remarks.emit(
                "lint",
                origin="pattern-index",
                name="unindexed-rewrite-pattern",
                op="",
                message=(
                    f"pattern '{slot.label}' has no op_name: it cannot be "
                    "root-indexed and is offered to every operation"
                ),
            )

    # -- post-application hooks ----------------------------------------

    def _after_fire(self, root: Operation, rewriter: PatternRewriter,
                    fired_op: Operation, new_ops: Sequence[Operation],
                    erased_parents: Sequence[Operation],
                    label: str, op_name: str) -> None:
        """Invalidate cached analyses and (optionally) validate one fire."""
        if self.analyses is not None:
            for changed in (fired_op, *new_ops, *erased_parents):
                self.analyses.invalidate_scope(changed)
        if self.validate_rewrites:
            self._validate_fire(root, rewriter, fired_op, new_ops,
                                label, op_name)

    def _validation_scope(self, root: Operation, fired_op: Operation,
                          new_ops: Sequence[Operation]) -> Operation:
        """The op whose subtree one rewrite could have corrupted.

        The enclosing op of the first surviving participant (an inserted
        op, or the matched root when it was updated in place) — its
        subtree contains every block the rewrite edited.  Falls back to
        ``root`` when everything the rewrite touched was erased.
        """
        for candidate in (*new_ops, fired_op):
            if _is_stale(candidate, root):
                continue
            enclosing = candidate.parent_op
            return enclosing if enclosing is not None else candidate
        return root

    def _validate_fire(self, root: Operation, rewriter: PatternRewriter,
                       fired_op: Operation, new_ops: Sequence[Operation],
                       label: str, op_name: str) -> None:
        """``--validate-rewrites``: re-check SSA invariants after a fire.

        Checks, on the touched subtree: def-use integrity (no operand
        defined by an erased op), SSA dominance, and the registered
        verifiers.  A violation becomes a ``verify-failure`` remark and
        a :class:`VerifyError` naming the offending pattern.
        """
        from repro.ir.exceptions import VerifyError

        scope = self._validation_scope(root, fired_op, new_ops)
        self.validations += 1
        metrics = OBS.metrics
        if metrics.enabled:
            metrics.counter("rewriting.validate.checks").inc()
        try:
            self._check_def_use(scope, root)
            from repro.ir.dominance import verify_dominance

            verify_dominance(scope, self.analyses)
            scope.verify()
        except VerifyError as error:
            self.validation_failures += 1
            if metrics.enabled:
                metrics.counter("rewriting.validate.failures").inc()
            remarks = OBS.remarks
            if remarks.enabled:
                remarks.emit(
                    "verify-failure",
                    origin=self.remark_origin,
                    name=label,
                    op=op_name,
                    location=rewriter.root_location,
                    message=f"rewrite validation failed: {error}",
                )
            raise VerifyError(
                f"rewrite pattern '{label}' applied to {op_name} broke IR "
                f"invariants: {error}",
                obj=getattr(error, "obj", None) or scope,
            ) from error

    def _check_def_use(self, scope: Operation, root: Operation) -> None:
        """Every operand under ``scope`` must have a live definition."""
        from repro.ir.exceptions import VerifyError
        from repro.ir.value import OpResult, Use

        for op in scope.walk():
            for i, operand in enumerate(op.operands):
                if isinstance(operand, OpResult):
                    definer = operand.op
                    if definer.parent is None or _is_stale(definer, root):
                        raise VerifyError(
                            f"operand #{i} of {op.name} is a result of "
                            f"erased op {definer.name}",
                            obj=op,
                        )
                else:  # block argument
                    block = operand.owner
                    if block.parent is None:
                        raise VerifyError(
                            f"operand #{i} of {op.name} is an argument of "
                            f"a detached block",
                            obj=op,
                        )
                if Use(op, i) not in operand.uses:
                    raise VerifyError(
                        f"use-list of operand #{i} of {op.name} lost its "
                        f"back-reference",
                        obj=op,
                    )

    def run(self, root: Operation) -> bool:
        """Apply patterns under ``root``; returns True if anything changed."""
        any_change = False
        with OBS.tracer.span("rewriting.greedy_driver", category="rewriting"):
            if self._table is not None:
                any_change = self._run_worklist(root, self._table)
            else:
                for _ in range(self.max_iterations):
                    self.rounds += 1
                    rewriter = PatternRewriter(self.context)
                    self._one_round(root, rewriter)
                    if not rewriter.changed:
                        break
                    any_change = True
        if OBS.metrics.enabled:
            scope = OBS.metrics.scope("rewriting.driver")
            scope.counter("rounds").inc(self.rounds)
            scope.counter("match_attempts").inc(self.match_attempts)
            scope.counter("rewrites_applied").inc(self.rewrites_applied)
            if self.worklist_pushes:
                scope.counter("worklist_pushes").inc(self.worklist_pushes)
        return any_change

    # -- compiled worklist path ----------------------------------------

    def _run_worklist(self, root: Operation, table: MatcherTable) -> bool:
        """Seed with one full walk, then revisit only affected ops.

        Work is processed in *generations* (one generation = one pass
        over the current worklist), which preserves the round-based
        driver's ``max_iterations`` contract as a revisit cap and keeps
        :attr:`rounds` meaning "iterations to fixpoint, final quiet
        iteration included".
        """
        remarks = OBS.remarks
        remark_engine = remarks if remarks.enabled else None
        origin = self.remark_origin
        buckets = table.buckets
        catchall = table.catchall
        any_change = False
        worklist: list[Operation] = list(root.walk(include_self=False))
        for _ in range(self.max_iterations):
            self.rounds += 1
            rewriter = PatternRewriter(self.context)
            touched = rewriter.touched
            replaced = rewriter.replaced_values
            parents = rewriter.erased_parents
            defs = rewriter.erased_defs
            # Cursors into the rewriter lists, advanced after each fire:
            # between fires patterns do not mutate (the same invariant
            # the ``changed`` flag relies on), so no per-op snapshots.
            n_touched = n_replaced = n_parents = n_defs = 0
            attempts = 0
            fired = 0
            next_work: list[Operation] = []
            next_seen: set[int] = set()

            def push(op: Operation) -> None:
                if op is root or id(op) in next_seen:
                    return
                next_seen.add(id(op))
                next_work.append(op)

            for op in worklist:
                block = op.parent
                if block is None:
                    continue
                region = block.parent
                if region is None or (
                    region.parent is not root and _is_stale(op, root)
                ):
                    continue
                bucket = buckets.get(op.name)
                if bucket is None:
                    bucket = catchall
                    if bucket is None:
                        continue
                rewriter.root_location = op.location
                op_name = op.name
                index = bucket.match(op, rewriter, remark_engine, origin)
                if index < 0:
                    attempts += bucket.size
                    continue
                attempts += index + 1
                fired += 1
                self.rewrites_applied += 1
                any_change = True
                # Seed the next generation with everything this rewrite
                # could have affected (and, recursively, what they use).
                new_ops = touched[n_touched:]
                new_parents = parents[n_parents:]
                for new_op in new_ops:
                    push(new_op)
                    for nested in new_op.walk(include_self=False):
                        push(nested)
                for value in replaced[n_replaced:]:
                    for user in value.users():
                        push(user)
                for parent in new_parents:
                    push(parent)
                for definer in defs[n_defs:]:
                    push(definer)
                n_touched = len(touched)
                n_replaced = len(replaced)
                n_parents = len(parents)
                n_defs = len(defs)
                if self.analyses is not None or self.validate_rewrites:
                    self._after_fire(root, rewriter, op, new_ops,
                                     new_parents, bucket.slots[index].label,
                                     op_name)
                if not _is_stale(op, root):
                    # In-place update: the op (and its users) may now
                    # match a pattern that previously missed.
                    push(op)
                    for result in op.results:
                        for user in result.users():
                            push(user)
            self.match_attempts += attempts
            self.worklist_pushes += len(next_work)
            worklist = next_work
            if not fired:
                break
        return any_change

    # -- interpretive reference path -----------------------------------

    def _one_round(self, root: Operation, rewriter: PatternRewriter) -> None:
        attempts = 0
        remarks = OBS.remarks
        emit_remarks = remarks.enabled
        for op in list(root.walk(include_self=False)):
            if _is_stale(op, root):
                continue  # erased (or inside an op erased) this round
            # Captured before the match: a fired rewrite erases ``op``.
            rewriter.root_location = op_location = op.location
            op_name = op.name
            for slot in self._slots:
                rewrite_pattern = slot.pattern
                if (
                    rewrite_pattern.op_name is not None
                    and op.name != rewrite_pattern.op_name
                ):
                    continue
                attempts += 1
                slot.stats.attempts += 1
                n_touched = len(rewriter.touched)
                n_parents = len(rewriter.erased_parents)
                if rewrite_pattern.match_and_rewrite(op, rewriter):
                    self.rewrites_applied += 1
                    slot.stats.applications += 1
                    if emit_remarks:
                        remarks.emit(
                            "applied",
                            origin=self.remark_origin,
                            name=slot.label,
                            op=op_name,
                            location=op_location,
                        )
                    if self.analyses is not None or self.validate_rewrites:
                        self._after_fire(
                            root, rewriter, op,
                            rewriter.touched[n_touched:],
                            rewriter.erased_parents[n_parents:],
                            slot.label, op_name,
                        )
                    break
                if emit_remarks and rewrite_pattern.op_name is not None:
                    remarks.emit(
                        "missed",
                        origin=self.remark_origin,
                        name=slot.label,
                        op=op_name,
                        location=op_location,
                        message="pattern did not match",
                    )
        self.match_attempts += attempts

    def statistics(self) -> list[tuple[str, int]]:
        """``(label, value)`` statistic rows for ``--pass-statistics``."""
        rows = [
            ("pattern-match-attempts", self.match_attempts),
            ("pattern-rewrites", self.rewrites_applied),
            ("rounds-to-fixpoint", self.rounds),
        ]
        if self.validations:
            rows.append(("rewrite-validations", self.validations))
            rows.append(("rewrite-validation-failures",
                         self.validation_failures))
        for label in sorted(self.pattern_stats):
            stats = self.pattern_stats[label]
            rows.append((f"{label}.match-attempts", stats.attempts))
            rows.append((f"{label}.rewrites", stats.applications))
        return rows


def apply_patterns_greedily(
    context: Context,
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
    validate_rewrites: bool = False,
) -> bool:
    """Convenience entry point: run patterns under ``root`` to fixpoint."""
    driver = GreedyPatternDriver(context, list(patterns), max_iterations,
                                 validate_rewrites=validate_rewrites)
    return driver.run(root)
