"""A greedy pattern application driver, in the style of MLIR's."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ir.context import Context
from repro.ir.operation import Operation
from repro.obs.instrument import OBS
from repro.rewriting.pattern import PatternRewriter, RewritePattern


@dataclass
class PatternStatistics:
    """Match/apply tallies for one pattern label."""

    attempts: int = 0
    applications: int = 0


class GreedyPatternDriver:
    """Applies a pattern set to a fixpoint by walking the IR repeatedly.

    Patterns are sorted by descending benefit.  Each round walks every
    operation under the root and offers it to each applicable pattern;
    rounds repeat until no pattern fires or ``max_iterations`` is hit.

    The driver keeps running statistics (match attempts vs. rewrites per
    pattern, rounds to fixpoint) which accumulate across :meth:`run`
    calls; they feed ``irdl-opt --pass-statistics`` and, when the
    observability layer is enabled, the global metrics registry.
    """

    def __init__(
        self,
        context: Context,
        patterns: Sequence[RewritePattern],
        max_iterations: int = 64,
    ):
        self.context = context
        self.patterns = sorted(patterns, key=lambda p: -p.benefit)
        self.max_iterations = max_iterations
        #: The ``origin`` field of emitted remarks; the owning pass
        #: (e.g. the Canonicalizer) overwrites it with its own name.
        self.remark_origin = "greedy-driver"
        self.rewrites_applied = 0
        self.match_attempts = 0
        self.rounds = 0
        #: Per-pattern tallies, keyed by :attr:`RewritePattern.label`.
        self.pattern_stats: dict[str, PatternStatistics] = {}
        self._pattern_slots: list[tuple[RewritePattern, PatternStatistics]] = []
        for rewrite_pattern in self.patterns:
            stats = self.pattern_stats.setdefault(
                rewrite_pattern.label, PatternStatistics()
            )
            self._pattern_slots.append((rewrite_pattern, stats))

    def run(self, root: Operation) -> bool:
        """Apply patterns under ``root``; returns True if anything changed."""
        any_change = False
        with OBS.tracer.span("rewriting.greedy_driver", category="rewriting"):
            for _ in range(self.max_iterations):
                self.rounds += 1
                rewriter = PatternRewriter(self.context)
                self._one_round(root, rewriter)
                if not rewriter.changed:
                    break
                any_change = True
        if OBS.metrics.enabled:
            scope = OBS.metrics.scope("rewriting.driver")
            scope.counter("rounds").inc(self.rounds)
            scope.counter("match_attempts").inc(self.match_attempts)
            scope.counter("rewrites_applied").inc(self.rewrites_applied)
        return any_change

    def _one_round(self, root: Operation, rewriter: PatternRewriter) -> None:
        attempts = 0
        remarks = OBS.remarks
        emit_remarks = remarks.enabled
        for op in list(root.walk(include_self=False)):
            if op.parent is None and op is not root:
                continue  # erased by an earlier rewrite this round
            # Captured before the match: a fired rewrite erases ``op``.
            rewriter.root_location = op_location = op.location
            op_name = op.name
            for rewrite_pattern, stats in self._pattern_slots:
                if (
                    rewrite_pattern.op_name is not None
                    and op.name != rewrite_pattern.op_name
                ):
                    continue
                attempts += 1
                stats.attempts += 1
                if rewrite_pattern.match_and_rewrite(op, rewriter):
                    self.rewrites_applied += 1
                    stats.applications += 1
                    if emit_remarks:
                        remarks.emit(
                            "applied",
                            origin=self.remark_origin,
                            name=rewrite_pattern.label,
                            op=op_name,
                            location=op_location,
                        )
                    break
                if emit_remarks and rewrite_pattern.op_name is not None:
                    remarks.emit(
                        "missed",
                        origin=self.remark_origin,
                        name=rewrite_pattern.label,
                        op=op_name,
                        location=op_location,
                        message="pattern did not match",
                    )
        self.match_attempts += attempts

    def statistics(self) -> list[tuple[str, int]]:
        """``(label, value)`` statistic rows for ``--pass-statistics``."""
        rows = [
            ("pattern-match-attempts", self.match_attempts),
            ("pattern-rewrites", self.rewrites_applied),
            ("rounds-to-fixpoint", self.rounds),
        ]
        for label in sorted(self.pattern_stats):
            stats = self.pattern_stats[label]
            rows.append((f"{label}.match-attempts", stats.attempts))
            rows.append((f"{label}.rewrites", stats.applications))
        return rows


def apply_patterns_greedily(
    context: Context,
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
) -> bool:
    """Convenience entry point: run patterns under ``root`` to fixpoint."""
    driver = GreedyPatternDriver(context, list(patterns), max_iterations)
    return driver.run(root)
