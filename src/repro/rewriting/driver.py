"""A greedy pattern application driver, in the style of MLIR's."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.context import Context
from repro.ir.operation import Operation
from repro.rewriting.pattern import PatternRewriter, RewritePattern


class GreedyPatternDriver:
    """Applies a pattern set to a fixpoint by walking the IR repeatedly.

    Patterns are sorted by descending benefit.  Each round walks every
    operation under the root and offers it to each applicable pattern;
    rounds repeat until no pattern fires or ``max_iterations`` is hit.
    """

    def __init__(
        self,
        context: Context,
        patterns: Sequence[RewritePattern],
        max_iterations: int = 64,
    ):
        self.context = context
        self.patterns = sorted(patterns, key=lambda p: -p.benefit)
        self.max_iterations = max_iterations
        self.rewrites_applied = 0

    def run(self, root: Operation) -> bool:
        """Apply patterns under ``root``; returns True if anything changed."""
        any_change = False
        for _ in range(self.max_iterations):
            rewriter = PatternRewriter(self.context)
            self._one_round(root, rewriter)
            if not rewriter.changed:
                return any_change
            any_change = True
        return any_change

    def _one_round(self, root: Operation, rewriter: PatternRewriter) -> None:
        for op in list(root.walk(include_self=False)):
            if op.parent is None and op is not root:
                continue  # erased by an earlier rewrite this round
            for rewrite_pattern in self.patterns:
                if (
                    rewrite_pattern.op_name is not None
                    and op.name != rewrite_pattern.op_name
                ):
                    continue
                if rewrite_pattern.match_and_rewrite(op, rewriter):
                    self.rewrites_applied += 1
                    break


def apply_patterns_greedily(
    context: Context,
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
) -> bool:
    """Convenience entry point: run patterns under ``root`` to fixpoint."""
    driver = GreedyPatternDriver(context, list(patterns), max_iterations)
    return driver.run(root)
