"""Declarative rewrite patterns: Listing 1 with no host-language code.

§3 argues that runtime dialect registration plus dynamic pattern
rewriting "provides the components needed to define a simple
pattern-based compilation flow (e.g., the optimization in Listing 1)
without the need for additional C++ code".  This module supplies that
second component: a small declarative pattern language in the spirit of
MLIR's PDL (itself one of the Table 1 dialects), interpreted over the IR
at rewrite time.

Syntax::

    Pattern norm_of_product {
      Match {
        %na = cmath.norm(%a)
        %nb = cmath.norm(%b)
        %r = arith.mulf(%na, %nb)
      }
      Rewrite {
        %m = cmath.mul(%a, %b)
        %r = cmath.norm(%m)
      }
    }

Semantics:

* the **last** operation of ``Match`` is the root; other lines describe
  producers of its operands, matched through use-def edges;
* placeholders (``%a``) unify — the same name must bind the same SSA
  value everywhere;
* ``Rewrite`` builds replacement operations in order; names bound by the
  match are in scope, and re-bound names (``%r``) must be the root's
  results, whose uses are redirected to the new values;
* result types of replacement ops are inferred from their IRDL
  definitions (constraint variables run in reverse, as for declarative
  formats); for operations without an IRDL definition the type of the
  first operand is used.

Replaced producers are left in place (they may have other uses); run
:class:`~repro.rewriting.passes.DeadCodeElimination` afterwards, exactly
as a production canonicalization pipeline would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.context import Context
from repro.ir.exceptions import VerifyError
from repro.ir.location import Location
from repro.ir.operation import Operation
from repro.ir.value import OpResult, SSAValue
from repro.irdl.constraints import CannotInfer, ConstraintContext
from repro.irdl.defs import OpDef
from repro.rewriting.pattern import PatternRewriter, RewritePattern
from repro.textir.lexer import Lexer, TokenKind
from repro.utils.diagnostics import DiagnosticError
from repro.utils.source import SourceFile, Span


# ---------------------------------------------------------------------------
# Pattern AST
# ---------------------------------------------------------------------------

@dataclass
class OpTemplate:
    """One ``%r = dialect.op(%x, %y)`` line."""

    result_names: list[str]
    op_name: str
    operand_names: list[str]
    #: The template's span in its pattern file (None when constructed
    #: programmatically).
    span: Span | None = None


@dataclass
class PatternDecl:
    name: str
    match_ops: list[OpTemplate] = field(default_factory=list)
    rewrite_ops: list[OpTemplate] = field(default_factory=list)
    #: Lint codes silenced for this pattern (``Suppress "code"`` lines,
    #: same semantics as the IRDL dialect syntax).
    suppressions: list[str] = field(default_factory=list)
    #: The span of the pattern's name in its pattern file.
    span: Span | None = None

    @property
    def root(self) -> OpTemplate:
        return self.match_ops[-1]


def _pattern_error(
    message: str,
    decl: PatternDecl,
    template: OpTemplate | None = None,
    context: Context | None = None,
) -> DiagnosticError:
    """A diagnostic pointing at the best available provenance.

    Preference order: the offending template's span, the pattern
    declaration's span, and — for patterns with no source at all
    (constructed programmatically) — the *dialect definition's* location
    of the template's operation, so the error never renders with an
    empty position.
    """
    span = (template.span if template is not None else None) or decl.span
    if span is not None:
        return DiagnosticError.at(message, span)
    if context is not None and template is not None:
        binding = context.get_op_def(template.op_name)
        location = getattr(binding, "location", None)
        if isinstance(location, Location) and not location.is_unknown:
            return DiagnosticError.at(message, location=location)
    return DiagnosticError.at(message)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class PatternParser:
    """Parses pattern files into :class:`PatternDecl` lists."""

    def __init__(self, text: str, name: str = "<patterns>"):
        self.source = SourceFile(text, name)
        self._lexer = Lexer(self.source)
        self._lookahead = []

    def peek(self):
        if not self._lookahead:
            self._lookahead.append(self._lexer.next_token())
        return self._lookahead[0]

    def next(self):
        return self._lookahead.pop(0) if self._lookahead else self._lexer.next_token()

    def expect(self, kind: TokenKind, what: str):
        token = self.peek()
        if token.kind is not kind:
            raise DiagnosticError.at(
                f"expected {what}, found {token.text!r}", token.span
            )
        return self.next()

    def expect_keyword(self, keyword: str):
        token = self.expect(TokenKind.BARE_IDENT, f"{keyword!r}")
        if token.text != keyword:
            raise DiagnosticError.at(
                f"expected {keyword!r}, found {token.text!r}", token.span
            )
        return token

    def parse_file(self) -> list[PatternDecl]:
        patterns = []
        while self.peek().kind is not TokenKind.EOF:
            patterns.append(self.parse_pattern())
        return patterns

    def parse_pattern(self) -> PatternDecl:
        self.expect_keyword("Pattern")
        name_token = self.expect(TokenKind.BARE_IDENT, "pattern name")
        decl = PatternDecl(name_token.text, span=name_token.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while (self.peek().kind is TokenKind.BARE_IDENT
               and self.peek().text == "Suppress"):
            self.next()
            decl.suppressions.append(
                self.expect(TokenKind.STRING, "lint code string").value
            )
        self.expect_keyword("Match")
        decl.match_ops = self._parse_op_block()
        self.expect_keyword("Rewrite")
        decl.rewrite_ops = self._parse_op_block()
        self.expect(TokenKind.RBRACE, "'}'")
        self._validate(decl)
        return decl

    def _parse_op_block(self) -> list[OpTemplate]:
        self.expect(TokenKind.LBRACE, "'{'")
        templates = []
        while self.peek().kind is not TokenKind.RBRACE:
            templates.append(self._parse_op_template())
        self.expect(TokenKind.RBRACE, "'}'")
        if not templates:
            raise DiagnosticError.at(
                "a pattern section needs at least one operation",
                self.peek().span,
            )
        return templates

    def _parse_op_template(self) -> OpTemplate:
        start_token = self.peek()
        result_names = []
        if self.peek().kind is TokenKind.PERCENT_IDENT:
            result_names.append(self.next().value)
            while self.peek().kind is TokenKind.COMMA:
                self.next()
                result_names.append(
                    self.expect(TokenKind.PERCENT_IDENT, "result name").value
                )
            self.expect(TokenKind.EQUAL, "'='")
        parts = [self.expect(TokenKind.BARE_IDENT, "operation name").text]
        while self.peek().kind is TokenKind.DOT:
            self.next()
            parts.append(self.expect(TokenKind.BARE_IDENT, "name").text)
        operand_names = []
        self.expect(TokenKind.LPAREN, "'('")
        if self.peek().kind is not TokenKind.RPAREN:
            operand_names.append(
                self.expect(TokenKind.PERCENT_IDENT, "operand").value
            )
            while self.peek().kind is TokenKind.COMMA:
                self.next()
                operand_names.append(
                    self.expect(TokenKind.PERCENT_IDENT, "operand").value
                )
        end_token = self.expect(TokenKind.RPAREN, "')'")
        return OpTemplate(
            result_names, ".".join(parts), operand_names,
            span=start_token.span.until(end_token.span),
        )

    def _validate(self, decl: PatternDecl) -> None:
        bound: set[str] = set()
        for template in decl.match_ops:
            bound.update(template.operand_names)
            bound.update(template.result_names)
        root_results = set(decl.root.result_names)
        rewrite_bound = set(bound)
        redefined = set()
        for template in decl.rewrite_ops:
            for operand in template.operand_names:
                if operand not in rewrite_bound:
                    raise _pattern_error(
                        f"pattern {decl.name}: %{operand} is not bound by "
                        "the match section",
                        decl, template,
                    )
            for result in template.result_names:
                if result in bound and result not in root_results:
                    raise _pattern_error(
                        f"pattern {decl.name}: %{result} rebinds a matched "
                        "value that is not a root result",
                        decl, template,
                    )
                rewrite_bound.add(result)
                if result in root_results:
                    redefined.add(result)
        if redefined != root_results:
            missing = ", ".join(f"%{r}" for r in sorted(root_results - redefined))
            raise _pattern_error(
                f"pattern {decl.name}: rewrite must redefine the root "
                f"result(s) {missing}",
                decl,
            )


# ---------------------------------------------------------------------------
# Result-type inference from IRDL definitions
# ---------------------------------------------------------------------------

def infer_result_types(op_def: OpDef, operand_types) -> list:
    """Result types implied by operand types under the op's constraints."""
    cctx = ConstraintContext()
    for arg, operand_type in zip(op_def.operands, operand_types):
        arg.constraint.verify(operand_type, cctx)
    results = []
    for arg in op_def.results:
        try:
            results.append(arg.constraint.infer(cctx))
        except CannotInfer as err:
            raise VerifyError(
                f"cannot infer result {arg.name!r} of "
                f"{op_def.qualified_name} from operand types"
            ) from err
    return results


# ---------------------------------------------------------------------------
# The interpreted pattern
# ---------------------------------------------------------------------------

class DeclarativePattern(RewritePattern):
    """A :class:`RewritePattern` interpreting one :class:`PatternDecl`."""

    def __init__(self, context: Context, decl: PatternDecl):
        self.context = context
        self.decl = decl
        self.op_name = decl.root.op_name
        self.suppressions = tuple(decl.suppressions)
        # Declared match prefix: the compiled matcher table inlines the
        # root's arity checks (the first tests ``_match`` would run) and
        # only calls into the interpretive DAG match past them.
        self.operand_arity = len(decl.root.operand_names)
        self.result_arity = len(decl.root.result_names)

    @property
    def label(self) -> str:
        return self.decl.name

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        bindings: dict[str, SSAValue] = {}
        matched: list[Operation] = []
        if not self._match(op, self.decl.root, bindings, matched):
            return False
        # Replacement ops carry the fused location of the whole matched
        # set — the FusedLoc provenance MLIR attaches on folding.
        fused = Location.fuse(m.location for m in matched)
        self._rewrite(op, bindings, rewriter, fused)
        return True

    # -- matching --------------------------------------------------------

    def _match(self, op: Operation, template: OpTemplate,
               bindings: dict[str, SSAValue],
               matched: list[Operation]) -> bool:
        if op.name != template.op_name:
            return False
        if len(op.operands) != len(template.operand_names):
            return False
        if len(op.results) != len(template.result_names):
            return False
        matched.append(op)
        producers = {
            name: t for t in self.decl.match_ops for name in t.result_names
        }
        for name, value in zip(template.operand_names, op.operands):
            if name in bindings:
                if bindings[name] is not value:
                    return False
                continue
            producer_template = producers.get(name)
            if producer_template is not None and producer_template is not template:
                if not isinstance(value, OpResult):
                    return False
                if not self._match(value.op, producer_template, bindings,
                                   matched):
                    return False
                # _match on the producer bound its result names, including
                # this one; check consistency.
                if bindings.get(name) is not value:
                    return False
                continue
            bindings[name] = value
        for name, result in zip(template.result_names, op.results):
            if name in bindings and bindings[name] is not result:
                return False
            bindings[name] = result
        return True

    # -- rewriting --------------------------------------------------------

    def _rewrite(self, root: Operation, bindings: dict[str, SSAValue],
                 rewriter: PatternRewriter,
                 location: Location | None = None) -> None:
        root_result_names = self.decl.root.result_names
        new_root_values: dict[str, SSAValue] = {}
        values = dict(bindings)
        for template in self.decl.rewrite_ops:
            operands = [values[name] for name in template.operand_names]
            result_types = self._result_types(template, operands)
            new_op = rewriter.create(
                template.op_name, operands=operands,
                result_types=result_types, before=root,
                location=location,
            )
            for name, result in zip(template.result_names, new_op.results):
                values[name] = result
                if name in root_result_names:
                    new_root_values[name] = result
        rewriter.replace_op(
            root, [new_root_values[name] for name in root_result_names]
        )

    def _result_types(self, template: OpTemplate, operands) -> list:
        binding = self.context.get_op_def(template.op_name)
        op_def = getattr(binding, "op_def", None)
        if op_def is not None:
            return infer_result_types(op_def, [v.type for v in operands])
        if not template.result_names:
            return []
        if not operands:
            raise VerifyError(
                f"cannot infer result types of {template.op_name}: no IRDL "
                "definition and no operands"
            )
        return [operands[0].type] * len(template.result_names)


def check_pattern(context: Context,
                  decl: PatternDecl) -> list[tuple[str, str]]:
    """Static applicability problems of one pattern.

    Returns ``(severity, message)`` pairs: ``"error"`` for patterns
    that can never apply for structural reasons (unknown operation,
    operand/result arity that the matcher can never satisfy).  Deeper
    constraint-level checks live in :mod:`repro.analysis.lints`.
    """
    problems: list[tuple[str, str]] = []
    for template in (*decl.match_ops, *decl.rewrite_ops):
        binding = context.get_op_def(template.op_name)
        if binding is None:
            problems.append((
                "error", f"unknown operation {template.op_name!r}"
            ))
            continue
        # Arity is only knowable for IRDL-defined operations: natively
        # registered bindings carry no operand/result declarations.
        op_def = getattr(binding, "op_def", None)
        if op_def is None:
            continue
        if (
            not any(o.is_variadic for o in op_def.operands)
            and len(template.operand_names) != len(op_def.operands)
        ):
            problems.append((
                "error",
                f"{template.op_name} takes {len(op_def.operands)} "
                f"operand(s), the pattern supplies "
                f"{len(template.operand_names)}",
            ))
        if (
            template.result_names
            and not any(r.is_variadic for r in op_def.results)
            and len(template.result_names) > len(op_def.results)
        ):
            problems.append((
                "error",
                f"{template.op_name} produces {len(op_def.results)} "
                f"result(s), the pattern binds "
                f"{len(template.result_names)}",
            ))
    return problems


def parse_patterns(context: Context, text: str,
                   name: str = "<patterns>") -> list[DeclarativePattern]:
    """Parse a pattern file into ready-to-apply rewrite patterns."""
    decls = PatternParser(text, name).parse_file()
    for decl in decls:
        for template in (*decl.match_ops, *decl.rewrite_ops):
            if context.get_op_def(template.op_name) is None:
                raise _pattern_error(
                    f"pattern {decl.name}: unknown operation "
                    f"{template.op_name!r}",
                    decl, template, context,
                )
    return [DeclarativePattern(context, decl) for decl in decls]
