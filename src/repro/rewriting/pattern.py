"""Rewrite patterns and the rewriter handle passed to them.

Together with runtime dialect registration, pattern rewriting provides
"the components needed to define a simple pattern-based compilation flow
(e.g., the optimization in Listing 1) without the need for additional
C++ code" (§3).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.location import UNKNOWN_LOC, Location
from repro.ir.operation import Operation
from repro.ir.value import OpResult, SSAValue


class PatternRewriter:
    """The mutation handle a pattern uses inside ``match_and_rewrite``.

    Tracks whether anything changed so the driver knows when to stop.
    The driver also parks the current root's location in
    :attr:`root_location`; operations a pattern creates without an
    explicit location inherit it, so rewrite products always carry the
    provenance of the op they replace (declarative patterns refine this
    to the fused location of the whole matched set).

    Beyond :attr:`changed`, the rewriter records *what* changed —
    inserted ops (:attr:`touched`), the substitute values of replaced
    results (:attr:`replaced_values`), the parents of erased ops
    (:attr:`erased_parents`), and the defining ops of erased ops'
    operands (:attr:`erased_defs`).  The worklist driver consumes these
    to re-seed only the IR a rewrite could have affected instead of
    re-walking the whole module.
    """

    def __init__(self, context: Context):
        self.context = context
        self.changed = False
        #: Ops inserted this round, re-visited by the worklist driver.
        self.touched: list[Operation] = []
        #: Values substituted for replaced results; their users may now
        #: match patterns that previously missed.
        self.replaced_values: list[SSAValue] = []
        #: Parents of erased ops: an emptied region can enable a match.
        self.erased_parents: list[Operation] = []
        #: Defining ops of erased ops' operands: losing a use can make
        #: them dead (the MLIR driver pushes these for the same reason).
        self.erased_defs: list[Operation] = []
        #: The location of the op currently offered to patterns.
        self.root_location: Location = UNKNOWN_LOC

    def _note_erasure(self, op: Operation) -> None:
        """Record the neighborhood of an op about to leave the IR."""
        parent = op.parent_op
        if parent is not None:
            self.erased_parents.append(parent)
        for operand in op.operands:
            if isinstance(operand, OpResult):
                self.erased_defs.append(operand.op)

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        assert anchor.parent is not None
        anchor.parent.insert_op_before(op, anchor)
        self.changed = True
        self.touched.append(op)
        if op.location.is_unknown:
            op.location = self.root_location
        return op

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        assert anchor.parent is not None
        anchor.parent.insert_op_after(op, anchor)
        self.changed = True
        self.touched.append(op)
        if op.location.is_unknown:
            op.location = self.root_location
        return op

    def create(
        self,
        name: str,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence = (),
        attributes=None,
        before: Operation | None = None,
        location: Location | None = None,
    ) -> Operation:
        """Create an operation via the context and insert it before ``before``."""
        op = self.context.create_operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            location=location if location is not None else self.root_location,
        )
        if before is not None:
            self.insert_before(before, op)
        return op

    def replace_op(
        self, op: Operation, replacement: Operation | Sequence[SSAValue]
    ) -> None:
        """Replace ``op``'s results and erase it.

        ``replacement`` is either an operation (its results substitute
        positionally) or a list of SSA values.
        """
        if isinstance(replacement, Operation):
            values: Sequence[SSAValue] = replacement.results
        else:
            values = replacement
        self._note_erasure(op)
        op.replace_by(list(values))
        self.replaced_values.extend(values)
        self.changed = True

    def erase_op(self, op: Operation) -> None:
        self._note_erasure(op)
        op.erase()
        self.changed = True


class RewritePattern:
    """Base class of rewrite patterns.

    Subclasses implement :meth:`match_and_rewrite`, returning ``True``
    when they fired.  ``op_name`` (optional) restricts which operations
    the driver offers to the pattern.
    """

    #: When set, the driver only calls this pattern on matching op names.
    op_name: str | None = None

    #: Patterns with higher benefit run first, as in MLIR.
    benefit: int = 1

    # -- match-prefix declarations -------------------------------------
    # Sound *necessary* conditions the compiled matcher table inlines
    # ahead of ``match_and_rewrite``: a pattern declaring one promises
    # it can never fire on an op that fails the test.  All default to
    # "no promise" so handwritten patterns are unaffected.

    #: Exact number of operands the root must have, when declared.
    operand_arity: int | None = None

    #: Exact number of results the root must have, when declared.
    result_arity: int | None = None

    #: Attribute (name -> expected value) equalities on the root; the
    #: compiled prefix tests identity first (interned attributes), then
    #: structural equality.
    root_attrs: Mapping[str, object] | None = None

    #: Lint codes suppressed for this pattern (``Suppress`` machinery).
    suppressions: frozenset[str] = frozenset()

    @property
    def label(self) -> str:
        """The name this pattern reports statistics under."""
        return type(self).__name__

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError


class FunctionPattern(RewritePattern):
    """Wrap a plain function as a pattern."""

    def __init__(
        self,
        fn: Callable[[Operation, PatternRewriter], bool],
        op_name: str | None = None,
        benefit: int = 1,
        operand_arity: int | None = None,
        result_arity: int | None = None,
        root_attrs: Mapping[str, object] | None = None,
        suppressions: frozenset[str] | Sequence[str] = frozenset(),
    ):
        self.fn = fn
        self.op_name = op_name
        self.benefit = benefit
        self.operand_arity = operand_arity
        self.result_arity = result_arity
        self.root_attrs = root_attrs
        self.suppressions = frozenset(suppressions)

    @property
    def label(self) -> str:
        return getattr(self.fn, "__name__", type(self).__name__)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        return self.fn(op, rewriter)


def pattern(
    op_name: str | None = None,
    benefit: int = 1,
    operand_arity: int | None = None,
    result_arity: int | None = None,
    root_attrs: Mapping[str, object] | None = None,
    suppressions: frozenset[str] | Sequence[str] = frozenset(),
):
    """Decorator turning a function into a :class:`RewritePattern`."""

    def wrap(fn: Callable[[Operation, PatternRewriter], bool]) -> FunctionPattern:
        return FunctionPattern(
            fn, op_name, benefit,
            operand_arity=operand_arity,
            result_arity=result_arity,
            root_attrs=root_attrs,
            suppressions=suppressions,
        )

    return wrap
