"""Dialect conversion: legality-driven lowering between abstraction levels.

Figure 1 shows programs flowing through dialects at decreasing
abstraction levels.  This module structures such flows the way MLIR
does:

* a :class:`ConversionTarget` declares which dialects/operations are
  *legal* after conversion (optionally with a dynamic predicate);
* a :class:`TypeConverter` maps source types to target types and is
  applied to block arguments;
* :func:`apply_full_conversion` drives a pattern set until no illegal
  operation remains, then converts block argument types — raising
  :class:`ConversionError` with the surviving illegal operations if the
  patterns were insufficient.

Partial conversion (:func:`apply_partial_conversion`) tolerates leftover
illegal ops, returning them instead of raising.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ir.attributes import Attribute
from repro.ir.context import Context
from repro.ir.exceptions import IRError
from repro.ir.operation import Operation
from repro.rewriting.driver import GreedyPatternDriver
from repro.rewriting.pattern import RewritePattern


class ConversionError(IRError):
    """A full conversion left illegal operations behind."""

    def __init__(self, illegal_ops: list[Operation]):
        self.illegal_ops = illegal_ops
        names = ", ".join(sorted({op.name for op in illegal_ops}))
        super().__init__(
            f"{len(illegal_ops)} operation(s) remain illegal after "
            f"conversion: {names}"
        )


class ConversionTarget:
    """Declares post-conversion legality per dialect and per operation.

    Precedence: explicit per-op rules beat per-dialect rules; unknown
    operations are illegal by default (strict, like MLIR's full
    conversion).
    """

    def __init__(self) -> None:
        self._legal_dialects: set[str] = set()
        self._illegal_dialects: set[str] = set()
        self._legal_ops: dict[str, Callable[[Operation], bool] | None] = {}
        self._illegal_ops: set[str] = set()

    def add_legal_dialect(self, *names: str) -> "ConversionTarget":
        self._legal_dialects.update(names)
        return self

    def add_illegal_dialect(self, *names: str) -> "ConversionTarget":
        self._illegal_dialects.update(names)
        return self

    def add_legal_op(
        self, name: str,
        predicate: Callable[[Operation], bool] | None = None,
    ) -> "ConversionTarget":
        """Mark one operation legal, optionally only when the predicate
        holds (dynamic legality)."""
        self._legal_ops[name] = predicate
        return self

    def add_illegal_op(self, *names: str) -> "ConversionTarget":
        self._illegal_ops.update(names)
        return self

    def is_legal(self, op: Operation) -> bool:
        if op.name in self._illegal_ops:
            return False
        if op.name in self._legal_ops:
            predicate = self._legal_ops[op.name]
            return predicate is None or predicate(op)
        dialect = op.dialect_name
        if dialect in self._illegal_dialects:
            return False
        return dialect in self._legal_dialects

    def illegal_ops_in(self, root: Operation) -> list[Operation]:
        return [op for op in root.walk(include_self=False)
                if not self.is_legal(op)]


class TypeConverter:
    """Composable type conversion rules, applied to block arguments.

    Rules are tried most-recently-added first; the first non-``None``
    result wins.  Unmatched types convert to themselves.
    """

    def __init__(self) -> None:
        self._rules: list[Callable[[Attribute], Attribute | None]] = []

    def add_rule(
        self, rule: Callable[[Attribute], Attribute | None]
    ) -> "TypeConverter":
        self._rules.append(rule)
        return self

    def convert(self, type_attr: Attribute) -> Attribute:
        for rule in reversed(self._rules):
            converted = rule(type_attr)
            if converted is not None:
                return converted
        return type_attr

    def convert_block_arguments(self, root: Operation, context: Context) -> bool:
        """Rewrite every block argument type under ``root``.

        Uses of converted arguments are bridged with
        ``builtin.unrealized_conversion_cast`` when the argument still
        has uses expecting the old type — patterns then eliminate the
        casts, exactly as in MLIR's conversion infrastructure.
        """
        changed = False
        for op in root.walk():
            for region in op.regions:
                for block in region.blocks:
                    for argument in block.args:
                        new_type = self.convert(argument.type)
                        if new_type == argument.type:
                            continue
                        changed = True
                        if argument.has_uses:
                            cast = context.create_operation(
                                "builtin.unrealized_conversion_cast",
                                operands=[],
                                result_types=[argument.type],
                            )
                            argument.replace_all_uses_with(cast.results[0])
                            argument.type = new_type
                            cast.operands = [argument]
                            block.insert_op(cast, 0)
                        else:
                            argument.type = new_type
        return changed


def apply_partial_conversion(
    context: Context,
    root: Operation,
    target: ConversionTarget,
    patterns: Sequence[RewritePattern],
    type_converter: TypeConverter | None = None,
    max_iterations: int = 64,
) -> list[Operation]:
    """Lower towards the target; return any still-illegal operations."""
    if type_converter is not None:
        type_converter.convert_block_arguments(root, context)
    driver = GreedyPatternDriver(context, list(patterns), max_iterations)
    driver.run(root)
    return target.illegal_ops_in(root)


def apply_full_conversion(
    context: Context,
    root: Operation,
    target: ConversionTarget,
    patterns: Sequence[RewritePattern],
    type_converter: TypeConverter | None = None,
    max_iterations: int = 64,
) -> None:
    """Lower until everything is legal; raise :class:`ConversionError`
    when the pattern set cannot finish the job."""
    remaining = apply_partial_conversion(
        context, root, target, patterns, type_converter, max_iterations
    )
    if remaining:
        raise ConversionError(remaining)
