"""IR generation from IRDL definitions: valid-by-construction programs.

Given a registered dialect, the generator builds random modules whose
operations all verify — the introspection-to-generation path §3
envisions ("IRDL also makes it easy to introspect and generate IRs").
Uses: differential testing of parsers/printers/verifiers (every
generated module must verify and round-trip), benchmarking, and seeding
fuzzers.

The generator works top-down per operation definition:

1. sample a :class:`ConstraintContext` for the op's constraint variables;
2. sample operand types, preferring *reuse* of in-scope SSA values so the
   output has realistic use-def structure;
3. sample result types consistently (constraint variables unify);
4. sample any declared attributes;
5. materialize region bodies recursively, honouring entry-argument
   constraints and declared terminators.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.ir.attributes import Attribute
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.exceptions import VerifyError
from repro.ir.operation import Operation
from repro.ir.region import Region
from repro.ir.value import SSAValue
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import ConstraintContext
from repro.irdl.defs import DialectDef, OpDef
from repro.irdl.sampler import CannotSample, ConstraintSampler


class IRGenerator:
    """Generates random, verifying IR for one or more IRDL dialects."""

    def __init__(
        self,
        context: Context,
        dialects: Sequence[DialectDef],
        seed: int = 0,
        max_region_depth: int = 2,
    ):
        self.context = context
        self.dialects = list(dialects)
        self.rng = random.Random(seed)
        self.sampler = ConstraintSampler(self.rng)
        self.max_region_depth = max_region_depth

    # ------------------------------------------------------------------

    def generatable_ops(self) -> list[OpDef]:
        """Operation definitions the generator can instantiate."""
        ops = []
        for dialect in self.dialects:
            for op_def in dialect.operations:
                if op_def.successors:
                    continue  # CFG construction is out of scope here
                ops.append(op_def)
        return ops

    def generate_block(
        self,
        num_ops: int,
        arg_types: Sequence[Attribute] = (),
        depth: int = 0,
        terminator: str | None = None,
    ) -> Block:
        """A block of ``num_ops`` generated operations (plus terminator)."""
        block = Block(list(arg_types))
        pool: list[SSAValue] = list(block.args)
        candidates = self.generatable_ops()
        attempts = 0
        placed = 0
        while placed < num_ops and attempts < num_ops * 20:
            attempts += 1
            op_def = self.rng.choice(candidates)
            op = self._try_generate(op_def, pool, depth)
            if op is None:
                continue
            block.add_op(op)
            pool.extend(op.results)
            placed += 1
        if terminator is not None:
            block.add_op(self.context.create_operation(terminator))
        return block

    def generate_module(self, num_ops: int = 10) -> Operation:
        """A ``builtin.module`` containing generated operations."""
        block = self.generate_block(num_ops)
        return self.context.create_operation(
            "builtin.module", regions=[Region([block])]
        )

    # ------------------------------------------------------------------

    def _try_generate(
        self, op_def: OpDef, pool: list[SSAValue], depth: int
    ) -> Operation | None:
        if op_def.regions and depth >= self.max_region_depth:
            return None
        cctx = ConstraintContext()
        try:
            operands = self._pick_operands(op_def, pool, cctx)
            result_types = [
                self.sampler.sample(arg.constraint, cctx)
                for arg in op_def.results
                if self._materialize(arg)
            ]
            attributes = {
                arg.name: self.sampler.sample(arg.constraint, cctx)
                for arg in op_def.attributes
            }
            if any(
                not isinstance(value, Attribute)
                for value in attributes.values()
            ):
                # The sampler satisfied a parameter-shaped constraint with
                # a bare ParamValue; ops only carry Attributes, so discard
                # the candidate rather than crash verification.
                return None
            regions = [
                self._generate_region(region_def, cctx, depth)
                for region_def in op_def.regions
            ]
        except (CannotSample, VerifyError):
            return None
        op = self.context.create_operation(
            op_def.qualified_name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            regions=regions,
        )
        try:
            op.verify()
        except VerifyError:
            # The op had invariants beyond what sampling guarantees (e.g.
            # a PyConstraint relating several operands); discard it.
            for region in op.regions:
                region.drop_all_references()
            op.operands = ()
            return None
        return op

    def _materialize(self, arg) -> bool:
        """Whether to emit a value for a possibly-variadic definition."""
        if arg.variadicity is Variadicity.SINGLE:
            return True
        if arg.variadicity is Variadicity.OPTIONAL:
            return bool(self.rng.getrandbits(1))
        return False  # variadic: keep empty segments (size 0 is valid)

    def _pick_operands(
        self, op_def: OpDef, pool: list[SSAValue], cctx: ConstraintContext
    ) -> list[SSAValue]:
        operands: list[SSAValue] = []
        for arg in op_def.operands:
            if not self._materialize(arg):
                continue
            # Prefer reusing an in-scope value satisfying the constraint.
            reusable = [
                value
                for value in pool
                if self._satisfies(arg.constraint, value.type, cctx)
            ]
            if reusable:
                choice = self.rng.choice(reusable)
                arg.constraint.verify(choice.type, cctx)  # commit bindings
                operands.append(choice)
                continue
            # Otherwise synthesize a fresh block argument... which we model
            # by failing: callers keep blocks self-contained.
            raise CannotSample(
                f"no in-scope value for operand {arg.name!r} of "
                f"{op_def.qualified_name}"
            )
        if not op_def.operands:
            return []
        return operands

    def _satisfies(self, constraint, value_type, cctx) -> bool:
        probe = cctx.copy()
        try:
            constraint.verify(value_type, probe)
            return True
        except VerifyError:
            return False

    def _generate_region(self, region_def, cctx: ConstraintContext,
                         depth: int) -> Region:
        arg_types = [
            self.sampler.sample(arg.constraint, cctx)
            for arg in region_def.arguments
            if arg.variadicity is Variadicity.SINGLE
        ]
        block = self.generate_block(
            num_ops=self.rng.randrange(0, 3),
            arg_types=arg_types,
            depth=depth + 1,
            terminator=region_def.terminator,
        )
        return Region([block])


def seed_values_dialect() -> str:
    """An IRDL dialect providing nullary "source" ops for generation.

    Generated blocks need initial SSA values; registering this dialect
    gives the generator zero-operand producers for common builtin types.
    """
    return """
    Dialect irgen {
      Operation source_i1 { Results (r: !i1) }
      Operation source_i32 { Results (r: !i32) }
      Operation source_i64 { Results (r: !i64) }
      Operation source_f32 { Results (r: !f32) }
      Operation source_f64 { Results (r: !f64) }
      Operation source_index { Results (r: !index) }
      Operation sink { Operands (v: Variadic<!AnyType>) }
    }
    """
