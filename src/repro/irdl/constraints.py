"""Runtime constraint objects generated from IRDL specifications.

This implements the full constraint inventory of Figure 2:

* type/attribute constraints — exact match, base-name match, parametrized
  match (Fig. 2a);
* parameter constraints — fixed-width integers, integer literals, strings,
  string literals, enums and enum constructors, arrays (Fig. 2b);
* generic constructors — ``!AnyType``, ``#AnyAttr``, ``AnyParam``,
  ``AnyOf``, ``And``, ``Not`` (Fig. 2c);

plus *constraint variables* (§4.6), which unify: every occurrence of a
variable must be satisfied by the same value, and IRDL-Py constraints
(§5.1), which run an embedded Python predicate after a base constraint.

Constraints check values with :meth:`Constraint.verify`, raising
:class:`~repro.ir.exceptions.VerifyError` with a descriptive message on
mismatch.  Some constraints can also run "in reverse" via
:meth:`Constraint.infer`, reconstructing the unique value they accept
from constraint-variable bindings — this powers declarative assembly
formats (§4.7), where parsing ``$T.elementType`` suffices to reconstruct
all operand and result types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.ir.attributes import (
    Attribute,
    DynamicParametrizedAttribute,
    TypeAttribute,
    attribute_name,
    attribute_parameters,
)
from repro.ir.exceptions import VerifyError
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    IntegerParam,
    OpaqueParam,
    ParamValue,
    StringParam,
)

if TYPE_CHECKING:
    from repro.ir.dialect import AttrDefBinding, EnumBinding


class ConstraintContext:
    """Bindings of constraint variables during one verification run."""

    __slots__ = ("bindings",)

    def __init__(self) -> None:
        self.bindings: dict[str, Any] = {}

    def copy(self) -> "ConstraintContext":
        new = ConstraintContext()
        new.bindings = dict(self.bindings)
        return new


class CannotInfer(Exception):
    """Raised when a constraint cannot reconstruct its unique value."""


class Constraint:
    """Base class of all runtime constraints."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        """Check ``value``; raise :class:`VerifyError` when unsatisfied."""
        raise NotImplementedError

    def satisfied_by(self, value: Any, ctx: ConstraintContext | None = None) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(value, ctx if ctx is not None else ConstraintContext())
            return True
        except VerifyError:
            return False

    def infer(self, ctx: ConstraintContext) -> Any:
        """Reconstruct the unique value satisfying this constraint."""
        raise CannotInfer(f"cannot infer a value from {self}")

    def variables(self) -> set[str]:
        """Names of constraint variables occurring in this constraint."""
        return set()

    def children(self) -> tuple["Constraint", ...]:
        """Immediate sub-constraints, enabling generic tree walks."""
        return ()

    def _structural_parts(self) -> tuple:
        """Class-local payload distinguishing this node from its siblings."""
        return ()

    def structural_key(self) -> tuple:
        """A hashable key identifying this constraint up to structure.

        Two constraints with equal keys accept exactly the same values:
        the key combines the node class, its class-local payload, and the
        keys of its children.  This is the equality the symbolic analysis
        engine (:mod:`repro.analysis.sat`) reasons with — ``__eq__`` on
        constraints stays identity-based for use as dictionary keys.
        """
        return (
            type(self).__name__,
            self._structural_parts(),
            tuple(child.structural_key() for child in self.children()),
        )


def _hashable(value: Any) -> Any:
    """A hashable stand-in for an arbitrary expected value."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def structurally_equal(a: Constraint, b: Constraint) -> bool:
    """Whether two constraint trees are equal up to structure."""
    return a is b or a.structural_key() == b.structural_key()


def _describe(value: Any) -> str:
    if isinstance(value, Attribute):
        name = attribute_name(value)
        params = attribute_parameters(value)
        if params:
            return f"{name}<{', '.join(_describe(p) for p in params)}>"
        text = str(value)
        return text if text else name
    return str(value)


# ---------------------------------------------------------------------------
# Generic constructors (Fig. 2c)
# ---------------------------------------------------------------------------

class AnyTypeConstraint(Constraint):
    """``!AnyType`` — satisfied by every type."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, TypeAttribute):
            raise VerifyError(f"expected a type, got {_describe(value)}")

    def __repr__(self) -> str:
        return "!AnyType"


class AnyAttrConstraint(Constraint):
    """``#AnyAttr`` — satisfied by every attribute (including types)."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, Attribute):
            raise VerifyError(f"expected an attribute, got {_describe(value)}")

    def __repr__(self) -> str:
        return "#AnyAttr"


class AnyParamConstraint(Constraint):
    """``AnyParam`` — satisfied by every parameter value."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, (Attribute, ParamValue)):
            raise VerifyError(f"expected a parameter, got {_describe(value)}")

    def __repr__(self) -> str:
        return "AnyParam"


class AnyOfConstraint(Constraint):
    """``AnyOf<c1, ..., cN>`` — at least one alternative must hold.

    Constraint-variable bindings made by a failing alternative are rolled
    back, so alternatives are tried independently.
    """

    def __init__(self, alternatives: Sequence[Constraint]):
        self.alternatives = list(alternatives)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        failures = []
        for alternative in self.alternatives:
            saved = dict(ctx.bindings)
            try:
                alternative.verify(value, ctx)
                return
            except VerifyError as err:
                ctx.bindings.clear()
                ctx.bindings.update(saved)
                failures.append(str(err))
        raise VerifyError(
            f"{_describe(value)} satisfies none of the {len(self.alternatives)} "
            f"alternatives: {'; '.join(failures)}"
        )

    def variables(self) -> set[str]:
        names: set[str] = set()
        for alternative in self.alternatives:
            names |= alternative.variables()
        return names

    def children(self) -> tuple[Constraint, ...]:
        return tuple(self.alternatives)

    def __repr__(self) -> str:
        return f"AnyOf<{', '.join(map(repr, self.alternatives))}>"


class AndConstraint(Constraint):
    """``And<c1, ..., cN>`` — all conjuncts must hold."""

    def __init__(self, conjuncts: Sequence[Constraint]):
        self.conjuncts = list(conjuncts)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        for conjunct in self.conjuncts:
            conjunct.verify(value, ctx)

    def infer(self, ctx: ConstraintContext) -> Any:
        for conjunct in self.conjuncts:
            try:
                return conjunct.infer(ctx)
            except CannotInfer:
                continue
        raise CannotInfer(f"cannot infer a value from {self}")

    def variables(self) -> set[str]:
        names: set[str] = set()
        for conjunct in self.conjuncts:
            names |= conjunct.variables()
        return names

    def children(self) -> tuple[Constraint, ...]:
        return tuple(self.conjuncts)

    def __repr__(self) -> str:
        return f"And<{', '.join(map(repr, self.conjuncts))}>"


class NotConstraint(Constraint):
    """``Not<c>`` — the inner constraint must fail."""

    def __init__(self, inner: Constraint):
        self.inner = inner

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        saved = dict(ctx.bindings)
        try:
            self.inner.verify(value, ctx)
        except VerifyError:
            ctx.bindings.clear()
            ctx.bindings.update(saved)
            return
        ctx.bindings.clear()
        ctx.bindings.update(saved)
        raise VerifyError(
            f"{_describe(value)} matches {self.inner!r}, which is forbidden"
        )

    def variables(self) -> set[str]:
        return self.inner.variables()

    def children(self) -> tuple[Constraint, ...]:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"Not<{self.inner!r}>"


class VarConstraint(Constraint):
    """A constraint variable: all occurrences must bind to the same value.

    The first occurrence checks the underlying constraint and records the
    value; later occurrences require equality with the recorded value
    (§4.6, "constraints that need to be satisfied by the same type at
    each use").
    """

    def __init__(self, name: str, base: Constraint):
        self.name = name
        self.base = base

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if self.name in ctx.bindings:
            bound = ctx.bindings[self.name]
            if bound != value:
                raise VerifyError(
                    f"constraint variable {self.name} already bound to "
                    f"{_describe(bound)}, but {_describe(value)} was provided"
                )
            return
        self.base.verify(value, ctx)
        ctx.bindings[self.name] = value

    def infer(self, ctx: ConstraintContext) -> Any:
        if self.name in ctx.bindings:
            return ctx.bindings[self.name]
        raise CannotInfer(f"constraint variable {self.name} is unbound")

    def variables(self) -> set[str]:
        return {self.name} | self.base.variables()

    def children(self) -> tuple[Constraint, ...]:
        return (self.base,)

    def _structural_parts(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"Var({self.name}: {self.base!r})"


# ---------------------------------------------------------------------------
# Type and attribute constraints (Fig. 2a)
# ---------------------------------------------------------------------------

class EqConstraint(Constraint):
    """Match exactly one type, attribute, or parameter value."""

    def __init__(self, expected: Any):
        self.expected = expected

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        # Uniqued attribute storage makes the identity test the common
        # case: every ``!i32`` parsed from text is the same object.
        if value is self.expected:
            return
        if value != self.expected:
            raise VerifyError(
                f"expected {_describe(self.expected)}, got {_describe(value)}"
            )

    def infer(self, ctx: ConstraintContext) -> Any:
        return self.expected

    def _structural_parts(self) -> tuple:
        return (_hashable(self.expected),)

    def __repr__(self) -> str:
        return f"Eq({_describe(self.expected)})"


class BaseConstraint(Constraint):
    """Match any type/attribute with the given base name (Fig. 2a row 2)."""

    def __init__(self, definition: "AttrDefBinding"):
        self.definition = definition

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, Attribute):
            raise VerifyError(
                f"expected a {self.definition.qualified_name}, got "
                f"{_describe(value)}"
            )
        if attribute_name(value) != self.definition.canonical_name:
            raise VerifyError(
                f"expected a {self.definition.qualified_name}, got "
                f"{_describe(value)}"
            )

    def _structural_parts(self) -> tuple:
        return (self.definition.canonical_name,)

    def __repr__(self) -> str:
        return f"Base({self.definition.qualified_name})"


class ParametricConstraint(Constraint):
    """Match a type/attribute by base name with constrained parameters."""

    def __init__(
        self,
        definition: "AttrDefBinding",
        param_constraints: Sequence[Constraint],
    ):
        self.definition = definition
        self.param_constraints = list(param_constraints)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        BaseConstraint(self.definition).verify(value, ctx)
        params = attribute_parameters(value)
        if len(params) != len(self.param_constraints):
            raise VerifyError(
                f"{self.definition.qualified_name} has {len(params)} "
                f"parameters, constraint expects {len(self.param_constraints)}"
            )
        for index, (param, constraint) in enumerate(
            zip(params, self.param_constraints)
        ):
            try:
                constraint.verify(param, ctx)
            except VerifyError as err:
                raise VerifyError(
                    f"parameter #{index} of {self.definition.qualified_name}: "
                    f"{err}"
                ) from err

    def infer(self, ctx: ConstraintContext) -> Any:
        params = [c.infer(ctx) for c in self.param_constraints]
        return self.definition.instantiate(params)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for constraint in self.param_constraints:
            names |= constraint.variables()
        return names

    def children(self) -> tuple[Constraint, ...]:
        return tuple(self.param_constraints)

    def _structural_parts(self) -> tuple:
        return (self.definition.canonical_name,)

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.param_constraints))
        return f"{self.definition.qualified_name}<{inner}>"


# ---------------------------------------------------------------------------
# Parameter constraints (Fig. 2b)
# ---------------------------------------------------------------------------

class IntTypeConstraint(Constraint):
    """``int8_t`` … ``uint64_t`` — any integer of a width and signedness."""

    def __init__(self, bitwidth: int, signed: bool):
        self.bitwidth = bitwidth
        self.signed = signed

    @property
    def type_name(self) -> str:
        return f"{'' if self.signed else 'u'}int{self.bitwidth}_t"

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, IntegerParam):
            raise VerifyError(
                f"expected a {self.type_name} parameter, got {_describe(value)}"
            )
        if value.bitwidth != self.bitwidth or value.signed != self.signed:
            raise VerifyError(
                f"expected a {self.type_name} parameter, got {value.type_name}"
            )

    def _structural_parts(self) -> tuple:
        return (self.bitwidth, self.signed)

    def __repr__(self) -> str:
        return self.type_name


class IntLiteralConstraint(Constraint):
    """``3 : int32_t`` — exactly one integer value of a given width."""

    def __init__(self, value: int, bitwidth: int = 32, signed: bool = True):
        self.param = IntegerParam(value, bitwidth, signed)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if value != self.param:
            raise VerifyError(
                f"expected {self.param}, got {_describe(value)}"
            )

    def infer(self, ctx: ConstraintContext) -> Any:
        return self.param

    def _structural_parts(self) -> tuple:
        return (self.param,)

    def __repr__(self) -> str:
        return str(self.param)


class AnyStringConstraint(Constraint):
    """``string`` — any string parameter."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, StringParam):
            raise VerifyError(f"expected a string, got {_describe(value)}")

    def __repr__(self) -> str:
        return "string"


class StringLiteralConstraint(Constraint):
    """``"foo"`` — exactly this string."""

    def __init__(self, value: str):
        self.value = value

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, StringParam) or value.value != self.value:
            raise VerifyError(
                f'expected the string "{self.value}", got {_describe(value)}'
            )

    def infer(self, ctx: ConstraintContext) -> Any:
        return StringParam(self.value)

    def _structural_parts(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f'"{self.value}"'


class FloatAttrConstraint(Constraint):
    """``#f32_attr`` — a float attribute of a given width (Listing 5).

    Matches any ``builtin.float_attr`` whose type is the ``f<width>``
    float type, regardless of how the attribute was constructed.
    """

    def __init__(self, bitwidth: int):
        self.bitwidth = bitwidth

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        from repro.builtin.attributes import FloatAttr
        from repro.builtin.types import FloatType

        if not isinstance(value, FloatAttr):
            raise VerifyError(
                f"expected an f{self.bitwidth} float attribute, got "
                f"{_describe(value)}"
            )
        if not isinstance(value.type, FloatType) or value.type.bitwidth != self.bitwidth:
            raise VerifyError(
                f"expected an f{self.bitwidth} float attribute, got one of "
                f"type {value.type}"
            )

    def _structural_parts(self) -> tuple:
        return (self.bitwidth,)

    def __repr__(self) -> str:
        return f"#f{self.bitwidth}_attr"


class IntegerAttrConstraint(Constraint):
    """``#i32_attr``/``#index_attr`` — a typed integer attribute."""

    def __init__(self, bitwidth: int | None):
        #: ``None`` means the index type.
        self.bitwidth = bitwidth

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        from repro.builtin.attributes import IntegerAttr
        from repro.builtin.types import IndexType, IntegerType

        name = f"i{self.bitwidth}" if self.bitwidth is not None else "index"
        if not isinstance(value, IntegerAttr):
            raise VerifyError(
                f"expected an {name} integer attribute, got {_describe(value)}"
            )
        if self.bitwidth is None:
            if not isinstance(value.type, IndexType):
                raise VerifyError(
                    f"expected an index integer attribute, got one of type "
                    f"{value.type}"
                )
        elif not isinstance(value.type, IntegerType) or value.type.bitwidth != self.bitwidth:
            raise VerifyError(
                f"expected an {name} integer attribute, got one of type "
                f"{value.type}"
            )

    def _structural_parts(self) -> tuple:
        return (self.bitwidth,)

    def __repr__(self) -> str:
        name = f"i{self.bitwidth}" if self.bitwidth is not None else "index"
        return f"#{name}_attr"


class AnyFloatConstraint(Constraint):
    """``float32_t``/``float64_t`` — a float parameter of a given width."""

    def __init__(self, bitwidth: int = 64):
        self.bitwidth = bitwidth

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        from repro.ir.params import FloatParam

        if not isinstance(value, FloatParam) or value.bitwidth != self.bitwidth:
            raise VerifyError(
                f"expected a float{self.bitwidth}_t parameter, got "
                f"{_describe(value)}"
            )

    def _structural_parts(self) -> tuple:
        return (self.bitwidth,)

    def __repr__(self) -> str:
        return f"float{self.bitwidth}_t"


class LocationConstraint(Constraint):
    """``location`` — a source-location parameter (a builtin in IRDL)."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        from repro.ir.params import LocationParam

        if not isinstance(value, LocationParam):
            raise VerifyError(f"expected a location, got {_describe(value)}")

    def __repr__(self) -> str:
        return "location"


class TypeIdConstraint(Constraint):
    """``type_id`` — a host-class identifier parameter (a builtin in IRDL)."""

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        from repro.ir.params import TypeIdParam

        if not isinstance(value, TypeIdParam):
            raise VerifyError(f"expected a type id, got {_describe(value)}")

    def __repr__(self) -> str:
        return "type_id"


class EnumConstraint(Constraint):
    """``enumname`` — any constructor of an enum (Fig. 2b)."""

    def __init__(self, enum: "EnumBinding"):
        self.enum = enum

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, EnumParam) or value.enum_name != self.enum.qualified_name:
            raise VerifyError(
                f"expected a {self.enum.qualified_name} enum value, got "
                f"{_describe(value)}"
            )
        if not self.enum.has_constructor(value.constructor):
            raise VerifyError(
                f"{value.constructor!r} is not a constructor of "
                f"{self.enum.qualified_name}"
            )

    def _structural_parts(self) -> tuple:
        return (self.enum.qualified_name, tuple(self.enum.constructors))

    def __repr__(self) -> str:
        return f"Enum({self.enum.qualified_name})"


class EnumConstructorConstraint(Constraint):
    """``enum.Constructor`` — one particular enum constructor."""

    def __init__(self, enum: "EnumBinding", constructor: str):
        self.enum = enum
        self.constructor = constructor

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        expected = EnumParam(self.enum.qualified_name, self.constructor)
        if value != expected:
            raise VerifyError(
                f"expected {expected}, got {_describe(value)}"
            )

    def infer(self, ctx: ConstraintContext) -> Any:
        return EnumParam(self.enum.qualified_name, self.constructor)

    def _structural_parts(self) -> tuple:
        return (self.enum.qualified_name, self.constructor)

    def __repr__(self) -> str:
        return f"{self.enum.base_name}.{self.constructor}"


class ArrayAnyConstraint(Constraint):
    """``array<pc>`` — an array whose elements all satisfy ``pc``."""

    def __init__(self, element: Constraint):
        self.element = element

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, ArrayParam):
            raise VerifyError(f"expected an array, got {_describe(value)}")
        for index, item in enumerate(value.elements):
            try:
                self.element.verify(item, ctx)
            except VerifyError as err:
                raise VerifyError(f"array element #{index}: {err}") from err

    def variables(self) -> set[str]:
        return self.element.variables()

    def children(self) -> tuple[Constraint, ...]:
        return (self.element,)

    def __repr__(self) -> str:
        return f"array<{self.element!r}>"


class ArrayExactConstraint(Constraint):
    """``[pc1, ..., pcN]`` — an N-element array, element i matching pc_i."""

    def __init__(self, elements: Sequence[Constraint]):
        self.elements = list(elements)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, ArrayParam):
            raise VerifyError(f"expected an array, got {_describe(value)}")
        if len(value.elements) != len(self.elements):
            raise VerifyError(
                f"expected an array of {len(self.elements)} elements, got "
                f"{len(value.elements)}"
            )
        for index, (item, constraint) in enumerate(
            zip(value.elements, self.elements)
        ):
            try:
                constraint.verify(item, ctx)
            except VerifyError as err:
                raise VerifyError(f"array element #{index}: {err}") from err

    def infer(self, ctx: ConstraintContext) -> Any:
        return ArrayParam(tuple(c.infer(ctx) for c in self.elements))

    def variables(self) -> set[str]:
        names: set[str] = set()
        for element in self.elements:
            names |= element.variables()
        return names

    def children(self) -> tuple[Constraint, ...]:
        return tuple(self.elements)

    def __repr__(self) -> str:
        return "[" + ", ".join(map(repr, self.elements)) + "]"


# ---------------------------------------------------------------------------
# IRDL-Py (§5)
# ---------------------------------------------------------------------------

class PyConstraint(Constraint):
    """A base constraint refined by an embedded Python predicate (§5.1).

    The code sees the checked value as ``$_self`` (translated to the
    Python name ``_self``).  This is the reproduction's analogue of the
    paper's ``CppConstraint`` directive.
    """

    def __init__(self, name: str, base: Constraint, code: str):
        from repro.irdl.irdl_py import compile_predicate

        self.name = name
        self.base = base
        self.code = code
        self._predicate: Callable[[Any], bool] = compile_predicate(code)

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        self.base.verify(value, ctx)
        unwrapped = value.value if isinstance(value, (IntegerParam, StringParam)) else value
        if not self._predicate(unwrapped):
            raise VerifyError(
                f"{_describe(value)} violates constraint {self.name}: "
                f"{self.code!r}"
            )

    def variables(self) -> set[str]:
        return self.base.variables()

    def children(self) -> tuple[Constraint, ...]:
        return (self.base,)

    def _structural_parts(self) -> tuple:
        return (self.name, self.code)

    def __repr__(self) -> str:
        return f"PyConstraint({self.name})"


class ParamWrapperConstraint(Constraint):
    """Match a host-language parameter declared via ``TypeOrAttrParam``."""

    def __init__(self, name: str, class_name: str):
        self.name = name
        self.class_name = class_name

    def verify(self, value: Any, ctx: ConstraintContext) -> None:
        if not isinstance(value, OpaqueParam) or value.class_name != self.class_name:
            raise VerifyError(
                f"expected a {self.name} parameter (wrapping "
                f"{self.class_name}), got {_describe(value)}"
            )

    def _structural_parts(self) -> tuple:
        return (self.name, self.class_name)

    def __repr__(self) -> str:
        return f"TypeOrAttrParam({self.name})"
