"""Name resolution: from IRDL syntax trees to resolved definitions.

Implements the namespace rules of §4.2: references resolve inside the
current dialect first, then in the implicit namespaces (``builtin`` and
``std``); references into other dialects must be fully qualified.
Aliases (§4.5) — including parametric aliases — expand at resolution
time by substituting their arguments into the alias body.

Resolution happens against an :class:`~repro.ir.context.Context` so that
cross-dialect type references find previously registered dialects, both
native and IRDL-instantiated.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.ir.context import Context
from repro.ir.dialect import AttrDefBinding, DialectBinding, EnumBinding
from repro.ir.location import UNKNOWN_LOC, Location
from repro.irdl import ast
from repro.irdl import constraints as C
from repro.irdl.defs import (
    AliasDef,
    ArgDef,
    ConstraintDef,
    DialectDef,
    EnumDef,
    OpDef,
    ParamDef,
    ParamWrapperDef,
    RegionDef,
    TypeDef,
)
from repro.utils.diagnostics import DiagnosticError

#: Dialects whose members may be referenced without a prefix (§4.2).
IMPLICIT_NAMESPACES = ("builtin", "std")

_INT_PARAM_RE = re.compile(r"^(u?)int(8|16|32|64)_t$")
_FLOAT_PARAM_RE = re.compile(r"^float(32|64)_t$")


class ResolutionError(DiagnosticError):
    """A name or constraint failed to resolve."""


def _error(message: str, expr: ast.ConstraintExpr | None = None) -> ResolutionError:
    span = getattr(expr, "span", None)
    return ResolutionError.at(message, span)


class Scope:
    """Everything visible while resolving one dialect's definitions."""

    def __init__(self, context: Context, decl: ast.DialectDecl):
        self.context = context
        self.decl = decl
        self.dialect_name = decl.name
        self.aliases = {a.name: a for a in decl.aliases}
        self.constraint_decls = {c.name: c for c in decl.constraints}
        self.param_wrappers = {w.name: w for w in decl.param_wrappers}
        #: Resolved named constraints, filled in declaration order.
        self.resolved_constraints: dict[str, C.Constraint] = {}
        self.resolved_wrappers: dict[str, ParamWrapperDef] = {}
        #: Constraint variables of the operation currently being resolved.
        self.constraint_vars: dict[str, C.VarConstraint] = {}
        #: Substitution environment during parametric alias expansion:
        #: alias parameter name → constraint resolved in the caller's scope.
        self.alias_env: dict[str, C.Constraint] = {}
        #: Aliases currently being expanded (cycle detection).
        self._expanding: set[str] = set()

    # ------------------------------------------------------------------
    # Lookups honouring §4.2's namespace rules
    # ------------------------------------------------------------------

    def _candidate_names(self, name: str) -> list[str]:
        if "." in name:
            return [name]
        candidates = [f"{self.dialect_name}.{name}"]
        candidates += [f"{ns}.{name}" for ns in IMPLICIT_NAMESPACES]
        return candidates

    def lookup_type(self, name: str) -> AttrDefBinding | None:
        for candidate in self._candidate_names(name):
            binding = self.context.get_type_def(candidate)
            if binding is not None:
                return binding
        return None

    def lookup_attr(self, name: str) -> AttrDefBinding | None:
        for candidate in self._candidate_names(name):
            binding = self.context.get_attr_def(candidate)
            if binding is not None:
                return binding
        return None

    def lookup_enum(self, name: str) -> EnumBinding | None:
        for candidate in self._candidate_names(name):
            binding = self.context.get_enum(candidate)
            if binding is not None:
                return binding
        return None

    def lookup_foreign_alias(
        self, name: str
    ) -> tuple[ast.AliasDecl, "Scope"] | None:
        """Find an alias declared by another (IRDL-registered) dialect.

        Returns the alias and a scope rooted in its home dialect, so its
        body resolves against that dialect's own namespace (§4.2).
        """
        for candidate in self._candidate_names(name):
            dialect_name, _, base = candidate.rpartition(".")
            if dialect_name == self.dialect_name:
                continue  # own aliases are handled directly
            binding = self.context.get_dialect(dialect_name)
            home_ast = getattr(binding, "irdl_ast", None)
            if home_ast is None:
                continue
            for alias in home_ast.aliases:
                if alias.name == base:
                    return alias, Scope(self.context, home_ast)
        return None


# ---------------------------------------------------------------------------
# Constraint resolution
# ---------------------------------------------------------------------------

def resolve_constraint(expr: ast.ConstraintExpr, scope: Scope) -> C.Constraint:
    """Resolve one constraint expression to a runtime constraint."""
    if isinstance(expr, ast.IntLiteralExpr):
        return _resolve_int_literal(expr)
    if isinstance(expr, ast.StringLiteralExpr):
        return C.StringLiteralConstraint(expr.value)
    if isinstance(expr, ast.ListExpr):
        return C.ArrayExactConstraint(
            [resolve_constraint(e, scope) for e in expr.elements]
        )
    if isinstance(expr, ast.RefExpr):
        return _resolve_ref(expr, scope)
    raise _error(f"unsupported constraint expression {expr!r}", expr)


def _resolve_int_literal(expr: ast.IntLiteralExpr) -> C.Constraint:
    bitwidth, signed = 32, True
    if expr.type_name is not None:
        match = _INT_PARAM_RE.match(expr.type_name)
        if match is None:
            raise _error(f"invalid integer type {expr.type_name!r}", expr)
        signed = match.group(1) != "u"
        bitwidth = int(match.group(2))
    return C.IntLiteralConstraint(expr.value, bitwidth, signed)


def _resolve_ref(expr: ast.RefExpr, scope: Scope) -> C.Constraint:
    name = expr.name

    # Alias-parameter substitution (parametric aliases, §4.5).  Arguments
    # were pre-resolved in the caller's scope at expansion time.
    if name in scope.alias_env and expr.sigil is None and "." not in name:
        if expr.params is not None:
            raise _error(
                f"alias parameter {name!r} cannot take parameters", expr
            )
        return scope.alias_env[name]

    # Constraint variables (§4.6).
    if "." not in name and name in scope.constraint_vars:
        if expr.params is not None:
            raise _error(
                f"constraint variable {name!r} cannot take parameters", expr
            )
        return scope.constraint_vars[name]

    # Generic constructors (Fig. 2c) and builtin parameter constraints.
    builtin = _resolve_builtin_ref(expr, scope)
    if builtin is not None:
        return builtin

    # Aliases — current dialect first, then implicit namespaces (§4.2).
    base = name.rsplit(".", 1)[-1] if name.startswith(f"{scope.dialect_name}.") else name
    if "." not in base and base in scope.aliases:
        return _expand_alias(scope.aliases[base], expr, scope, scope)
    foreign = scope.lookup_foreign_alias(name)
    if foreign is not None:
        alias, home_scope = foreign
        # Arguments resolve in the caller's namespace, the alias body in
        # its home namespace.
        return _expand_alias(alias, expr, scope, home_scope)

    # Named IRDL-Py constraints and parameter wrappers (§5).
    if "." not in base and base in scope.constraint_decls:
        _require_no_params(expr)
        resolved = scope.resolved_constraints.get(base)
        if resolved is None:
            raise _error(
                f"constraint {base!r} is used before its declaration", expr
            )
        return resolved
    if "." not in base and base in scope.param_wrappers:
        _require_no_params(expr)
        wrapper = scope.param_wrappers[base]
        return C.ParamWrapperConstraint(wrapper.name, wrapper.py_class_name)

    # Enum constructors: ``signedness.Signed`` / ``cmath.signedness.Signed``.
    if "." in name and expr.sigil is None:
        enum_name, _, ctor = name.rpartition(".")
        enum = scope.lookup_enum(enum_name)
        if enum is not None:
            _require_no_params(expr)
            if not enum.has_constructor(ctor):
                raise _error(
                    f"enum {enum.qualified_name} has no constructor {ctor!r}",
                    expr,
                )
            return C.EnumConstructorConstraint(enum, ctor)

    # Enums by name.
    enum = scope.lookup_enum(name) if expr.sigil is None else None
    if enum is not None:
        _require_no_params(expr)
        return C.EnumConstraint(enum)

    # Types and attributes.  The sigil selects the namespace; without a
    # sigil, try types first, then attributes (the paper omits sigils
    # freely, e.g. Listing 10).
    if expr.sigil != "#":
        binding = scope.lookup_type(name)
        if binding is not None:
            return _type_or_attr_constraint(binding, expr, scope)
    if expr.sigil != "!":
        binding = scope.lookup_attr(name)
        if binding is not None:
            return _type_or_attr_constraint(binding, expr, scope)

    sigil = expr.sigil or ""
    raise _error(f"unknown name '{sigil}{name}'", expr)


def _require_no_params(expr: ast.RefExpr) -> None:
    if expr.params is not None:
        raise _error(f"{expr.name!r} does not take parameters", expr)


def _resolve_builtin_ref(expr: ast.RefExpr, scope: Scope) -> C.Constraint | None:
    name = expr.name
    if name == "AnyType":
        _require_no_params(expr)
        return C.AnyTypeConstraint()
    if name == "AnyAttr":
        _require_no_params(expr)
        return C.AnyAttrConstraint()
    if name == "AnyParam":
        _require_no_params(expr)
        return C.AnyParamConstraint()
    if name == "AnyOf":
        if not expr.params:
            raise _error("AnyOf requires at least one alternative", expr)
        return C.AnyOfConstraint(
            [resolve_constraint(p, scope) for p in expr.params]
        )
    if name == "And":
        if not expr.params:
            raise _error("And requires at least one conjunct", expr)
        return C.AndConstraint(
            [resolve_constraint(p, scope) for p in expr.params]
        )
    if name == "Not":
        if not expr.params or len(expr.params) != 1:
            raise _error("Not requires exactly one operand", expr)
        return C.NotConstraint(resolve_constraint(expr.params[0], scope))
    match = re.match(r"^f(16|32|64)_attr$", name)
    if match is not None:
        _require_no_params(expr)
        return C.FloatAttrConstraint(int(match.group(1)))
    match = re.match(r"^i(1|8|16|32|64)_attr$", name)
    if match is not None:
        _require_no_params(expr)
        return C.IntegerAttrConstraint(int(match.group(1)))
    if name == "index_attr":
        _require_no_params(expr)
        return C.IntegerAttrConstraint(None)
    match = _INT_PARAM_RE.match(name)
    if match is not None:
        _require_no_params(expr)
        return C.IntTypeConstraint(int(match.group(2)), match.group(1) != "u")
    match = _FLOAT_PARAM_RE.match(name)
    if match is not None:
        _require_no_params(expr)
        return C.AnyFloatConstraint(int(match.group(1)))
    if name == "string":
        _require_no_params(expr)
        return C.AnyStringConstraint()
    if name == "location":
        _require_no_params(expr)
        return C.LocationConstraint()
    if name == "type_id":
        _require_no_params(expr)
        return C.TypeIdConstraint()
    if name == "array":
        if expr.params is None:
            return C.ArrayAnyConstraint(C.AnyParamConstraint())
        if len(expr.params) != 1:
            raise _error("array<> takes exactly one element constraint", expr)
        return C.ArrayAnyConstraint(resolve_constraint(expr.params[0], scope))
    return None


def _expand_alias(
    alias: ast.AliasDecl,
    expr: ast.RefExpr,
    caller_scope: Scope,
    home_scope: Scope,
) -> C.Constraint:
    if alias.name in home_scope._expanding:
        raise _error(f"alias {alias.name!r} is recursively defined", expr)
    args = expr.params or []
    if len(args) != len(alias.type_params):
        raise _error(
            f"alias {alias.name!r} expects {len(alias.type_params)} "
            f"arguments, got {len(args)}",
            expr,
        )
    resolved_args = [resolve_constraint(arg, caller_scope) for arg in args]
    saved_env = home_scope.alias_env
    home_scope.alias_env = dict(saved_env)
    home_scope.alias_env.update(zip(alias.type_params, resolved_args))
    home_scope._expanding.add(alias.name)
    try:
        return resolve_constraint(alias.body, home_scope)
    finally:
        home_scope._expanding.discard(alias.name)
        home_scope.alias_env = saved_env


def _type_or_attr_constraint(
    binding: AttrDefBinding, expr: ast.RefExpr, scope: Scope
) -> C.Constraint:
    if expr.params is not None:
        param_constraints = [resolve_constraint(p, scope) for p in expr.params]
        if binding.parameter_names and len(param_constraints) != len(
            binding.parameter_names
        ):
            raise _error(
                f"{binding.qualified_name} has "
                f"{len(binding.parameter_names)} parameters, "
                f"{len(param_constraints)} constraints given",
                expr,
            )
        return C.ParametricConstraint(binding, param_constraints)
    if not binding.parameter_names:
        # Zero-parameter definitions coerce to equality with their unique
        # instance: ``!f32`` only matches the f32 type (§4.3).
        return C.EqConstraint(binding.instantiate(()))
    return C.BaseConstraint(binding)


# ---------------------------------------------------------------------------
# Constraint classification helpers
# ---------------------------------------------------------------------------

def constraint_uses_py(constraint: C.Constraint) -> bool:
    """Whether a resolved constraint needs IRDL-Py anywhere inside."""
    if isinstance(constraint, (C.PyConstraint, C.ParamWrapperConstraint)):
        return True
    for child in _children(constraint):
        if constraint_uses_py(child):
            return True
    return False


def constraint_uses_wrapper(constraint: C.Constraint) -> bool:
    """Whether a constraint involves a ``TypeOrAttrParam`` wrapper.

    This is the Figure 9a/10a criterion: a parameter *kind* outside
    IRDL's builtins.  (A ``PyConstraint`` refinement over a builtin
    parameter kind does not count — the parameter itself is still an
    IRDL parameter; the refinement shows up as a verifier instead.)
    """
    if isinstance(constraint, C.ParamWrapperConstraint):
        return True
    for child in _children(constraint):
        if constraint_uses_wrapper(child):
            return True
    return False


def _children(constraint: C.Constraint) -> list[C.Constraint]:
    return list(constraint.children())


def classify_param_kind(constraint: C.Constraint, dialect_name: str) -> str:
    """Classify a parameter constraint for the Figure 8 analysis."""
    if isinstance(constraint, C.ParamWrapperConstraint):
        # Host-language parameter: tag with the owning namespace of the
        # wrapped class (``affine.AffineMap`` → "affine"); primitive
        # buffers classify as strings, like MLIR's raw byte storage.
        if "." in constraint.class_name:
            return constraint.class_name.split(".", 1)[0]
        if constraint.class_name in ("str", "bytes", "char*"):
            return "string"
        return dialect_name
    if isinstance(constraint, (C.IntTypeConstraint, C.IntLiteralConstraint)):
        return "integer"
    if isinstance(constraint, (C.AnyStringConstraint, C.StringLiteralConstraint)):
        return "string"
    if isinstance(constraint, (C.EnumConstraint, C.EnumConstructorConstraint)):
        return "enum"
    if isinstance(constraint, C.AnyFloatConstraint):
        return "float"
    if isinstance(constraint, C.LocationConstraint):
        return "location"
    if isinstance(constraint, C.TypeIdConstraint):
        return "type id"
    if isinstance(constraint, (C.ArrayAnyConstraint, C.ArrayExactConstraint)):
        children = _children(constraint)
        if children:
            return classify_param_kind(children[0], dialect_name)
        return "attr/type"
    if isinstance(constraint, (C.AnyOfConstraint, C.AndConstraint, C.VarConstraint)):
        children = _children(constraint)
        if children:
            return classify_param_kind(children[0], dialect_name)
    if isinstance(constraint, C.PyConstraint):
        return classify_param_kind(constraint.base, dialect_name)
    if isinstance(constraint, C.EqConstraint):
        from repro.ir.params import param_kind

        return param_kind(constraint.expected)
    return "attr/type"


# ---------------------------------------------------------------------------
# Definition resolution
# ---------------------------------------------------------------------------

def resolve_dialect_body(decl: ast.DialectDecl, scope: Scope) -> DialectDef:
    """Resolve every declaration of a dialect into a :class:`DialectDef`.

    The dialect's own type/attribute/enum bindings must already be
    registered in ``scope.context`` (the instantiation layer does this)
    so that self-references resolve.
    """
    dialect = DialectDef(decl.name, suppressions=list(decl.suppressions))

    for enum_decl in decl.enums:
        dialect.enums.append(
            EnumDef(decl.name, enum_decl.name, list(enum_decl.constructors))
        )

    for wrapper_decl in decl.param_wrappers:
        wrapper = ParamWrapperDef(
            decl.name,
            wrapper_decl.name,
            summary=wrapper_decl.summary,
            py_class_name=wrapper_decl.py_class_name,
            py_parser=wrapper_decl.py_parser,
            py_printer=wrapper_decl.py_printer,
        )
        dialect.param_wrappers.append(wrapper)
        scope.resolved_wrappers[wrapper.name] = wrapper

    for constraint_decl in decl.constraints:
        base = resolve_constraint(constraint_decl.base, scope)
        if constraint_decl.py_constraint is not None:
            resolved: C.Constraint = C.PyConstraint(
                constraint_decl.name, base, constraint_decl.py_constraint
            )
        else:
            resolved = base
        scope.resolved_constraints[constraint_decl.name] = resolved
        dialect.constraints.append(
            ConstraintDef(
                decl.name,
                constraint_decl.name,
                resolved,
                summary=constraint_decl.summary,
                py_constraint=constraint_decl.py_constraint,
            )
        )

    for alias_decl in decl.aliases:
        constraint = None
        if not alias_decl.type_params:
            constraint = resolve_constraint(alias_decl.body, scope)
        dialect.aliases.append(
            AliasDef(
                decl.name,
                alias_decl.name,
                alias_decl.sigil,
                list(alias_decl.type_params),
                constraint,
            )
        )

    for type_decl in decl.types:
        dialect.types.append(_resolve_type_decl(type_decl, scope))
    for attr_decl in decl.attributes:
        dialect.attributes.append(_resolve_type_decl(attr_decl, scope))
    for op_decl in decl.operations:
        dialect.operations.append(_resolve_op_decl(op_decl, scope))
    return dialect


def _resolve_type_decl(decl: ast.TypeDecl, scope: Scope) -> TypeDef:
    params = []
    for param_decl in decl.parameters:
        constraint = resolve_constraint(param_decl.constraint, scope)
        params.append(
            ParamDef(
                param_decl.name,
                constraint,
                uses_py_wrapper=constraint_uses_wrapper(constraint),
                kind=classify_param_kind(constraint, scope.dialect_name),
            )
        )
    return TypeDef(
        scope.dialect_name,
        decl.name,
        is_type=decl.is_type,
        parameters=params,
        summary=decl.summary,
        py_constraints=list(decl.py_constraints),
        suppressions=list(decl.suppressions),
        location=_decl_location(decl),
    )


def _decl_location(decl) -> "Location":
    """The source location of a declaration's span, when it has one."""
    span = getattr(decl, "span", None)
    if span is None:
        return UNKNOWN_LOC
    return Location.from_span(span)


def _resolve_op_decl(decl: ast.OperationDecl, scope: Scope) -> OpDef:
    scope.constraint_vars = {}
    for var_decl in decl.constraint_vars:
        if var_decl.name in scope.constraint_vars:
            raise _error(
                f"constraint variable {var_decl.name!r} is declared twice"
            )
        base = resolve_constraint(var_decl.constraint, scope)
        scope.constraint_vars[var_decl.name] = C.VarConstraint(
            var_decl.name, base
        )
    try:
        op_def = OpDef(
            scope.dialect_name,
            decl.name,
            constraint_vars=dict(scope.constraint_vars),
            operands=[_resolve_arg(a, scope) for a in decl.operands],
            results=[_resolve_arg(a, scope) for a in decl.results],
            attributes=[_resolve_arg(a, scope) for a in decl.attributes],
            regions=[_resolve_region(r, scope) for r in decl.regions],
            successors=list(decl.successors) if decl.successors is not None else None,
            format=decl.format,
            summary=decl.summary,
            py_constraints=list(decl.py_constraints),
            suppressions=list(decl.suppressions),
            location=_decl_location(decl),
        )
    finally:
        scope.constraint_vars = {}
    _check_variadic_sanity(op_def)
    return op_def


def _resolve_arg(decl: ast.ArgDecl, scope: Scope) -> ArgDef:
    constraint = resolve_constraint(decl.constraint, scope)
    return ArgDef(
        decl.name,
        constraint,
        decl.variadicity,
        uses_py_constraint=constraint_uses_py(constraint),
    )


def _resolve_region(decl: ast.RegionDecl, scope: Scope) -> RegionDef:
    terminator = decl.terminator
    if terminator is not None and "." not in terminator:
        terminator = f"{scope.dialect_name}.{terminator}"
    return RegionDef(
        decl.name,
        arguments=[_resolve_arg(a, scope) for a in decl.arguments],
        terminator=terminator,
    )


def _check_variadic_sanity(op_def: OpDef) -> None:
    """§4.6: multiple variadic segments need a segment-sizes attribute.

    That attribute is checked at verification time; here we only validate
    that variadic results stay within what IRDL defines.
    """
    for args, kind in ((op_def.operands, "operand"), (op_def.results, "result")):
        variadic = [a for a in args if a.is_variadic]
        if len(variadic) > 1:
            # Requires <kind>_segment_sizes at runtime; nothing to reject
            # statically.  Record nothing — the verifier handles it.
            continue
