"""Definition-time code generation: IRDL definitions to specialized Python.

The paper's deployment story (§5) is that IRDL definitions are *compiled*
— lowered through ODS into straight-line C++ verifiers — rather than
interpreted.  This module brings that compilation step to the
reproduction: at dialect-registration time each
:class:`~repro.irdl.defs.OpDef` (and each type/attribute definition's
parameter list) is lowered to generated Python source — one flat,
specialized verifier function per definition — compiled once with
``compile()``/``exec`` and installed as the definition's verifier.

What the generated code specializes away, relative to the interpretive
:class:`~repro.irdl.plan.VerificationPlan`:

* **segment logic becomes constants** — the §4.6 variadic analysis is
  baked into the emitted source: fixed-arity ops get a single literal
  length comparison, single-variadic ops get constant slice offsets, and
  only the multi-variadic shapes (which need a ``*_segment_sizes``
  attribute) keep a call into the precompiled
  :class:`~repro.irdl.plan.SegmentPlan`;
* **constraint trees become straight-line checks** — ``Eq`` constraints
  compile to an identity test against the interned expected object
  (``v is _e0``), ``AnyType``/``AnyAttr`` to a single ``isinstance``,
  and every other *variable-free* constraint to an inline
  :class:`~repro.irdl.plan.ConstraintMemo` probe.  Only the cold miss
  path falls back to the interpretive ``Constraint.verify`` — which is
  also what keeps the diagnostics byte-identical to the reference
  implementation;
* **dispatch disappears** — the ~20 polymorphic ``Constraint.verify``
  calls per check collapse into locals, constants, and at most one
  method call on the memo.

Soundness leans on the same two invariants as the PR 2 memo: constraints
and attributes are immutable, and uniqued attribute storage makes
identity a sound fast path for equality.  Anything the emitter cannot
prove it handles (exotic names that are not Python identifiers, future
definition features) raises :class:`Unsupported` and the definition
*falls back* to the interpretive plan — observable via the
``irdl.codegen.fallbacks`` counter, never a behavior change.

The interpretive path remains the reference implementation:
``REPRO_NO_CODEGEN=1`` (or ``irdl-opt --no-codegen``) disables the
emitter for subsequently registered definitions, and
``tests/irdl/test_codegen_differential.py`` proves the two paths agree
on accept/reject — with identical diagnostics — over the fuzz corpus.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.ir.attributes import Attribute, TypeAttribute
from repro.ir.exceptions import VerifyError
from repro.irdl.constraints import (
    AnyAttrConstraint,
    AnyTypeConstraint,
    Constraint,
    ConstraintContext,
    EqConstraint,
)
from repro.irdl.plan import CONSTRAINT_MEMO, ConstraintMemo, run_region_checks
from repro.obs.instrument import OBS

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.irdl.defs import OpDef, TypeDef
    from repro.irdl.plan import VerificationPlan

__all__ = [
    "Emitter",
    "STATS",
    "Unsupported",
    "compile_op_verifier",
    "compile_param_verifier",
    "enabled",
    "set_enabled",
]


_ENV_FLAG = "REPRO_NO_CODEGEN"
_disabled_by_flag = False

#: Process-lifetime emitter statistics (mirrored into ``repro.obs`` as
#: ``irdl.codegen.*`` whenever metrics are enabled).
STATS = {"definitions_compiled": 0, "formats_compiled": 0,
         "source_bytes": 0, "fallbacks": 0}


def enabled() -> bool:
    """Whether definition-time code generation is currently on.

    Consulted at *registration* time: flipping the switch affects
    definitions registered afterwards, never already-installed verifiers.
    """
    if _disabled_by_flag:
        return False
    return os.environ.get(_ENV_FLAG, "") not in ("1", "true", "yes", "on")


def set_enabled(value: bool) -> None:
    """Force codegen on/off for this process (``irdl-opt --no-codegen``)."""
    global _disabled_by_flag
    _disabled_by_flag = not value


class Unsupported(Exception):
    """The emitter cannot prove it handles this definition; fall back."""


#: Shared context handed to variable-free fallback checks.  A
#: variable-free constraint never reads or writes bindings (that is the
#: definition of variable-freeness), so one immutable context is safe.
_VARFREE_CCTX = ConstraintContext()


def _slow_value_check(
    constraint: Constraint,
    value: Any,
    op: "Operation",
    label: str,
    memo: ConstraintMemo | None,
    cctx: ConstraintContext,
) -> None:
    """Cold path of one generated value/attribute check.

    Runs the interpretive constraint so failures carry the reference
    diagnostics; successes of memoizable checks are recorded so the next
    occurrence of the same (constraint, value) pair hits the inline probe.
    """
    try:
        constraint.verify(value, cctx)
    except VerifyError as err:
        raise VerifyError(f"{op.name}: {label}: {err}", obj=op) from err
    if memo is not None:
        memo.record(constraint, value)


def _slow_param_check(
    constraint: Constraint,
    value: Any,
    label: str,
    memo: ConstraintMemo | None,
    cctx: ConstraintContext,
) -> None:
    """Cold path of one generated type/attribute parameter check."""
    try:
        constraint.verify(value, cctx)
    except VerifyError as err:
        raise VerifyError(f"{label}: {err}") from err
    if memo is not None:
        memo.record(constraint, value)


class _Emitter:
    """Accumulates generated source lines plus their constant environment."""

    __slots__ = ("lines", "env", "_counter")

    def __init__(self):
        self.lines: list[str] = []
        self.env: dict[str, Any] = {
            "_VerifyError": VerifyError,
            "_memo": CONSTRAINT_MEMO,
            "_NOVARS": _VARFREE_CCTX,
            "_Cctx": ConstraintContext,
            "_Attribute": Attribute,
            "_TypeAttribute": TypeAttribute,
            "_OBS": OBS,
        }
        self._counter = 0

    def bind(self, value: Any, prefix: str = "c") -> str:
        """Install ``value`` as a closed-over constant; returns its name."""
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    def compile(self, fn_name: str, filename: str) -> Callable[..., None]:
        source = self.source()
        namespace = dict(self.env)
        exec(compile(source, filename, "exec"), namespace)
        return namespace[fn_name]


#: Public alias: other definition-time compilers (the rewrite-pattern
#: matcher table in :mod:`repro.rewriting.matcher`) reuse the same
#: source-accumulation + constant-binding + ``exec`` machinery.
Emitter = _Emitter


def _ident(name: str) -> str:
    """Validate a definition name before splicing it into source text."""
    if not name.isidentifier():
        raise Unsupported(f"name {name!r} is not a Python identifier")
    return name


def _qual(name: str) -> str:
    """Validate a dotted qualified name for direct f-string splicing."""
    if not all(part.isidentifier() for part in name.split(".")):
        raise Unsupported(f"qualified name {name!r} is not splice-safe")
    return name


def _fast_test(em: _Emitter, constraint: Constraint, var: str) -> str | None:
    """An inline success test for the common constraint shapes, or None."""
    cls = type(constraint)
    if cls is EqConstraint:
        expected = em.bind(constraint.expected, "e")
        return f"{var} is {expected}"
    if cls is AnyTypeConstraint:
        return f"isinstance({var}, _TypeAttribute)"
    if cls is AnyAttrConstraint:
        return f"isinstance({var}, _Attribute)"
    return None


def _emit_value_check(
    em: _Emitter,
    indent: int,
    value_expr: str,
    constraint: Constraint,
    memoizable: bool,
    label: str,
    cctx_expr: str,
) -> None:
    """One constraint check over ``value_expr`` (a type or attribute)."""
    cname = em.bind(constraint)
    if memoizable:
        em.emit(indent, f"_v = {value_expr}")
        fast = _fast_test(em, constraint, "_v")
        cond = f"not _memo.hit({cname}, _v)"
        if fast is not None:
            cond = f"not ({fast}) and {cond}"
        em.emit(indent, f"if {cond}:")
        em.emit(indent + 1,
                f"_slow({cname}, _v, op, {label!r}, _memo, _NOVARS)")
    else:
        # Variable-dependent checks must run the interpretive constraint
        # every time: their outcome reads/writes the per-run context.
        em.emit(indent,
                f"_slow({cname}, {value_expr}, op, {label!r}, None, "
                f"{cctx_expr})")


def _emit_value_section(
    em: _Emitter, vc, kind: str, seq: str, cctx_expr: str
) -> None:
    """Segment matching + constraint checks for one operand/result list.

    Mirrors :meth:`repro.irdl.plan.SegmentPlan.match` followed by
    :meth:`_ValueChecks.run`, with the variadic analysis folded into
    constants.
    """
    sp = vc.plan
    n = sp.n_defs
    if sp.variadic_count == 0:
        em.emit(1, f"if len({seq}) != {n}:")
        em.emit(2, f'raise _VerifyError(f"{{op.name}} expects {n} {kind}s, '
                   f'got {{len({seq})}}")')
        for index, (arg_def, constraint, memoizable) in enumerate(vc.checks):
            label = f"{kind} {arg_def.name!r}"
            _emit_value_check(em, 1, f"{seq}[{index}].type", constraint,
                              memoizable, label, cctx_expr)
    elif sp.variadic_count == 1:
        n_fixed = sp.n_fixed
        em.emit(1, f"_nvar = len({seq}) - {n_fixed}")
        em.emit(1, "if _nvar < 0:")
        em.emit(2, f'raise _VerifyError(f"{{op.name}} expects at least '
                   f'{n_fixed} {kind}s, got {{len({seq})}}")')
        if sp.only_variadic_optional:
            only = _ident(next(d.name for d in sp.defs if d.is_variadic))
            em.emit(1, "if _nvar > 1:")
            em.emit(2, f'raise _VerifyError(f"{{op.name}}: optional {kind} '
                       f"'{only}' matches at most one value, "
                       f'got {{_nvar}}")')
        cursor = 0
        seen_variadic = False
        for arg_def, constraint, memoizable in vc.checks:
            label = f"{kind} {arg_def.name!r}"
            if arg_def.is_variadic:
                em.emit(1, f"for _item in {seq}[{cursor} : {cursor} + _nvar]:")
                _emit_value_check(em, 2, "_item.type", constraint,
                                  memoizable, label, cctx_expr)
                seen_variadic = True
            elif not seen_variadic:
                _emit_value_check(em, 1, f"{seq}[{cursor}].type", constraint,
                                  memoizable, label, cctx_expr)
                cursor += 1
            else:
                _emit_value_check(em, 1, f"{seq}[{cursor} + _nvar].type",
                                  constraint, memoizable, label, cctx_expr)
                cursor += 1
    else:
        # Several variadic defs need the *_segment_sizes attribute; the
        # sizes validation stays in the precompiled SegmentPlan constant.
        plan_name = em.bind(sp, "segplan")
        em.emit(1, f"_segs = {plan_name}.match({seq}, op)")
        for index, (arg_def, constraint, memoizable) in enumerate(vc.checks):
            label = f"{kind} {arg_def.name!r}"
            em.emit(1, f"for _item in _segs[{index}]:")
            _emit_value_check(em, 2, "_item.type", constraint, memoizable,
                              label, cctx_expr)


def _needs_cctx(plan: "VerificationPlan") -> bool:
    """Whether any check can read or write constraint-variable bindings."""
    if plan.region_plans:
        return True
    for _, _, memoizable in (*plan.operand_checks.checks,
                             *plan.result_checks.checks,
                             *plan.attr_checks):
        if not memoizable:
            return True
    return False


def _generate_op_verifier(
    op_def: "OpDef", plan: "VerificationPlan"
) -> tuple[Callable[["Operation"], None], str]:
    em = _Emitter()
    em.env["_slow"] = _slow_value_check
    _qual(op_def.qualified_name)
    for arg_def, _, _ in (*plan.operand_checks.checks,
                          *plan.result_checks.checks, *plan.attr_checks):
        _ident(arg_def.name)

    em.emit(0, f"# generated from IRDL definition {op_def.qualified_name}")
    em.emit(0, "def __irdl_verify(op):")
    em.emit(1, "operands = op.operands")
    em.emit(1, "results = op.results")
    cctx_expr = "_NOVARS"
    if _needs_cctx(plan):
        em.emit(1, "cctx = _Cctx()")
        cctx_expr = "cctx"

    _emit_value_section(em, plan.operand_checks, "operand", "operands",
                        cctx_expr)
    _emit_value_section(em, plan.result_checks, "result", "results",
                        cctx_expr)

    if plan.attr_checks:
        em.emit(1, "_attrs = op.attributes")
        for attr_def, constraint, memoizable in plan.attr_checks:
            name = _ident(attr_def.name)
            em.emit(1, f"_a = _attrs.get('{name}')")
            em.emit(1, "if _a is None:")
            em.emit(2, f'raise _VerifyError(f"{{op.name}} expects an '
                       f"attribute named '{name}'\", obj=op)")
            _emit_value_check(em, 1, "_a", constraint, memoizable,
                              f"attribute {attr_def.name!r}", cctx_expr)

    if plan.region_plans:
        em.env["_check_regions"] = run_region_checks
        rplans = em.bind(plan.region_plans, "rplans")
        em.emit(1, f"_check_regions({rplans}, op, {cctx_expr}, _memo)")
    else:
        em.emit(1, "if op.regions:")
        em.emit(2, 'raise _VerifyError(f"{op.name} expects 0 regions, '
                   'got {len(op.regions)}", obj=op)')

    expected = plan.expected_successors
    em.emit(1, f"if len(op.successors) != {expected}:")
    em.emit(2, f'raise _VerifyError(f"{{op.name}} expects {expected} '
               'successors, got {len(op.successors)}", obj=op)')

    if plan.predicates:
        from repro.irdl.irdl_py import run_op_predicate

        em.env["_run_pred"] = run_op_predicate
        preds = em.bind(plan.predicates, "preds")
        opdef = em.bind(op_def, "opdef")
        em.emit(1, f"for _code, _pred in {preds}:")
        em.emit(2, f"_run_pred(_pred, _code, op, {opdef})")

    n_attrs = len(plan.attr_checks)
    em.emit(1, "_m = _OBS.metrics")
    em.emit(1, "if _m.enabled:")
    em.emit(2, '_m.counter("irdl.verifier.constraint_checks").inc('
               f"len(operands) + len(results) + {n_attrs})")

    fn = em.compile("__irdl_verify",
                    f"<irdl-codegen {op_def.qualified_name}>")
    return fn, em.source()


def _note_compiled(source: str) -> None:
    STATS["definitions_compiled"] += 1
    STATS["source_bytes"] += len(source)
    if OBS.metrics.enabled:
        scope = OBS.metrics.scope("irdl.codegen")
        scope.counter("definitions_compiled").inc()
        scope.counter("source_bytes").inc(len(source))


def _note_fallback() -> None:
    STATS["fallbacks"] += 1
    if OBS.metrics.enabled:
        OBS.metrics.counter("irdl.codegen.fallbacks").inc()


def note_format_compiled() -> None:
    """Record one declarative format precompiled to a directive program."""
    STATS["formats_compiled"] += 1
    if OBS.metrics.enabled:
        OBS.metrics.counter("irdl.codegen.formats_compiled").inc()


def compile_op_verifier(
    op_def: "OpDef", plan: "VerificationPlan"
) -> tuple[Callable[["Operation"], None], str] | None:
    """Lower one operation definition to a generated Python verifier.

    Returns ``(function, source)`` or ``None`` when the definition uses
    something the emitter does not handle (the caller keeps the
    interpretive plan; the event shows up in ``irdl.codegen.fallbacks``).
    """
    try:
        fn, source = _generate_op_verifier(op_def, plan)
    except Unsupported:
        _note_fallback()
        return None
    _note_compiled(source)
    return fn, source


def compile_param_verifier(
    type_def: "TypeDef",
) -> tuple[Callable[[Sequence[Any]], None], str] | None:
    """Lower a type/attribute definition's parameter list to a verifier.

    The generated function performs the arity check plus every parameter
    constraint; IRDL-Py whole-value predicates stay with the binding
    (they need the constructed instance).
    """
    try:
        em = _Emitter()
        em.env["_slow"] = _slow_param_check
        qualified = _qual(type_def.qualified_name)
        n = len(type_def.parameters)
        em.emit(0, f"# generated from IRDL definition {qualified}")
        em.emit(0, "def __irdl_verify_params(parameters):")
        em.emit(1, f"if len(parameters) != {n}:")
        em.emit(2, f'raise _VerifyError(f"{qualified} expects {n} '
                   'parameters, got {len(parameters)}")')
        needs_cctx = any(p.constraint.variables() for p in type_def.parameters)
        cctx_expr = "_NOVARS"
        if needs_cctx:
            em.emit(1, "cctx = _Cctx()")
            cctx_expr = "cctx"
        for index, param_def in enumerate(type_def.parameters):
            _ident(param_def.name)
            memoizable = not param_def.constraint.variables()
            label = f"{qualified}: parameter {param_def.name!r}"
            cname = em.bind(param_def.constraint)
            if memoizable:
                em.emit(1, f"_v = parameters[{index}]")
                fast = _fast_test(em, param_def.constraint, "_v")
                cond = f"not _memo.hit({cname}, _v)"
                if fast is not None:
                    cond = f"not ({fast}) and {cond}"
                em.emit(1, f"if {cond}:")
                em.emit(2, f"_slow({cname}, _v, {label!r}, _memo, _NOVARS)")
            else:
                em.emit(1, f"_slow({cname}, parameters[{index}], {label!r}, "
                           f"None, {cctx_expr})")
        fn = em.compile("__irdl_verify_params", f"<irdl-codegen {qualified}>")
    except Unsupported:
        _note_fallback()
        return None
    source = em.source()
    _note_compiled(source)
    return fn, source
