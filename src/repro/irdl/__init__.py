"""IRDL: the IR definition language (the paper's primary contribution).

Submodules:

* :mod:`repro.irdl.parser` — the IRDL surface syntax (§4);
* :mod:`repro.irdl.constraints` — the runtime constraint system (Fig. 2);
* :mod:`repro.irdl.resolver` — namespaces, aliases, name resolution (§4.2, §4.5);
* :mod:`repro.irdl.defs` — resolved dialect/op/type/attribute definitions;
* :mod:`repro.irdl.verifier` — derived verifiers (§3);
* :mod:`repro.irdl.format` — declarative assembly formats (§4.7);
* :mod:`repro.irdl.irdl_py` — the IRDL-Py escape hatch (≙ IRDL-C++, §5);
* :mod:`repro.irdl.instantiate` — runtime dialect registration (§3).
"""

from repro.irdl.ast import Variadicity
from repro.irdl.constraints import Constraint, ConstraintContext
from repro.irdl.defs import (
    AliasDef,
    ArgDef,
    ConstraintDef,
    DialectDef,
    EnumDef,
    OpDef,
    ParamDef,
    ParamWrapperDef,
    RegionDef,
    TypeDef,
)
from repro.irdl.instantiate import (
    load_irdl_file,
    register_dialect,
    register_irdl,
)
from repro.irdl.parser import IRDLParser, parse_irdl

__all__ = [
    "Variadicity",
    "Constraint",
    "ConstraintContext",
    "AliasDef",
    "ArgDef",
    "ConstraintDef",
    "DialectDef",
    "EnumDef",
    "OpDef",
    "ParamDef",
    "ParamWrapperDef",
    "RegionDef",
    "TypeDef",
    "load_irdl_file",
    "register_dialect",
    "register_irdl",
    "IRDLParser",
    "parse_irdl",
]
