"""Semi-automatic recovery of IRDL from natively implemented dialects.

§6.1 describes how the authors "semi-automatically recover IRDL code
from the generic, often TableGen-derived, C++ code that is today used in
MLIR's production repositories".  This module reproduces that workflow
for dialects implemented natively in Python (hand-written
:class:`~repro.ir.dialect.OpDefBinding` objects with opaque verifier
closures):

* names, summaries, and terminator flags are read from the bindings;
* operand/result **arities** and coarse **type constraints** are
  recovered by *probing*: synthetic operations with 0..N operands and
  results over a palette of builtin types are offered to the native
  verifier, and the accepting signatures are generalized into IRDL
  (exact type, ``AnyOf`` over the accepted palette subset, or
  ``!AnyType``);
* types and attributes contribute their declared parameter names.

Recovery is best-effort by design — exactly like the paper's, which also
needed the structure that ODS had accumulated.  Unprobeable operations
(none of the synthetic signatures verified) are emitted as fully generic
IRDL operations with a note in their summary.
"""

from __future__ import annotations

from itertools import product

from repro.builtin import types as btypes
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.dialect import DialectBinding
from repro.ir.exceptions import VerifyError
from repro.irdl import ast

#: The probe palette: representative builtin types offered to verifiers.
PROBE_TYPES = (btypes.i1, btypes.i32, btypes.i64, btypes.f32, btypes.f64,
               btypes.index)

#: Probe bounds: operand and result counts tried per operation.
MAX_OPERANDS = 3
MAX_RESULTS = 2

_OPERAND_NAMES = ("a", "b", "c", "d")


def _type_ref(ty) -> ast.RefExpr:
    return ast.RefExpr("!", str(ty))


def _probe_op(context: Context, qualified_name: str):
    """Accepted (operand types, result types) signatures of a native op.

    Probes uniform signatures (all operands/results the same palette
    type, plus mixed operand/result types) — enough to recover the
    common native patterns (binary same-type ops, casts, nullaries).
    """
    accepted = []
    for n_operands in range(MAX_OPERANDS + 1):
        for n_results in range(MAX_RESULTS + 1):
            for operand_ty, result_ty in product(PROBE_TYPES, repeat=2):
                block = Block([operand_ty] * n_operands)
                op = context.create_operation(
                    qualified_name,
                    operands=list(block.args),
                    result_types=[result_ty] * n_results,
                )
                try:
                    op.verify()
                except (VerifyError, Exception) as err:
                    if not isinstance(err, VerifyError):
                        break
                    continue
                accepted.append(
                    (tuple([operand_ty] * n_operands),
                     tuple([result_ty] * n_results))
                )
                if n_operands == 0 and n_results == 0:
                    break  # palette is irrelevant for nullary signatures
    return accepted


def _generalize(position_types: set) -> ast.ConstraintExpr:
    """The tightest IRDL constraint covering the observed types."""
    if len(position_types) == 1:
        return _type_ref(next(iter(position_types)))
    if set(PROBE_TYPES) <= position_types:
        return ast.RefExpr(None, "AnyType")
    ordered = sorted(position_types, key=str)
    return ast.RefExpr(None, "AnyOf", [_type_ref(t) for t in ordered])


def _uniform_signature_required(context: Context, qualified_name: str,
                                n_operands: int, n_results: int,
                                palette: set) -> bool:
    """Whether mixing accepted operand types is rejected (same-type op)."""
    if n_operands + n_results < 2 or len(palette) < 2:
        return False
    ordered = sorted(palette, key=str)
    first, second = ordered[0], ordered[1]
    mixed = [first] * n_operands
    mixed[-1] = second
    block = Block(mixed)
    op = context.create_operation(
        qualified_name,
        operands=list(block.args),
        result_types=[first] * n_results,
    )
    try:
        op.verify()
        return False
    except VerifyError:
        return True


def _recover_operation(context: Context, binding) -> ast.OperationDecl:
    decl = ast.OperationDecl(binding.base_name, summary=binding.summary)
    if binding.is_terminator:
        decl.successors = []
    accepted = _probe_op(context, binding.qualified_name)
    arities = {(len(ops), len(res)) for ops, res in accepted}
    if len(arities) != 1:
        # Ambiguous or unprobeable: emit a fully generic definition, as
        # the paper's recovery did for unstructured C++.
        note = "recovered: signature not probeable"
        decl.summary = f"{binding.summary} ({note})" if binding.summary else note
        return decl
    (n_operands, n_results) = next(iter(arities))
    operand_types = [set() for _ in range(n_operands)]
    result_types = [set() for _ in range(n_results)]
    for ops, res in accepted:
        for index, ty in enumerate(ops):
            operand_types[index].add(ty)
        for index, ty in enumerate(res):
            result_types[index].add(ty)

    # Same-type detection: if every position observed the same palette and
    # a mixed signature is rejected, recover a constraint variable (§4.6).
    all_positions = operand_types + result_types
    palettes_agree = (
        len(all_positions) >= 2
        and all(types == all_positions[0] for types in all_positions)
    )
    if palettes_agree and _uniform_signature_required(
        context, binding.qualified_name, n_operands, n_results,
        all_positions[0],
    ):
        decl.constraint_vars = [
            ast.ConstraintVarDecl("T", "!", _generalize(all_positions[0]))
        ]
        var_ref = ast.RefExpr("!", "T")
        decl.operands = [
            ast.ArgDecl(_OPERAND_NAMES[i], var_ref) for i in range(n_operands)
        ]
        decl.results = [
            ast.ArgDecl(f"res{i}" if i else "res", var_ref)
            for i in range(n_results)
        ]
        return decl

    decl.operands = [
        ast.ArgDecl(_OPERAND_NAMES[i], _generalize(types))
        for i, types in enumerate(operand_types)
    ]
    decl.results = [
        ast.ArgDecl(f"res{i}" if i else "res", _generalize(types))
        for i, types in enumerate(result_types)
    ]
    return decl


def recover_dialect(context: Context, dialect_name: str) -> ast.DialectDecl:
    """Recover an IRDL declaration for a natively registered dialect."""
    binding = context.get_dialect(dialect_name)
    if binding is None:
        raise ValueError(f"dialect {dialect_name!r} is not registered")
    if getattr(binding, "irdl_def", None) is not None:
        raise ValueError(
            f"dialect {dialect_name!r} is already IRDL-defined; "
            "use its source instead of recovery"
        )
    decl = ast.DialectDecl(dialect_name)
    for enum in binding.enums.values():
        decl.enums.append(
            ast.EnumDecl(enum.base_name, list(enum.constructors))
        )
    for type_def in binding.types.values():
        if type_def.qualified_name != type_def.canonical_name:
            continue  # skip alias registrations
        decl.types.append(
            ast.TypeDecl(
                type_def.base_name,
                is_type=True,
                parameters=[
                    ast.ParamDecl(name, ast.RefExpr(None, "AnyParam"))
                    for name in type_def.parameter_names
                ],
                summary=type_def.summary,
            )
        )
    for attr_def in binding.attributes.values():
        if attr_def.qualified_name != attr_def.canonical_name:
            continue
        decl.attributes.append(
            ast.TypeDecl(
                attr_def.base_name,
                is_type=False,
                parameters=[
                    ast.ParamDecl(name, ast.RefExpr(None, "AnyParam"))
                    for name in attr_def.parameter_names
                ],
                summary=attr_def.summary,
            )
        )
    probe_context = context.clone()
    for op_binding in binding.operations.values():
        decl.operations.append(_recover_operation(probe_context, op_binding))
    return decl


def recover_dialect_source(context: Context, dialect_name: str) -> str:
    """Recovered IRDL source text for a native dialect."""
    from repro.irdl.printer import print_dialect

    return print_dialect(recover_dialect(context, dialect_name))
