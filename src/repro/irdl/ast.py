"""Abstract syntax tree for the IRDL definition language (§4).

The parser produces these nodes; the resolver turns them into runtime
definitions (:mod:`repro.irdl.defs`) with resolved constraint objects.

Constraint expressions cover the full constructor inventory of Figure 2:
type/attribute equality and base-name matches, parametrized matches,
integer/string/enum/array parameter constraints, literals, and the
generic ``AnyOf`` / ``And`` / ``Not`` combinators.  ``Variadic`` and
``Optional`` are syntactically constraint applications but are legal only
at the top level of operand/result/region-argument declarations (§4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.source import Span


# ---------------------------------------------------------------------------
# Constraint expressions
# ---------------------------------------------------------------------------

class ConstraintExpr:
    """Base class of unresolved constraint expressions."""

    __slots__ = ()

    span: Span | None


@dataclass(slots=True)
class RefExpr(ConstraintExpr):
    """A (possibly parametrized) named reference.

    Covers ``!f32``, ``#f32_attr``, ``!complex<!f32>``, ``AnyOf<...>``,
    ``int32_t``, ``string``, ``array<pc>``, alias references, constraint
    variables, enum names, and enum constructors (``signedness.Signed``).
    The sigil is ``'!'``, ``'#'``, or ``None`` — the paper frequently
    omits sigils where context is unambiguous (e.g. Listing 10).
    """

    sigil: str | None
    name: str
    params: list[ConstraintExpr] | None = None
    span: Span | None = None

    @property
    def is_parametrized(self) -> bool:
        return self.params is not None


@dataclass(slots=True)
class IntLiteralExpr(ConstraintExpr):
    """``3 : int32_t`` — match exactly this integer value."""

    value: int
    type_name: str | None = None
    span: Span | None = None


@dataclass(slots=True)
class StringLiteralExpr(ConstraintExpr):
    """``"foo"`` — match exactly this string."""

    value: str
    span: Span | None = None


@dataclass(slots=True)
class ListExpr(ConstraintExpr):
    """``[pc1, ..., pcN]`` — an array of exactly N constrained elements."""

    elements: list[ConstraintExpr]
    span: Span | None = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

class Variadicity(Enum):
    """How many consecutive operands/results a definition covers (§4.6)."""

    SINGLE = "single"
    OPTIONAL = "optional"
    VARIADIC = "variadic"


@dataclass(slots=True)
class ParamDecl:
    """One named, constrained parameter of a type or attribute."""

    name: str
    constraint: ConstraintExpr
    span: Span | None = None


@dataclass(slots=True)
class ArgDecl:
    """One named operand, result, attribute, or region-argument."""

    name: str
    constraint: ConstraintExpr
    variadicity: Variadicity = Variadicity.SINGLE
    span: Span | None = None


@dataclass(slots=True)
class ConstraintVarDecl:
    """``ConstraintVar (!T: !FloatType)`` — a unification variable (§4.6)."""

    name: str
    sigil: str | None
    constraint: ConstraintExpr
    span: Span | None = None


@dataclass(slots=True)
class RegionDecl:
    """A ``Region`` directive with entry arguments and optional terminator."""

    name: str
    arguments: list[ArgDecl] = field(default_factory=list)
    terminator: str | None = None
    span: Span | None = None


@dataclass(slots=True)
class TypeDecl:
    """A ``Type`` or ``Attribute`` definition (§4.4)."""

    name: str
    is_type: bool
    parameters: list[ParamDecl] = field(default_factory=list)
    summary: str = ""
    #: Declarative parameter format (§4.7), e.g. ``"$bitwidth x $lanes"``.
    format: str | None = None
    py_constraints: list[str] = field(default_factory=list)
    #: Lint codes silenced for this definition (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)
    span: Span | None = None


@dataclass(slots=True)
class OperationDecl:
    """An ``Operation`` definition (§4.6)."""

    name: str
    constraint_vars: list[ConstraintVarDecl] = field(default_factory=list)
    operands: list[ArgDecl] = field(default_factory=list)
    results: list[ArgDecl] = field(default_factory=list)
    attributes: list[ArgDecl] = field(default_factory=list)
    regions: list[RegionDecl] = field(default_factory=list)
    # ``None`` means no Successors directive; an empty list still marks the
    # operation as a terminator (§4.6, Listing 8).
    successors: list[str] | None = None
    format: str | None = None
    summary: str = ""
    py_constraints: list[str] = field(default_factory=list)
    #: Lint codes silenced for this operation (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)
    span: Span | None = None

    @property
    def is_terminator(self) -> bool:
        return self.successors is not None


@dataclass(slots=True)
class AliasDecl:
    """``Alias !Name<T...> = constraint`` (§4.5); possibly parametric."""

    name: str
    sigil: str | None
    type_params: list[str]
    body: ConstraintExpr
    span: Span | None = None


@dataclass(slots=True)
class EnumDecl:
    """``Enum name { Ctor1, Ctor2 }`` (§4.8)."""

    name: str
    constructors: list[str]
    span: Span | None = None


@dataclass(slots=True)
class ConstraintDecl:
    """An IRDL-Py ``Constraint`` with a base and inline code (§5.1)."""

    name: str
    base: ConstraintExpr
    summary: str = ""
    py_constraint: str | None = None
    span: Span | None = None


@dataclass(slots=True)
class ParamWrapperDecl:
    """An IRDL-Py ``TypeOrAttrParam`` wrapping a host-language class (§5.2)."""

    name: str
    summary: str = ""
    py_class_name: str = ""
    py_parser: str = ""
    py_printer: str = ""
    span: Span | None = None


@dataclass(slots=True)
class DialectDecl:
    """A top-level ``Dialect`` block (§4.1)."""

    name: str
    types: list[TypeDecl] = field(default_factory=list)
    attributes: list[TypeDecl] = field(default_factory=list)
    operations: list[OperationDecl] = field(default_factory=list)
    aliases: list[AliasDecl] = field(default_factory=list)
    enums: list[EnumDecl] = field(default_factory=list)
    constraints: list[ConstraintDecl] = field(default_factory=list)
    param_wrappers: list[ParamWrapperDecl] = field(default_factory=list)
    #: Lint codes silenced dialect-wide (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)
    span: Span | None = None

    def all_decl_names(self) -> list[str]:
        names = [d.name for d in self.types]
        names += [d.name for d in self.attributes]
        names += [d.name for d in self.operations]
        names += [d.name for d in self.aliases]
        names += [d.name for d in self.enums]
        names += [d.name for d in self.constraints]
        names += [d.name for d in self.param_wrappers]
        return names
