"""Pretty-printer for IRDL syntax trees.

Prints :class:`~repro.irdl.ast.DialectDecl` trees back to IRDL source in
the paper's style, enabling spec round-tripping (``parse ∘ print = id``)
and programmatic generation of dialect definitions (the corpus
generator emits ASTs and prints them through this module).
"""

from __future__ import annotations

import io

from repro.irdl import ast


class IRDLPrinter:
    """Stateful printer with two-space indentation."""

    def __init__(self) -> None:
        self.stream = io.StringIO()
        self._indent = 0

    def _line(self, text: str = "") -> None:
        if text:
            self.stream.write("  " * self._indent + text + "\n")
        else:
            self.stream.write("\n")

    def getvalue(self) -> str:
        return self.stream.getvalue()

    # ------------------------------------------------------------------

    def print_dialect(self, decl: ast.DialectDecl) -> None:
        self._line(f"Dialect {decl.name} {{")
        self._indent += 1
        for code in decl.suppressions:
            self._line(f'Suppress "{_escape(code)}"')
        for enum in decl.enums:
            self.print_enum(enum)
        for alias in decl.aliases:
            self.print_alias(alias)
        for wrapper in decl.param_wrappers:
            self.print_param_wrapper(wrapper)
        for constraint in decl.constraints:
            self.print_constraint_decl(constraint)
        for type_decl in decl.types:
            self.print_type_decl(type_decl)
        for attr_decl in decl.attributes:
            self.print_type_decl(attr_decl)
        for op in decl.operations:
            self.print_operation(op)
        self._indent -= 1
        self._line("}")

    def print_enum(self, decl: ast.EnumDecl) -> None:
        ctors = ", ".join(decl.constructors)
        self._line(f"Enum {decl.name} {{ {ctors} }}")

    def print_alias(self, decl: ast.AliasDecl) -> None:
        sigil = decl.sigil or ""
        params = f"<{', '.join(decl.type_params)}>" if decl.type_params else ""
        body = self.constraint_text(decl.body)
        self._line(f"Alias {sigil}{decl.name}{params} = {body}")

    def print_param_wrapper(self, decl: ast.ParamWrapperDecl) -> None:
        self._line(f"TypeOrAttrParam {decl.name} {{")
        self._indent += 1
        if decl.summary:
            self._line(f'Summary "{decl.summary}"')
        if decl.py_class_name:
            self._line(f'PyClassName "{decl.py_class_name}"')
        if decl.py_parser:
            self._line(f'PyParser "{decl.py_parser}"')
        if decl.py_printer:
            self._line(f'PyPrinter "{decl.py_printer}"')
        self._indent -= 1
        self._line("}")

    def print_constraint_decl(self, decl: ast.ConstraintDecl) -> None:
        base = self.constraint_text(decl.base)
        self._line(f"Constraint {decl.name} : {base} {{")
        self._indent += 1
        if decl.summary:
            self._line(f'Summary "{decl.summary}"')
        if decl.py_constraint is not None:
            self._line(f'PyConstraint "{_escape(decl.py_constraint)}"')
        self._indent -= 1
        self._line("}")

    def print_type_decl(self, decl: ast.TypeDecl) -> None:
        keyword = "Type" if decl.is_type else "Attribute"
        self._line(f"{keyword} {decl.name} {{")
        self._indent += 1
        if decl.parameters:
            inner = ", ".join(
                f"{p.name}: {self.constraint_text(p.constraint)}"
                for p in decl.parameters
            )
            self._line(f"Parameters ({inner})")
        if decl.format is not None:
            self._line(f'Format "{_escape(decl.format)}"')
        if decl.summary:
            self._line(f'Summary "{decl.summary}"')
        for code in decl.py_constraints:
            self._line(f'PyConstraint "{_escape(code)}"')
        for code in decl.suppressions:
            self._line(f'Suppress "{_escape(code)}"')
        self._indent -= 1
        self._line("}")

    def print_operation(self, decl: ast.OperationDecl) -> None:
        self._line(f"Operation {decl.name} {{")
        self._indent += 1
        if decl.constraint_vars:
            inner = ", ".join(
                f"{v.sigil or ''}{v.name}: {self.constraint_text(v.constraint)}"
                for v in decl.constraint_vars
            )
            self._line(f"ConstraintVars ({inner})")
        for field_name, args in (
            ("Operands", decl.operands),
            ("Results", decl.results),
            ("Attributes", decl.attributes),
        ):
            if args:
                inner = ", ".join(self._arg_text(a) for a in args)
                self._line(f"{field_name} ({inner})")
        for region in decl.regions:
            self._print_region(region)
        if decl.successors is not None:
            self._line(f"Successors ({', '.join(decl.successors)})")
        if decl.format is not None:
            self._line(f'Format "{_escape(decl.format)}"')
        if decl.summary:
            self._line(f'Summary "{decl.summary}"')
        for code in decl.py_constraints:
            self._line(f'PyConstraint "{_escape(code)}"')
        for code in decl.suppressions:
            self._line(f'Suppress "{_escape(code)}"')
        self._indent -= 1
        self._line("}")

    def _print_region(self, decl: ast.RegionDecl) -> None:
        self._line(f"Region {decl.name} {{")
        self._indent += 1
        if decl.arguments:
            inner = ", ".join(self._arg_text(a) for a in decl.arguments)
            self._line(f"Arguments ({inner})")
        if decl.terminator is not None:
            self._line(f"Terminator {decl.terminator}")
        self._indent -= 1
        self._line("}")

    def _arg_text(self, arg: ast.ArgDecl) -> str:
        constraint = self.constraint_text(arg.constraint)
        if arg.variadicity is ast.Variadicity.VARIADIC:
            constraint = f"Variadic<{constraint}>"
        elif arg.variadicity is ast.Variadicity.OPTIONAL:
            constraint = f"Optional<{constraint}>"
        return f"{arg.name}: {constraint}"

    # ------------------------------------------------------------------

    def constraint_text(self, expr: ast.ConstraintExpr) -> str:
        if isinstance(expr, ast.IntLiteralExpr):
            if expr.type_name is not None:
                return f"{expr.value} : {expr.type_name}"
            return str(expr.value)
        if isinstance(expr, ast.StringLiteralExpr):
            return f'"{_escape(expr.value)}"'
        if isinstance(expr, ast.ListExpr):
            inner = ", ".join(self.constraint_text(e) for e in expr.elements)
            return f"[{inner}]"
        if isinstance(expr, ast.RefExpr):
            text = f"{expr.sigil or ''}{expr.name}"
            if expr.params is not None:
                inner = ", ".join(self.constraint_text(p) for p in expr.params)
                text += f"<{inner}>"
            return text
        raise TypeError(f"unknown constraint expression {expr!r}")


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def print_dialect(decl: ast.DialectDecl) -> str:
    """Print one dialect declaration to IRDL source text."""
    printer = IRDLPrinter()
    printer.print_dialect(decl)
    return printer.getvalue()


def print_dialects(decls: list[ast.DialectDecl]) -> str:
    printer = IRDLPrinter()
    for index, decl in enumerate(decls):
        if index:
            printer._line()
        printer.print_dialect(decl)
    return printer.getvalue()
