"""Resolved IRDL definitions.

These are the semantic objects produced by the resolver from parsed IRDL
(§4): every constraint expression has been resolved to a runtime
:class:`~repro.irdl.constraints.Constraint`.  They serve two consumers:

* the instantiation layer (§3), which derives data structures, verifiers,
  and parsers/printers from them and registers the dialect in a context;
* the analysis tooling (§6), which computes the paper's evaluation
  statistics directly over these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.location import UNKNOWN_LOC, Location
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import Constraint

if TYPE_CHECKING:
    from repro.ir.dialect import EnumBinding


@dataclass
class ParamDef:
    """A resolved type/attribute parameter."""

    name: str
    constraint: Constraint
    #: True when the parameter's constraint involves an IRDL-Py
    #: ``TypeOrAttrParam`` wrapper (needed for the Figure 9/10 analysis).
    uses_py_wrapper: bool = False
    #: The parameter-kind tag for the Figure 8 analysis ("attr/type",
    #: "integer", "enum", "string", "float", "location", "type id", or a
    #: domain-specific wrapper name).
    kind: str = "attr/type"


@dataclass
class ArgDef:
    """A resolved operand, result, attribute, or region-argument."""

    name: str
    constraint: Constraint
    variadicity: Variadicity = Variadicity.SINGLE
    #: True when the constraint required IRDL-Py (a PyConstraint) to
    #: express the *local* invariant (Figure 11a / Figure 12).
    uses_py_constraint: bool = False

    @property
    def is_variadic(self) -> bool:
        return self.variadicity is not Variadicity.SINGLE


@dataclass
class RegionDef:
    """A resolved ``Region`` directive."""

    name: str
    arguments: list[ArgDef] = field(default_factory=list)
    #: Qualified terminator operation name, implying single-block (§4.6).
    terminator: str | None = None


@dataclass
class TypeDef:
    """A resolved ``Type`` or ``Attribute`` definition."""

    dialect_name: str
    name: str
    is_type: bool
    parameters: list[ParamDef] = field(default_factory=list)
    summary: str = ""
    #: IRDL-Py verifier predicates over the whole type/attribute (§5.1).
    py_constraints: list[str] = field(default_factory=list)
    #: Lint codes silenced for this definition (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)
    #: Where the definition appears in its IRDL source file.
    location: Location = UNKNOWN_LOC

    @property
    def qualified_name(self) -> str:
        return f"{self.dialect_name}.{self.name}"

    @property
    def needs_py_for_parameters(self) -> bool:
        """Whether any parameter needs IRDL-Py (Figure 9a/10a)."""
        return any(p.uses_py_wrapper for p in self.parameters)

    @property
    def needs_py_verifier(self) -> bool:
        """Whether the definition has an IRDL-Py verifier (Figure 9b/10b)."""
        return bool(self.py_constraints)


@dataclass
class OpDef:
    """A resolved ``Operation`` definition."""

    dialect_name: str
    name: str
    constraint_vars: dict[str, Constraint] = field(default_factory=dict)
    operands: list[ArgDef] = field(default_factory=list)
    results: list[ArgDef] = field(default_factory=list)
    attributes: list[ArgDef] = field(default_factory=list)
    regions: list[RegionDef] = field(default_factory=list)
    successors: list[str] | None = None
    format: str | None = None
    summary: str = ""
    #: IRDL-Py global-constraint predicates (§5.1, Figure 11b).
    py_constraints: list[str] = field(default_factory=list)
    #: Lint codes silenced for this operation (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)
    #: Where the definition appears in its IRDL source file.
    location: Location = UNKNOWN_LOC

    @property
    def qualified_name(self) -> str:
        return f"{self.dialect_name}.{self.name}"

    @property
    def is_terminator(self) -> bool:
        return self.successors is not None

    @property
    def num_variadic_operands(self) -> int:
        return sum(1 for o in self.operands if o.is_variadic)

    @property
    def num_variadic_results(self) -> int:
        return sum(1 for r in self.results if r.is_variadic)

    @property
    def has_py_local_constraint(self) -> bool:
        """A local constraint needed IRDL-Py (Figure 11a)."""
        return any(
            a.uses_py_constraint
            for a in (*self.operands, *self.results, *self.attributes)
        )

    @property
    def has_py_verifier(self) -> bool:
        """A global constraint needed IRDL-Py (Figure 11b)."""
        return bool(self.py_constraints)


@dataclass
class AliasDef:
    """A resolved (non-parametric) alias; parametric aliases expand at
    resolution time and leave no runtime record beyond this entry."""

    dialect_name: str
    name: str
    sigil: str | None
    type_params: list[str] = field(default_factory=list)
    #: Resolved constraint for non-parametric aliases; ``None`` for
    #: parametric ones (their body is re-resolved per use).
    constraint: Constraint | None = None


@dataclass
class ConstraintDef:
    """A resolved named ``Constraint`` (IRDL-Py, §5.1)."""

    dialect_name: str
    name: str
    constraint: Constraint
    summary: str = ""
    py_constraint: str | None = None

    @property
    def uses_py(self) -> bool:
        return self.py_constraint is not None


@dataclass
class ParamWrapperDef:
    """A resolved ``TypeOrAttrParam`` (IRDL-Py, §5.2)."""

    dialect_name: str
    name: str
    summary: str = ""
    py_class_name: str = ""
    py_parser: str = ""
    py_printer: str = ""


@dataclass
class EnumDef:
    """A resolved ``Enum`` declaration (§4.8)."""

    dialect_name: str
    name: str
    constructors: list[str] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        return f"{self.dialect_name}.{self.name}"


@dataclass
class DialectDef:
    """A fully resolved dialect: the unit of registration and analysis."""

    name: str
    types: list[TypeDef] = field(default_factory=list)
    attributes: list[TypeDef] = field(default_factory=list)
    operations: list[OpDef] = field(default_factory=list)
    aliases: list[AliasDef] = field(default_factory=list)
    enums: list[EnumDef] = field(default_factory=list)
    constraints: list[ConstraintDef] = field(default_factory=list)
    param_wrappers: list[ParamWrapperDef] = field(default_factory=list)
    #: Lint codes silenced dialect-wide (``Suppress "code"``).
    suppressions: list[str] = field(default_factory=list)

    def get_op(self, name: str) -> OpDef | None:
        for op in self.operations:
            if op.name == name:
                return op
        return None

    def get_type(self, name: str) -> TypeDef | None:
        for type_def in self.types:
            if type_def.name == name:
                return type_def
        return None

    def get_attr(self, name: str) -> TypeDef | None:
        for attr_def in self.attributes:
            if attr_def.name == name:
                return attr_def
        return None
