"""Declarative assembly formats (§4.7).

An operation may declare a ``Format`` string such as::

    Format "$lhs, $rhs : $T.elementType"

from which IRDL derives both a parser and a printer.  ``$name``
directives refer to the operation's operands, attributes, or constraint
variables; ``$var.param`` refers to a named parameter of the type bound
to a constraint variable.  Everything else is literal text.

Types never written in the custom syntax are *reconstructed* from
constraint-variable bindings: parsing ``f32`` as ``$T.elementType`` in
``cmath.mul`` rebuilds ``T = !cmath.complex<f32>`` and assigns it to both
operands and the result.  At registration time the format is validated:
every operand and result type must be inferable from the directives, so
malformed formats are rejected before any IR is parsed.

Since the codegen PR, validation is also when the directive list is
*precompiled* into flat programs (:mod:`repro.irdl.codegen` gates this):
literal token kinds are resolved against the lexer once, operand
directives get fixed token slots, literal runs (including the
inter-directive spacing rules) are merged into single ``write`` strings,
and the constraint-variable inference order is frozen — so ``parse`` and
``print`` execute straight-line opcode loops instead of re-matching
directive classes per operation.  The directive interpreters remain the
reference implementation and run whenever codegen is disabled
(``REPRO_NO_CODEGEN=1`` / ``irdl-opt --no-codegen``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyError
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import (
    CannotInfer,
    Constraint,
    ConstraintContext,
    ParametricConstraint,
    VarConstraint,
)
from repro.irdl.defs import OpDef
from repro.utils.diagnostics import DiagnosticError

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.textir.lexer import Token
    from repro.textir.parser import IRParser
    from repro.textir.printer import Printer


class FormatError(Exception):
    """A format string is malformed or cannot infer all types."""


# ---------------------------------------------------------------------------
# Directives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LiteralDirective:
    text: str


@dataclass(frozen=True)
class OperandDirective:
    name: str
    index: int


@dataclass(frozen=True)
class AttributeDirective:
    name: str


@dataclass(frozen=True)
class VarTypeDirective:
    var: str


@dataclass(frozen=True)
class VarParamDirective:
    var: str
    param: str
    param_index: int


Directive = (
    LiteralDirective
    | OperandDirective
    | AttributeDirective
    | VarTypeDirective
    | VarParamDirective
)

_TOKEN_RE = re.compile(
    r"\$[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?"  # $name(.param)?
    r"|->|[(),:<>\[\]=]"                                       # punctuation
    r"|[A-Za-z_][A-Za-z0-9_]*"                                 # keywords
)

#: Literal punctuation that attaches to the preceding directive when
#: printing (no space before).
_TIGHT_LITERALS = {",", ")", "]", ">"}


# ---------------------------------------------------------------------------
# Format compilation
# ---------------------------------------------------------------------------

# Parse-program opcodes (first element of each instruction tuple).
_P_PUNCT = 0      # (op, token_kind, description)
_P_KEYWORD = 1    # (op, text, description)
_P_OPERAND = 2    # (op, slot_index, description)
_P_ATTR = 3       # (op, attr_name)
_P_VARTYPE = 4    # (op, var_name)
_P_VARPARAM = 5   # (op, var_name, param_index)

# Print-program opcodes.
_W_TEXT = 0       # (op, merged_literal_text)
_W_OPERAND = 1    # (op, operand_index)
_W_ATTR = 2       # (op, attr_name)
_W_VARTYPE = 3    # (op, var_name)
_W_VARPARAM = 4   # (op, var_name, param_index)


def _literal_parse_instr(text: str) -> tuple:
    """Resolve one literal's token kind once, at registration time."""
    from repro.textir.lexer import PUNCTUATION, TokenKind

    if text == "->":
        return (_P_PUNCT, TokenKind.ARROW, "'->'")
    kind = PUNCTUATION.get(text)
    if kind is not None:
        return (_P_PUNCT, kind, f"{text!r}")
    return (_P_KEYWORD, text, f"keyword {text!r}")


class FormatProgram:
    """A compiled assembly format: a directive list plus inference plans."""

    def __init__(self, op_def: OpDef, directives: list[Directive]):
        self.op_def = op_def
        self.directives = directives
        #: Precompiled opcode programs (built after validation when
        #: definition-time codegen is enabled; ``None`` → interpretive).
        self._parse_ops: tuple[tuple, ...] | None = None
        self._print_ops: tuple[tuple, ...] | None = None
        self._var_order: tuple[str, ...] = ()
        self._var_param_order: tuple[str, ...] = ()
        self._operand_infer: tuple[tuple[str, Constraint], ...] = ()
        self._result_infer: tuple[tuple[str, Constraint], ...] = ()

    @classmethod
    def compile(cls, op_def: OpDef) -> "FormatProgram":
        """Compile and validate ``op_def.format``."""
        from repro.irdl import codegen

        assert op_def.format is not None
        directives = _scan_directives(op_def)
        program = cls(op_def, directives)
        program._validate()
        if codegen.enabled():
            program._precompile()
            codegen.note_format_compiled()
        return program

    def _precompile(self) -> None:
        """Lower the directive list into flat parse/print programs.

        Everything re-derived per operation by the interpretive loops is
        resolved here once: literal token kinds, operand token slots,
        print spacing (merged into literal runs), and the order in which
        constraint variables are verified and types inferred.
        """
        op_def = self.op_def
        parse_ops: list[tuple] = []
        print_ops: list[tuple] = []
        pending: list[str] = []
        var_order: list[str] = []
        var_param_order: list[str] = []

        def flush_text() -> None:
            if pending:
                print_ops.append((_W_TEXT, "".join(pending)))
                pending.clear()

        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                text = directive.text
                parse_ops.append(_literal_parse_instr(text))
                pending.append(
                    text if text in _TIGHT_LITERALS else f" {text}"
                )
                continue
            pending.append(" ")
            flush_text()
            if isinstance(directive, OperandDirective):
                parse_ops.append(
                    (_P_OPERAND, directive.index, f"operand ${directive.name}")
                )
                print_ops.append((_W_OPERAND, directive.index))
            elif isinstance(directive, AttributeDirective):
                parse_ops.append((_P_ATTR, directive.name))
                print_ops.append((_W_ATTR, directive.name))
            elif isinstance(directive, VarTypeDirective):
                parse_ops.append((_P_VARTYPE, directive.var))
                print_ops.append((_W_VARTYPE, directive.var))
                if directive.var not in var_order:
                    var_order.append(directive.var)
            else:
                parse_ops.append(
                    (_P_VARPARAM, directive.var, directive.param_index)
                )
                print_ops.append(
                    (_W_VARPARAM, directive.var, directive.param_index)
                )
                if directive.var not in var_param_order:
                    var_param_order.append(directive.var)
        flush_text()

        self._parse_ops = tuple(parse_ops)
        self._print_ops = tuple(print_ops)
        self._var_order = tuple(var_order)
        self._var_param_order = tuple(var_param_order)
        self._operand_infer = tuple(
            (a.name, a.constraint) for a in op_def.operands
        )
        self._result_infer = tuple(
            (a.name, a.constraint) for a in op_def.results
        )

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        op_def = self.op_def
        if any(a.is_variadic for a in (*op_def.operands, *op_def.results)):
            raise FormatError(
                f"{op_def.qualified_name}: declarative formats support only "
                "non-variadic operands and results"
            )
        if op_def.regions or op_def.successors:
            raise FormatError(
                f"{op_def.qualified_name}: operations with regions or "
                "successors must use the generic syntax"
            )
        mentioned = {
            d.name for d in self.directives if isinstance(d, OperandDirective)
        }
        missing = [o.name for o in op_def.operands if o.name not in mentioned]
        if missing:
            raise FormatError(
                f"{op_def.qualified_name}: format does not mention "
                f"operand(s) {', '.join(missing)}"
            )
        # Simulate parsing: which constraint variables become bound?
        cctx = ConstraintContext()
        param_bindings: dict[str, dict[int, bool]] = {}
        for directive in self.directives:
            if isinstance(directive, VarTypeDirective):
                cctx.bindings[directive.var] = _FAKE
            elif isinstance(directive, VarParamDirective):
                param_bindings.setdefault(directive.var, {})[
                    directive.param_index
                ] = True
        for var, bound_params in param_bindings.items():
            if self._can_reconstruct(var, bound_params, cctx):
                cctx.bindings[var] = _FAKE
        for arg in (*op_def.operands, *op_def.results):
            if not _inferable(arg.constraint, cctx):
                raise FormatError(
                    f"{op_def.qualified_name}: the type of "
                    f"{arg.name!r} cannot be inferred from the format"
                )

    def _can_reconstruct(
        self, var: str, bound_params: dict[int, bool], cctx: ConstraintContext
    ) -> bool:
        var_constraint = self.op_def.constraint_vars.get(var)
        if var_constraint is None:
            return False
        base = var_constraint.base
        if not isinstance(base, ParametricConstraint):
            return False
        for index, param_constraint in enumerate(base.param_constraints):
            if bound_params.get(index):
                continue
            if not _inferable(param_constraint, cctx):
                return False
        return True

    # -- parsing ---------------------------------------------------------

    def parse(self, parser: "IRParser", definition: Any) -> "Operation":
        """Parse the custom syntax following the operation name."""
        if self._parse_ops is None:
            return self._parse_interp(parser, definition)
        from repro.textir.lexer import TokenKind

        op_def = self.op_def
        tokens: list["Token" | None] = [None] * len(op_def.operands)
        attributes: dict[str, Attribute] = {}
        var_types: dict[str, Attribute] = {}
        var_params: dict[str, dict[int, Any]] = {}

        for instr in self._parse_ops:
            code = instr[0]
            if code == _P_PUNCT:
                parser.expect(instr[1], instr[2])
            elif code == _P_KEYWORD:
                token = parser.expect(TokenKind.BARE_IDENT, instr[2])
                if token.text != instr[1]:
                    raise parser.error(
                        f"expected keyword {instr[1]!r}, found "
                        f"{token.text!r}",
                        token,
                    )
            elif code == _P_OPERAND:
                tokens[instr[1]] = parser.expect(
                    TokenKind.PERCENT_IDENT, instr[2]
                )
            elif code == _P_ATTR:
                attributes[instr[1]] = parser.parse_attribute()
            elif code == _P_VARTYPE:
                var_types[instr[1]] = parser.parse_type()
            else:
                var_params.setdefault(instr[1], {})[
                    instr[2]
                ] = parser.parse_param()

        cctx = ConstraintContext()
        constraint_vars = op_def.constraint_vars
        for var in self._var_order:
            constraint_vars[var].verify(var_types[var], cctx)
        for var in self._var_param_order:
            value = self._reconstruct(var, var_params[var], cctx)
            constraint_vars[var].verify(value, cctx)

        operand_types = [
            _infer_type(constraint, cctx, name, op_def)
            for name, constraint in self._operand_infer
        ]
        result_types = [
            _infer_type(constraint, cctx, name, op_def)
            for name, constraint in self._result_infer
        ]
        operands = [
            parser.resolve_value(token.value, ty, token)
            for token, ty in zip(tokens, operand_types)
        ]
        return parser.context.create_operation(
            op_def.qualified_name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
        )

    def _parse_interp(self, parser: "IRParser", definition: Any) -> "Operation":
        """Reference directive interpreter (``--no-codegen`` path)."""
        from repro.textir.lexer import TokenKind

        op_def = self.op_def
        operand_tokens: dict[str, "Token"] = {}
        attributes: dict[str, Attribute] = {}
        var_types: dict[str, Attribute] = {}
        var_params: dict[str, dict[int, Any]] = {}

        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                _parse_literal(parser, directive.text)
            elif isinstance(directive, OperandDirective):
                operand_tokens[directive.name] = parser.expect(
                    TokenKind.PERCENT_IDENT, f"operand ${directive.name}"
                )
            elif isinstance(directive, AttributeDirective):
                attributes[directive.name] = parser.parse_attribute()
            elif isinstance(directive, VarTypeDirective):
                var_types[directive.var] = parser.parse_type()
            elif isinstance(directive, VarParamDirective):
                var_params.setdefault(directive.var, {})[
                    directive.param_index
                ] = parser.parse_param()

        cctx = ConstraintContext()
        for var, var_type in var_types.items():
            op_def.constraint_vars[var].verify(var_type, cctx)
        for var, params in var_params.items():
            value = self._reconstruct(var, params, cctx)
            op_def.constraint_vars[var].verify(value, cctx)

        operand_types = [
            _infer_type(arg.constraint, cctx, arg.name, op_def)
            for arg in op_def.operands
        ]
        result_types = [
            _infer_type(arg.constraint, cctx, arg.name, op_def)
            for arg in op_def.results
        ]
        operands = [
            parser.resolve_value(
                operand_tokens[arg.name].value, ty, operand_tokens[arg.name]
            )
            for arg, ty in zip(op_def.operands, operand_types)
        ]
        return parser.context.create_operation(
            op_def.qualified_name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
        )

    def _reconstruct(
        self, var: str, params: dict[int, Any], cctx: ConstraintContext
    ) -> Attribute:
        var_constraint = self.op_def.constraint_vars[var]
        base = var_constraint.base
        if not isinstance(base, ParametricConstraint):
            raise VerifyError(
                f"cannot reconstruct constraint variable {var}: its base "
                "constraint is not parametric"
            )
        values = []
        for index, param_constraint in enumerate(base.param_constraints):
            if index in params:
                values.append(params[index])
            else:
                values.append(param_constraint.infer(cctx))
        return base.definition.instantiate(values)

    # -- printing --------------------------------------------------------

    def print(self, op: "Operation", printer: "Printer") -> None:
        """Print the custom syntax following the operation name."""
        if self._print_ops is None:
            self._print_interp(op, printer)
            return
        cctx = self._bindings_for(op)
        bindings = cctx.bindings
        operands = op.operands
        for instr in self._print_ops:
            code = instr[0]
            if code == _W_TEXT:
                printer.write(instr[1])
            elif code == _W_OPERAND:
                printer.print_operand(operands[instr[1]])
            elif code == _W_ATTR:
                printer.print_attribute(op.attributes[instr[1]])
            elif code == _W_VARTYPE:
                printer.print_type(bindings[instr[1]])
            else:
                printer.print_param(bindings[instr[1]].parameters[instr[2]])

    def _print_interp(self, op: "Operation", printer: "Printer") -> None:
        """Reference directive interpreter (``--no-codegen`` path)."""
        cctx = self._bindings_for(op)
        operand_index = {a.name: i for i, a in enumerate(self.op_def.operands)}
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                if directive.text in _TIGHT_LITERALS:
                    printer.write(directive.text)
                else:
                    printer.write(f" {directive.text}")
                continue
            printer.write(" ")
            if isinstance(directive, OperandDirective):
                printer.print_operand(op.operands[operand_index[directive.name]])
            elif isinstance(directive, AttributeDirective):
                printer.print_attribute(op.attributes[directive.name])
            elif isinstance(directive, VarTypeDirective):
                printer.print_type(cctx.bindings[directive.var])
            elif isinstance(directive, VarParamDirective):
                bound = cctx.bindings[directive.var]
                printer.print_param(bound.parameters[directive.param_index])

    def _bindings_for(self, op: "Operation") -> ConstraintContext:
        """Recover constraint-variable bindings from a concrete operation."""
        cctx = ConstraintContext()
        for arg, value in zip(self.op_def.operands, op.operands):
            arg.constraint.verify(value.type, cctx)
        for arg, result in zip(self.op_def.results, op.results):
            arg.constraint.verify(result.type, cctx)
        return cctx


class TypeFormatProgram:
    """A declarative parameter format for a type or attribute (§4.7).

    The format string describes the text *between the angle brackets* of
    the usual ``!dialect.name<...>`` syntax: parameter directives
    (``$paramName``) interleaved with literals, e.g.
    ``Format "$bitwidth x $lanes"``.  Every parameter must be mentioned
    exactly once.
    """

    def __init__(self, qualified_name: str, parameter_names: tuple[str, ...],
                 format_string: str):
        self.qualified_name = qualified_name
        self.parameter_names = parameter_names
        self.directives: list[LiteralDirective | VarParamDirective] = []
        mentioned: list[str] = []
        for match in _TOKEN_RE.finditer(format_string):
            text = match.group(0)
            if not text.startswith("$"):
                self.directives.append(LiteralDirective(text))
                continue
            name = text[1:]
            if name not in parameter_names:
                raise FormatError(
                    f"{qualified_name}: format refers to unknown parameter "
                    f"${name}"
                )
            mentioned.append(name)
            self.directives.append(
                VarParamDirective(name, name, parameter_names.index(name))
            )
        if sorted(mentioned) != sorted(parameter_names):
            raise FormatError(
                f"{qualified_name}: format must mention every parameter "
                f"exactly once"
            )
        self._parse_ops: tuple[tuple, ...] | None = None
        self._print_ops: tuple[tuple, ...] | None = None
        from repro.irdl import codegen

        if codegen.enabled():
            self._precompile()
            codegen.note_format_compiled()

    def _precompile(self) -> None:
        """Lower the parameter format into flat parse/print programs."""
        parse_ops: list[tuple] = []
        print_ops: list[tuple] = []
        pending: list[str] = []
        first = True
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                text = directive.text
                parse_ops.append(_literal_parse_instr(text))
                pending.append(
                    text
                    if text in _TIGHT_LITERALS or first
                    else f" {text}"
                )
            else:
                parse_ops.append((_P_VARPARAM, directive.param_index))
                if not first:
                    pending.append(" ")
                if pending:
                    print_ops.append((_W_TEXT, "".join(pending)))
                    pending.clear()
                print_ops.append((_W_VARPARAM, directive.param_index))
            first = False
        if pending:
            print_ops.append((_W_TEXT, "".join(pending)))
        self._parse_ops = tuple(parse_ops)
        self._print_ops = tuple(print_ops)

    def parse(self, parser: "IRParser") -> list[Any]:
        """Parse the parameter list (without the angle brackets)."""
        if self._parse_ops is None:
            return self._parse_interp(parser)
        from repro.textir.lexer import TokenKind

        values: list[Any] = [None] * len(self.parameter_names)
        for instr in self._parse_ops:
            code = instr[0]
            if code == _P_PUNCT:
                parser.expect(instr[1], instr[2])
            elif code == _P_KEYWORD:
                token = parser.expect(TokenKind.BARE_IDENT, instr[2])
                if token.text != instr[1]:
                    raise parser.error(
                        f"expected keyword {instr[1]!r}, found "
                        f"{token.text!r}",
                        token,
                    )
            else:
                values[instr[1]] = parser.parse_param()
        return values

    def _parse_interp(self, parser: "IRParser") -> list[Any]:
        """Reference directive interpreter (``--no-codegen`` path)."""
        values: dict[int, Any] = {}
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                _parse_literal(parser, directive.text)
            else:
                values[directive.param_index] = parser.parse_param()
        return [values[i] for i in range(len(self.parameter_names))]

    def print(self, parameters, printer: "Printer") -> None:
        """Print the parameter list (without the angle brackets)."""
        if self._print_ops is None:
            self._print_interp(parameters, printer)
            return
        for instr in self._print_ops:
            if instr[0] == _W_TEXT:
                printer.write(instr[1])
            else:
                printer.print_param(parameters[instr[1]])

    def _print_interp(self, parameters, printer: "Printer") -> None:
        """Reference directive interpreter (``--no-codegen`` path)."""
        first = True
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                if directive.text in _TIGHT_LITERALS or first:
                    printer.write(directive.text)
                else:
                    printer.write(f" {directive.text}")
            else:
                if not first:
                    printer.write(" ")
                printer.print_param(parameters[directive.param_index])
            first = False

    def render(self, parameters) -> str:
        from repro.textir.printer import Printer

        printer = Printer()
        self.print(parameters, printer)
        return printer.getvalue()


class _Fake:
    def __repr__(self) -> str:
        return "<inferred>"


_FAKE = _Fake()


def _inferable(constraint: Constraint, cctx: ConstraintContext) -> bool:
    try:
        constraint.infer(cctx)
        return True
    except CannotInfer:
        return False
    except Exception:
        # Inference over fake bindings may fail downstream (e.g. trying to
        # instantiate with a fake parameter); reaching instantiation means
        # the shape was inferable.
        return True


def _infer_type(
    constraint: Constraint, cctx: ConstraintContext, name: str, op_def: OpDef
) -> Attribute:
    try:
        return constraint.infer(cctx)
    except CannotInfer as err:
        raise VerifyError(
            f"{op_def.qualified_name}: cannot infer the type of {name!r} "
            f"from the custom format: {err}"
        ) from err


def _parse_literal(parser: "IRParser", text: str) -> None:
    from repro.textir.lexer import PUNCTUATION, TokenKind

    if text == "->":
        parser.expect(TokenKind.ARROW, "'->'")
        return
    kind = PUNCTUATION.get(text)
    if kind is not None:
        parser.expect(kind, f"{text!r}")
        return
    token = parser.expect(TokenKind.BARE_IDENT, f"keyword {text!r}")
    if token.text != text:
        raise parser.error(f"expected keyword {text!r}, found {token.text!r}", token)


def _scan_directives(op_def: OpDef) -> list[Directive]:
    assert op_def.format is not None
    directives: list[Directive] = []
    operand_index = {a.name: i for i, a in enumerate(op_def.operands)}
    attr_names = {a.name for a in op_def.attributes}
    for match in _TOKEN_RE.finditer(op_def.format):
        text = match.group(0)
        if not text.startswith("$"):
            directives.append(LiteralDirective(text))
            continue
        body = text[1:]
        if "." in body:
            var, param = body.split(".", 1)
            directives.append(
                VarParamDirective(var, param, _param_index(op_def, var, param))
            )
            continue
        if body in operand_index:
            directives.append(OperandDirective(body, operand_index[body]))
        elif body in attr_names:
            directives.append(AttributeDirective(body))
        elif body in op_def.constraint_vars:
            directives.append(VarTypeDirective(body))
        else:
            raise FormatError(
                f"{op_def.qualified_name}: format refers to unknown name "
                f"${body}"
            )
    return directives


#: Directives that parse an *open-ended* value: numeric attributes and
#: parameters greedily consume an optional ``: type`` suffix, and
#: arrays/dictionaries consume arbitrarily nested elements, so the
#: parser cannot always tell where the value ends and the next format
#: element begins.
_OPEN_ENDED = (AttributeDirective, VarParamDirective)


def find_format_ambiguities(
    directives: list[Directive],
) -> list[tuple[int, str]]:
    """Positions where a format's parse is not uniquely determined.

    Returns ``(directive_index, reason)`` pairs for two provable
    ambiguity patterns:

    * an open-ended directive (attribute or ``$var.param``) immediately
      followed by a ``:`` literal — numeric values greedily consume an
      optional ``: type`` suffix, so ``42 : i32`` can bind either way;
    * two adjacent open-ended directives with no separating literal —
      nothing marks where the first value stops.
    """
    problems: list[tuple[int, str]] = []
    for index in range(len(directives) - 1):
        directive = directives[index]
        if not isinstance(directive, _OPEN_ENDED):
            continue
        successor = directives[index + 1]
        if isinstance(successor, LiteralDirective):
            if successor.text == ":":
                problems.append((
                    index,
                    "an open-ended value followed by ':' is ambiguous — "
                    "numeric values greedily parse a ': type' suffix",
                ))
        elif isinstance(successor, _OPEN_ENDED):
            problems.append((
                index,
                "two adjacent open-ended values have no separating "
                "literal, so the boundary between them is ambiguous",
            ))
    return problems


def _param_index(op_def: OpDef, var: str, param: str) -> int:
    var_constraint = op_def.constraint_vars.get(var)
    if var_constraint is None:
        raise FormatError(
            f"{op_def.qualified_name}: format refers to unknown constraint "
            f"variable ${var}"
        )
    base = var_constraint.base
    if not isinstance(base, ParametricConstraint):
        raise FormatError(
            f"{op_def.qualified_name}: ${var}.{param} requires {var} to be "
            "constrained to a parametric type"
        )
    names = base.definition.parameter_names
    if param not in names:
        raise FormatError(
            f"{op_def.qualified_name}: {base.definition.qualified_name} has "
            f"no parameter named {param!r}"
        )
    return names.index(param)
