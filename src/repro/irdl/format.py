"""Declarative assembly formats (§4.7).

An operation may declare a ``Format`` string such as::

    Format "$lhs, $rhs : $T.elementType"

from which IRDL derives both a parser and a printer.  ``$name``
directives refer to the operation's operands, attributes, or constraint
variables; ``$var.param`` refers to a named parameter of the type bound
to a constraint variable.  Everything else is literal text.

Types never written in the custom syntax are *reconstructed* from
constraint-variable bindings: parsing ``f32`` as ``$T.elementType`` in
``cmath.mul`` rebuilds ``T = !cmath.complex<f32>`` and assigns it to both
operands and the result.  At registration time the format is validated:
every operand and result type must be inferable from the directives, so
malformed formats are rejected before any IR is parsed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyError
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import (
    CannotInfer,
    Constraint,
    ConstraintContext,
    ParametricConstraint,
    VarConstraint,
)
from repro.irdl.defs import OpDef
from repro.utils.diagnostics import DiagnosticError

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.textir.lexer import Token
    from repro.textir.parser import IRParser
    from repro.textir.printer import Printer


class FormatError(Exception):
    """A format string is malformed or cannot infer all types."""


# ---------------------------------------------------------------------------
# Directives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LiteralDirective:
    text: str


@dataclass(frozen=True)
class OperandDirective:
    name: str
    index: int


@dataclass(frozen=True)
class AttributeDirective:
    name: str


@dataclass(frozen=True)
class VarTypeDirective:
    var: str


@dataclass(frozen=True)
class VarParamDirective:
    var: str
    param: str
    param_index: int


Directive = (
    LiteralDirective
    | OperandDirective
    | AttributeDirective
    | VarTypeDirective
    | VarParamDirective
)

_TOKEN_RE = re.compile(
    r"\$[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?"  # $name(.param)?
    r"|->|[(),:<>\[\]=]"                                       # punctuation
    r"|[A-Za-z_][A-Za-z0-9_]*"                                 # keywords
)

#: Literal punctuation that attaches to the preceding directive when
#: printing (no space before).
_TIGHT_LITERALS = {",", ")", "]", ">"}


# ---------------------------------------------------------------------------
# Format compilation
# ---------------------------------------------------------------------------

class FormatProgram:
    """A compiled assembly format: a directive list plus inference plans."""

    def __init__(self, op_def: OpDef, directives: list[Directive]):
        self.op_def = op_def
        self.directives = directives

    @classmethod
    def compile(cls, op_def: OpDef) -> "FormatProgram":
        """Compile and validate ``op_def.format``."""
        assert op_def.format is not None
        directives = _scan_directives(op_def)
        program = cls(op_def, directives)
        program._validate()
        return program

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        op_def = self.op_def
        if any(a.is_variadic for a in (*op_def.operands, *op_def.results)):
            raise FormatError(
                f"{op_def.qualified_name}: declarative formats support only "
                "non-variadic operands and results"
            )
        if op_def.regions or op_def.successors:
            raise FormatError(
                f"{op_def.qualified_name}: operations with regions or "
                "successors must use the generic syntax"
            )
        mentioned = {
            d.name for d in self.directives if isinstance(d, OperandDirective)
        }
        missing = [o.name for o in op_def.operands if o.name not in mentioned]
        if missing:
            raise FormatError(
                f"{op_def.qualified_name}: format does not mention "
                f"operand(s) {', '.join(missing)}"
            )
        # Simulate parsing: which constraint variables become bound?
        cctx = ConstraintContext()
        param_bindings: dict[str, dict[int, bool]] = {}
        for directive in self.directives:
            if isinstance(directive, VarTypeDirective):
                cctx.bindings[directive.var] = _FAKE
            elif isinstance(directive, VarParamDirective):
                param_bindings.setdefault(directive.var, {})[
                    directive.param_index
                ] = True
        for var, bound_params in param_bindings.items():
            if self._can_reconstruct(var, bound_params, cctx):
                cctx.bindings[var] = _FAKE
        for arg in (*op_def.operands, *op_def.results):
            if not _inferable(arg.constraint, cctx):
                raise FormatError(
                    f"{op_def.qualified_name}: the type of "
                    f"{arg.name!r} cannot be inferred from the format"
                )

    def _can_reconstruct(
        self, var: str, bound_params: dict[int, bool], cctx: ConstraintContext
    ) -> bool:
        var_constraint = self.op_def.constraint_vars.get(var)
        if var_constraint is None:
            return False
        base = var_constraint.base
        if not isinstance(base, ParametricConstraint):
            return False
        for index, param_constraint in enumerate(base.param_constraints):
            if bound_params.get(index):
                continue
            if not _inferable(param_constraint, cctx):
                return False
        return True

    # -- parsing ---------------------------------------------------------

    def parse(self, parser: "IRParser", definition: Any) -> "Operation":
        """Parse the custom syntax following the operation name."""
        from repro.textir.lexer import TokenKind

        op_def = self.op_def
        operand_tokens: dict[str, "Token"] = {}
        attributes: dict[str, Attribute] = {}
        var_types: dict[str, Attribute] = {}
        var_params: dict[str, dict[int, Any]] = {}

        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                _parse_literal(parser, directive.text)
            elif isinstance(directive, OperandDirective):
                operand_tokens[directive.name] = parser.expect(
                    TokenKind.PERCENT_IDENT, f"operand ${directive.name}"
                )
            elif isinstance(directive, AttributeDirective):
                attributes[directive.name] = parser.parse_attribute()
            elif isinstance(directive, VarTypeDirective):
                var_types[directive.var] = parser.parse_type()
            elif isinstance(directive, VarParamDirective):
                var_params.setdefault(directive.var, {})[
                    directive.param_index
                ] = parser.parse_param()

        cctx = ConstraintContext()
        for var, var_type in var_types.items():
            op_def.constraint_vars[var].verify(var_type, cctx)
        for var, params in var_params.items():
            value = self._reconstruct(var, params, cctx)
            op_def.constraint_vars[var].verify(value, cctx)

        operand_types = [
            _infer_type(arg.constraint, cctx, arg.name, op_def)
            for arg in op_def.operands
        ]
        result_types = [
            _infer_type(arg.constraint, cctx, arg.name, op_def)
            for arg in op_def.results
        ]
        operands = [
            parser.resolve_value(
                operand_tokens[arg.name].value, ty, operand_tokens[arg.name]
            )
            for arg, ty in zip(op_def.operands, operand_types)
        ]
        return parser.context.create_operation(
            op_def.qualified_name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
        )

    def _reconstruct(
        self, var: str, params: dict[int, Any], cctx: ConstraintContext
    ) -> Attribute:
        var_constraint = self.op_def.constraint_vars[var]
        base = var_constraint.base
        if not isinstance(base, ParametricConstraint):
            raise VerifyError(
                f"cannot reconstruct constraint variable {var}: its base "
                "constraint is not parametric"
            )
        values = []
        for index, param_constraint in enumerate(base.param_constraints):
            if index in params:
                values.append(params[index])
            else:
                values.append(param_constraint.infer(cctx))
        return base.definition.instantiate(values)

    # -- printing --------------------------------------------------------

    def print(self, op: "Operation", printer: "Printer") -> None:
        """Print the custom syntax following the operation name."""
        cctx = self._bindings_for(op)
        operand_index = {a.name: i for i, a in enumerate(self.op_def.operands)}
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                if directive.text in _TIGHT_LITERALS:
                    printer.write(directive.text)
                else:
                    printer.write(f" {directive.text}")
                continue
            printer.write(" ")
            if isinstance(directive, OperandDirective):
                printer.print_operand(op.operands[operand_index[directive.name]])
            elif isinstance(directive, AttributeDirective):
                printer.print_attribute(op.attributes[directive.name])
            elif isinstance(directive, VarTypeDirective):
                printer.print_type(cctx.bindings[directive.var])
            elif isinstance(directive, VarParamDirective):
                bound = cctx.bindings[directive.var]
                printer.print_param(bound.parameters[directive.param_index])

    def _bindings_for(self, op: "Operation") -> ConstraintContext:
        """Recover constraint-variable bindings from a concrete operation."""
        cctx = ConstraintContext()
        for arg, value in zip(self.op_def.operands, op.operands):
            arg.constraint.verify(value.type, cctx)
        for arg, result in zip(self.op_def.results, op.results):
            arg.constraint.verify(result.type, cctx)
        return cctx


class TypeFormatProgram:
    """A declarative parameter format for a type or attribute (§4.7).

    The format string describes the text *between the angle brackets* of
    the usual ``!dialect.name<...>`` syntax: parameter directives
    (``$paramName``) interleaved with literals, e.g.
    ``Format "$bitwidth x $lanes"``.  Every parameter must be mentioned
    exactly once.
    """

    def __init__(self, qualified_name: str, parameter_names: tuple[str, ...],
                 format_string: str):
        self.qualified_name = qualified_name
        self.parameter_names = parameter_names
        self.directives: list[LiteralDirective | VarParamDirective] = []
        mentioned: list[str] = []
        for match in _TOKEN_RE.finditer(format_string):
            text = match.group(0)
            if not text.startswith("$"):
                self.directives.append(LiteralDirective(text))
                continue
            name = text[1:]
            if name not in parameter_names:
                raise FormatError(
                    f"{qualified_name}: format refers to unknown parameter "
                    f"${name}"
                )
            mentioned.append(name)
            self.directives.append(
                VarParamDirective(name, name, parameter_names.index(name))
            )
        if sorted(mentioned) != sorted(parameter_names):
            raise FormatError(
                f"{qualified_name}: format must mention every parameter "
                f"exactly once"
            )

    def parse(self, parser: "IRParser") -> list[Any]:
        """Parse the parameter list (without the angle brackets)."""
        values: dict[int, Any] = {}
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                _parse_literal(parser, directive.text)
            else:
                values[directive.param_index] = parser.parse_param()
        return [values[i] for i in range(len(self.parameter_names))]

    def print(self, parameters, printer: "Printer") -> None:
        """Print the parameter list (without the angle brackets)."""
        first = True
        for directive in self.directives:
            if isinstance(directive, LiteralDirective):
                if directive.text in _TIGHT_LITERALS or first:
                    printer.write(directive.text)
                else:
                    printer.write(f" {directive.text}")
            else:
                if not first:
                    printer.write(" ")
                printer.print_param(parameters[directive.param_index])
            first = False

    def render(self, parameters) -> str:
        from repro.textir.printer import Printer

        printer = Printer()
        self.print(parameters, printer)
        return printer.getvalue()


class _Fake:
    def __repr__(self) -> str:
        return "<inferred>"


_FAKE = _Fake()


def _inferable(constraint: Constraint, cctx: ConstraintContext) -> bool:
    try:
        constraint.infer(cctx)
        return True
    except CannotInfer:
        return False
    except Exception:
        # Inference over fake bindings may fail downstream (e.g. trying to
        # instantiate with a fake parameter); reaching instantiation means
        # the shape was inferable.
        return True


def _infer_type(
    constraint: Constraint, cctx: ConstraintContext, name: str, op_def: OpDef
) -> Attribute:
    try:
        return constraint.infer(cctx)
    except CannotInfer as err:
        raise VerifyError(
            f"{op_def.qualified_name}: cannot infer the type of {name!r} "
            f"from the custom format: {err}"
        ) from err


def _parse_literal(parser: "IRParser", text: str) -> None:
    from repro.textir.lexer import PUNCTUATION, TokenKind

    if text == "->":
        parser.expect(TokenKind.ARROW, "'->'")
        return
    kind = PUNCTUATION.get(text)
    if kind is not None:
        parser.expect(kind, f"{text!r}")
        return
    token = parser.expect(TokenKind.BARE_IDENT, f"keyword {text!r}")
    if token.text != text:
        raise parser.error(f"expected keyword {text!r}, found {token.text!r}", token)


def _scan_directives(op_def: OpDef) -> list[Directive]:
    assert op_def.format is not None
    directives: list[Directive] = []
    operand_index = {a.name: i for i, a in enumerate(op_def.operands)}
    attr_names = {a.name for a in op_def.attributes}
    for match in _TOKEN_RE.finditer(op_def.format):
        text = match.group(0)
        if not text.startswith("$"):
            directives.append(LiteralDirective(text))
            continue
        body = text[1:]
        if "." in body:
            var, param = body.split(".", 1)
            directives.append(
                VarParamDirective(var, param, _param_index(op_def, var, param))
            )
            continue
        if body in operand_index:
            directives.append(OperandDirective(body, operand_index[body]))
        elif body in attr_names:
            directives.append(AttributeDirective(body))
        elif body in op_def.constraint_vars:
            directives.append(VarTypeDirective(body))
        else:
            raise FormatError(
                f"{op_def.qualified_name}: format refers to unknown name "
                f"${body}"
            )
    return directives


def _param_index(op_def: OpDef, var: str, param: str) -> int:
    var_constraint = op_def.constraint_vars.get(var)
    if var_constraint is None:
        raise FormatError(
            f"{op_def.qualified_name}: format refers to unknown constraint "
            f"variable ${var}"
        )
    base = var_constraint.base
    if not isinstance(base, ParametricConstraint):
        raise FormatError(
            f"{op_def.qualified_name}: ${var}.{param} requires {var} to be "
            "constrained to a parametric type"
        )
    names = base.definition.parameter_names
    if param not in names:
        raise FormatError(
            f"{op_def.qualified_name}: {base.definition.qualified_name} has "
            f"no parameter named {param!r}"
        )
    return names.index(param)
