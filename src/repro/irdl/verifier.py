"""Verifier generation: from an IRDL operation definition to a checker.

An IRDL specification carries enough information to derive verifiers that
assert IR invariants (§3, deliverable (3)).  The generated verifier
checks, in order:

1. operand/result counts, including *variadic segment matching* — with a
   single ``Variadic``/``Optional`` definition the segment sizes are
   implied; with several, a ``<kind>_segment_sizes`` attribute is
   required, as §4.6 specifies;
2. operand and result type constraints, with constraint variables unified
   across all uses (§4.6);
3. declared attributes and their constraints;
4. region shape: region count, entry-block argument constraints, and the
   single-block + terminator discipline when a ``Terminator`` is given;
5. successor counts, and the terminator-placement rule implied by any
   ``Successors`` directive (even an empty one, Listing 8);
6. IRDL-Py global constraints (§5.1).

Since the uniquing/plan work, all of the per-definition analysis happens
**once**, at ``make_op_verifier`` time: the definition is compiled into a
:class:`~repro.irdl.plan.VerificationPlan` that pre-resolves segment
layouts, attribute tables, and constraint variable-freeness, and
memoizes repeated variable-free checks against interned attributes (see
:mod:`repro.irdl.plan` for the soundness argument).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.ir.exceptions import VerifyError
from repro.irdl.defs import ArgDef, OpDef
from repro.irdl.plan import CONSTRAINT_MEMO, SegmentPlan, VerificationPlan
from repro.obs.instrument import OBS

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.ir.value import SSAValue

__all__ = [
    "CONSTRAINT_MEMO",
    "SegmentPlan",
    "VerificationPlan",
    "make_op_verifier",
    "match_segments",
]


def match_segments(
    values: Sequence["SSAValue"],
    defs: Sequence[ArgDef],
    op: "Operation",
    kind: str,
) -> list[list["SSAValue"]]:
    """Assign actual values to operand/result definitions (§4.6).

    Returns one (possibly empty) list of values per definition.  Raises
    :class:`VerifyError` when the counts cannot match.

    This is the uncompiled convenience entry point; hot callers go
    through a cached :class:`~repro.irdl.plan.SegmentPlan` instead, which
    performs the variadic analysis once per definition list.
    """
    return SegmentPlan(defs, kind).match(values, op)


def make_op_verifier(op_def: OpDef) -> Callable[["Operation"], None]:
    """Compile one operation definition into its verification function.

    All definition-side analysis (variadic layout, attribute tables,
    IRDL-Py predicate compilation, constraint variable-freeness) happens
    here, once.  When definition-time code generation is enabled
    (:mod:`repro.irdl.codegen`, the default), the checks are additionally
    lowered to a generated Python function specialized to this
    definition; the interpretive plan remains the reference path
    (``REPRO_NO_CODEGEN=1`` / ``irdl-opt --no-codegen``) and is kept for
    introspection either way as ``verify.plan``.  The emitted source, if
    any, is exposed as ``verify.generated_source``
    (``irdl-opt --dump-generated``).
    """
    from repro.irdl import codegen

    plan = VerificationPlan(op_def)
    generated_source: str | None = None
    impl: Callable[["Operation"], None] = plan.run
    if codegen.enabled():
        compiled = codegen.compile_op_verifier(op_def, plan)
        if compiled is not None:
            impl, generated_source = compiled

    def verify(op: "Operation") -> None:
        metrics = OBS.metrics
        if not metrics.enabled:
            impl(op)
            return
        metrics.counter("irdl.verifier.ops_verified").inc()
        try:
            impl(op)
        except VerifyError:
            metrics.counter(f"irdl.verifier.failures.{op.name}").inc()
            raise

    verify.plan = plan  # type: ignore[attr-defined]
    verify.compiled = generated_source is not None  # type: ignore[attr-defined]
    verify.generated_source = generated_source  # type: ignore[attr-defined]
    return verify
