"""Verifier generation: from an IRDL operation definition to a checker.

An IRDL specification carries enough information to derive verifiers that
assert IR invariants (§3, deliverable (3)).  The generated verifier
checks, in order:

1. operand/result counts, including *variadic segment matching* — with a
   single ``Variadic``/``Optional`` definition the segment sizes are
   implied; with several, a ``<kind>_segment_sizes`` attribute is
   required, as §4.6 specifies;
2. operand and result type constraints, with constraint variables unified
   across all uses (§4.6);
3. declared attributes and their constraints;
4. region shape: region count, entry-block argument constraints, and the
   single-block + terminator discipline when a ``Terminator`` is given;
5. successor counts, and the terminator-placement rule implied by any
   ``Successors`` directive (even an empty one, Listing 8);
6. IRDL-Py global constraints (§5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.builtin.attributes import ArrayAttr, IntegerAttr
from repro.ir.exceptions import VerifyError
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import ConstraintContext
from repro.irdl.defs import ArgDef, OpDef
from repro.irdl.irdl_py import compile_op_predicate, run_op_predicate
from repro.obs.instrument import OBS

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.ir.value import SSAValue


def match_segments(
    values: Sequence["SSAValue"],
    defs: Sequence[ArgDef],
    op: "Operation",
    kind: str,
) -> list[list["SSAValue"]]:
    """Assign actual values to operand/result definitions (§4.6).

    Returns one (possibly empty) list of values per definition.  Raises
    :class:`VerifyError` when the counts cannot match.
    """
    variadic_defs = [d for d in defs if d.is_variadic]
    n_values, n_defs = len(values), len(defs)

    if not variadic_defs:
        if n_values != n_defs:
            raise VerifyError(
                f"{op.name} expects {n_defs} {kind}s, got {n_values}"
            )
        return [[v] for v in values]

    if len(variadic_defs) == 1:
        n_fixed = n_defs - 1
        n_variadic = n_values - n_fixed
        if n_variadic < 0:
            raise VerifyError(
                f"{op.name} expects at least {n_fixed} {kind}s, got {n_values}"
            )
        only = variadic_defs[0]
        if only.variadicity is Variadicity.OPTIONAL and n_variadic > 1:
            raise VerifyError(
                f"{op.name}: optional {kind} {only.name!r} matches at most "
                f"one value, got {n_variadic}"
            )
        segments: list[list[SSAValue]] = []
        cursor = 0
        for arg_def in defs:
            size = n_variadic if arg_def.is_variadic else 1
            segments.append(list(values[cursor : cursor + size]))
            cursor += size
        return segments

    # Several variadic definitions: §4.6 requires an explicit attribute
    # giving the size of each segment.
    attr_name = f"{kind}_segment_sizes"
    sizes_attr = op.attributes.get(attr_name)
    if not isinstance(sizes_attr, ArrayAttr):
        raise VerifyError(
            f"{op.name} has {len(variadic_defs)} variadic {kind} "
            f"definitions and requires an {attr_name} array attribute"
        )
    sizes: list[int] = []
    for element in sizes_attr.elements:
        if not isinstance(element, IntegerAttr):
            raise VerifyError(
                f"{op.name}: {attr_name} must contain integer attributes"
            )
        sizes.append(element.value)
    if len(sizes) != n_defs:
        raise VerifyError(
            f"{op.name}: {attr_name} has {len(sizes)} entries for "
            f"{n_defs} {kind} definitions"
        )
    if sum(sizes) != n_values:
        raise VerifyError(
            f"{op.name}: {attr_name} sums to {sum(sizes)} but there are "
            f"{n_values} {kind}s"
        )
    segments = []
    cursor = 0
    for arg_def, size in zip(defs, sizes):
        if arg_def.variadicity is Variadicity.SINGLE and size != 1:
            raise VerifyError(
                f"{op.name}: {kind} {arg_def.name!r} is not variadic but "
                f"its segment size is {size}"
            )
        if arg_def.variadicity is Variadicity.OPTIONAL and size > 1:
            raise VerifyError(
                f"{op.name}: optional {kind} {arg_def.name!r} has segment "
                f"size {size}"
            )
        if size < 0:
            raise VerifyError(f"{op.name}: negative segment size {size}")
        segments.append(list(values[cursor : cursor + size]))
        cursor += size
    return segments


def make_op_verifier(op_def: OpDef) -> Callable[["Operation"], None]:
    """Derive the verification function for one operation definition."""
    predicates = [
        (code, compile_op_predicate(code)) for code in op_def.py_constraints
    ]

    def run_checks(op: "Operation") -> None:
        cctx = ConstraintContext()
        _verify_values(op, op.operands, op_def.operands, "operand", cctx)
        _verify_values(op, op.results, op_def.results, "result", cctx)
        _verify_attributes(op, op_def, cctx)
        _verify_regions(op, op_def, cctx)
        _verify_successors(op, op_def)
        for code, predicate in predicates:
            run_op_predicate(predicate, code, op, op_def)

    def verify(op: "Operation") -> None:
        metrics = OBS.metrics
        if not metrics.enabled:
            run_checks(op)
            return
        metrics.counter("irdl.verifier.ops_verified").inc()
        try:
            run_checks(op)
        except VerifyError:
            metrics.counter(f"irdl.verifier.failures.{op.name}").inc()
            raise

    return verify


def _verify_values(
    op: "Operation",
    values: Sequence["SSAValue"],
    defs: Sequence[ArgDef],
    kind: str,
    cctx: ConstraintContext,
) -> None:
    segments = match_segments(values, defs, op, kind)
    for arg_def, segment in zip(defs, segments):
        for value in segment:
            try:
                arg_def.constraint.verify(value.type, cctx)
            except VerifyError as err:
                raise VerifyError(
                    f"{op.name}: {kind} {arg_def.name!r}: {err}", obj=op
                ) from err
    if OBS.metrics.enabled:
        OBS.metrics.counter("irdl.verifier.constraint_checks").inc(
            sum(len(segment) for segment in segments)
        )


def _verify_attributes(op: "Operation", op_def: OpDef, cctx: ConstraintContext) -> None:
    if op_def.attributes and OBS.metrics.enabled:
        OBS.metrics.counter("irdl.verifier.constraint_checks").inc(
            len(op_def.attributes)
        )
    for attr_def in op_def.attributes:
        attr = op.attributes.get(attr_def.name)
        if attr is None:
            raise VerifyError(
                f"{op.name} expects an attribute named {attr_def.name!r}",
                obj=op,
            )
        try:
            attr_def.constraint.verify(attr, cctx)
        except VerifyError as err:
            raise VerifyError(
                f"{op.name}: attribute {attr_def.name!r}: {err}", obj=op
            ) from err


def _verify_regions(op: "Operation", op_def: OpDef, cctx: ConstraintContext) -> None:
    if len(op.regions) != len(op_def.regions):
        raise VerifyError(
            f"{op.name} expects {len(op_def.regions)} regions, got "
            f"{len(op.regions)}",
            obj=op,
        )
    for region_def, region in zip(op_def.regions, op.regions):
        entry = region.entry_block
        if entry is None:
            if region_def.arguments or region_def.terminator:
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must not be empty",
                    obj=op,
                )
            continue
        arg_segments = match_segments(
            entry.args, region_def.arguments, op, f"region {region_def.name!r} argument"
        )
        for arg_def, segment in zip(region_def.arguments, arg_segments):
            for arg in segment:
                try:
                    arg_def.constraint.verify(arg.type, cctx)
                except VerifyError as err:
                    raise VerifyError(
                        f"{op.name}: region {region_def.name!r} argument "
                        f"{arg_def.name!r}: {err}",
                        obj=op,
                    ) from err
        if region_def.terminator is not None:
            if len(region.blocks) != 1:
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must contain a "
                    f"single basic block (it declares a terminator)",
                    obj=op,
                )
            last = entry.last_op
            if last is None or last.name != region_def.terminator:
                found = last.name if last is not None else "nothing"
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must end with "
                    f"{region_def.terminator}, found {found}",
                    obj=op,
                )


def _verify_successors(op: "Operation", op_def: OpDef) -> None:
    expected = len(op_def.successors) if op_def.successors is not None else 0
    if len(op.successors) != expected:
        raise VerifyError(
            f"{op.name} expects {expected} successors, got "
            f"{len(op.successors)}",
            obj=op,
        )
