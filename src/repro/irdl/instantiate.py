"""Dynamic dialect instantiation (§3).

Registering an IRDL file with a context replaces the traditional
"write, compile, and link several complex C++ or TableGen files" loop:
all data structures are instantiated at runtime and the compiler is
immediately prepared to build, parse, print, and verify IR of the new
dialect.

From one :class:`~repro.irdl.defs.DialectDef` this module derives the
three artefacts §3 lists:

1. parsers and printers — generic syntax for free, plus declarative
   ``Format`` programs where declared;
2. data structures — :class:`DynamicTypeAttribute` /
   :class:`DynamicParametrizedAttribute` instances with named parameter
   accessors;
3. verifiers — generated from the declared constraints.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.ir.attributes import (
    Attribute,
    DynamicParametrizedAttribute,
    DynamicTypeAttribute,
)
from repro.ir.context import Context
from repro.ir.dialect import (
    AttrDefBinding,
    DialectBinding,
    EnumBinding,
    OpDefBinding,
)
from repro.ir.exceptions import UnregisteredConstructError, VerifyError
from repro.ir.uniquer import intern as uniquer_intern
from repro.irdl import ast
from repro.irdl.constraints import ConstraintContext
from repro.irdl.defs import DialectDef, OpDef, TypeDef
from repro.irdl.format import FormatProgram
from repro.irdl.irdl_py import AttrProxy, compile_predicate
from repro.irdl.parser import parse_irdl
from repro.irdl.resolver import Scope, resolve_dialect_body
from repro.irdl.verifier import make_op_verifier
from repro.obs import timing as _timing
from repro.obs.instrument import OBS


class DynamicAttrDef(AttrDefBinding):
    """A type/attribute binding generated from an IRDL definition."""

    def __init__(self, type_def_ast: ast.TypeDecl, dialect_name: str):
        super().__init__(
            f"{dialect_name}.{type_def_ast.name}",
            is_type=type_def_ast.is_type,
            parameter_names=[p.name for p in type_def_ast.parameters],
            summary=type_def_ast.summary,
        )
        #: Filled in once the dialect body is resolved.
        self.type_def: TypeDef | None = None
        #: Generated parameter verifier (definition-time codegen); the
        #: emitted source is kept for ``irdl-opt --dump-generated``.
        self._compiled_params = None
        self.generated_param_source: str | None = None
        self._py_predicates = [
            (code, compile_predicate(code)) for code in type_def_ast.py_constraints
        ]
        #: Declarative parameter format (§4.7), when declared.
        self.param_format = None
        if type_def_ast.format is not None:
            from repro.irdl.format import TypeFormatProgram

            self.param_format = TypeFormatProgram(
                self.qualified_name, self.parameter_names, type_def_ast.format
            )

    def attach_type_def(self, type_def: TypeDef) -> None:
        """Install the resolved definition (and, when codegen is on, a
        generated parameter verifier specialized to it)."""
        from repro.irdl import codegen

        self.type_def = type_def
        if codegen.enabled():
            compiled = codegen.compile_param_verifier(type_def)
            if compiled is not None:
                self._compiled_params, self.generated_param_source = compiled

    def verify_parameters(self, parameters: tuple[Any, ...]) -> None:
        if self._compiled_params is not None:
            self._compiled_params(parameters)
            if self._py_predicates:
                self._run_py_predicates(parameters)
            return
        if len(parameters) != len(self.parameter_names):
            raise VerifyError(
                f"{self.qualified_name} expects {len(self.parameter_names)} "
                f"parameters, got {len(parameters)}"
            )
        if self.type_def is None:
            return  # still registering; constraints not yet resolved
        cctx = ConstraintContext()
        for param_def, value in zip(self.type_def.parameters, parameters):
            try:
                param_def.constraint.verify(value, cctx)
            except VerifyError as err:
                raise VerifyError(
                    f"{self.qualified_name}: parameter "
                    f"{param_def.name!r}: {err}"
                ) from err
        if self._py_predicates:
            self._run_py_predicates(parameters)

    def _run_py_predicates(self, parameters: Sequence[Any]) -> None:
        instance = self._construct(parameters)
        for code, predicate in self._py_predicates:
            if not predicate(instance):
                raise VerifyError(
                    f"{self.qualified_name}: PyConstraint violated: "
                    f"{code!r}"
                )

    def _construct(self, parameters: Sequence[Any]) -> Attribute:
        cls = DynamicTypeAttribute if self.is_type else DynamicParametrizedAttribute
        return cls(self, parameters)

    def instantiate(self, parameters: Sequence[Any] = ()) -> Attribute:
        params = tuple(parameters)
        self.verify_parameters(params)
        # Dynamic attributes are uniqued per definition: the structural
        # key includes the definition's identity, so two dialects with a
        # same-named type never share instances.
        return uniquer_intern(self._construct(params))


class DynamicOpDef(OpDefBinding):
    """An operation binding generated from an IRDL definition."""

    def __init__(self, op_def: OpDef):
        super().__init__(
            op_def.qualified_name,
            summary=op_def.summary,
            is_terminator=op_def.is_terminator,
            verifier=make_op_verifier(op_def),
        )
        self.op_def = op_def
        self.location = op_def.location
        self.format_program: FormatProgram | None = None
        if op_def.format is not None:
            self.format_program = FormatProgram.compile(op_def)

    def has_custom_format(self) -> bool:
        return self.format_program is not None

    def prepare_custom(self, op) -> None:
        assert self.format_program is not None
        self.format_program._bindings_for(op)

    def print_custom(self, op, printer) -> None:
        assert self.format_program is not None
        self.format_program.print(op, printer)

    def parse_custom(self, parser):
        assert self.format_program is not None
        return self.format_program.parse(parser, self)


def register_dialect(context: Context, decl: ast.DialectDecl) -> DialectDef:
    """Register one parsed IRDL dialect into a context.

    Returns the resolved :class:`DialectDef` (also stored on the binding
    as ``binding.irdl_def`` for introspection and analysis tooling).
    """
    if not OBS.active:
        return _register_dialect(context, decl)
    start = _timing.now()
    with OBS.tracer.span(f"irdl.register:{decl.name}", category="irdl"):
        dialect_def = _register_dialect(context, decl)
    metrics = OBS.metrics
    if metrics.enabled:
        scope = metrics.scope("irdl.instantiate")
        scope.counter("dialects_loaded").inc()
        scope.counter("ops_instantiated").inc(len(dialect_def.operations))
        scope.counter("types_instantiated").inc(
            len(dialect_def.types) + len(dialect_def.attributes)
        )
        scope.timer("register_time").record(_timing.now() - start)
    return dialect_def


def _register_dialect(context: Context, decl: ast.DialectDecl) -> DialectDef:
    if context.get_dialect(decl.name) is not None:
        raise UnregisteredConstructError(
            f"dialect {decl.name!r} is already registered"
        )
    binding = DialectBinding(decl.name)

    for enum_decl in decl.enums:
        binding.register_enum(
            EnumBinding(f"{decl.name}.{enum_decl.name}", enum_decl.constructors)
        )

    attr_bindings: dict[str, DynamicAttrDef] = {}
    for type_decl in decl.types:
        dynamic = DynamicAttrDef(type_decl, decl.name)
        binding.register_type(dynamic)
        attr_bindings[type_decl.name] = dynamic
    for attr_decl in decl.attributes:
        dynamic = DynamicAttrDef(attr_decl, decl.name)
        binding.register_attr(dynamic)
        attr_bindings[attr_decl.name] = dynamic

    context.register_dialect(binding)
    try:
        scope = Scope(context, decl)
        dialect_def = resolve_dialect_body(decl, scope)
    except Exception:
        # Roll back a partially registered dialect so the context stays
        # consistent after a resolution error.
        del context.dialects[decl.name]
        raise

    for type_def in (*dialect_def.types, *dialect_def.attributes):
        attr_bindings[type_def.name].attach_type_def(type_def)
    for op_def in dialect_def.operations:
        binding.register_op(DynamicOpDef(op_def))

    # Expose the resolved definition and syntax tree for introspection
    # (§6's analyses run over these records; cross-dialect alias lookup
    # uses the syntax tree).
    binding.irdl_def = dialect_def  # type: ignore[attr-defined]
    binding.irdl_ast = decl  # type: ignore[attr-defined]
    return dialect_def


def register_irdl(context: Context, text: str, name: str = "<irdl>") -> list[DialectDef]:
    """Parse IRDL source text and register every dialect it defines."""
    decls = parse_irdl(text, name)
    return [register_dialect(context, decl) for decl in decls]


def load_irdl_file(context: Context, path: str) -> list[DialectDef]:
    """Load and register the dialects of one ``.irdl`` file.

    The file may hold IRDL source text or a compiled dialects artifact
    (``irdl-opt --compile-irdl``); the bytecode magic number decides,
    so callers never need to know which form they were handed.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    from repro.bytecode import decode_dialects, is_bytecode

    if is_bytecode(raw):
        decls = decode_dialects(raw, name=path)
        return [register_dialect(context, decl) for decl in decls]
    return register_irdl(context, raw.decode("utf-8"), path)
