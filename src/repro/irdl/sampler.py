"""Constraint sampling: generate values *satisfying* a constraint.

§3 argues that IRDL's self-contained definitions make it "easy to
introspect and generate IRs".  This module is the generative half of the
constraint system (:mod:`repro.irdl.constraints` is the checking half):
``sample(constraint)`` produces a type, attribute, or parameter value
satisfying the constraint, respecting constraint-variable bindings.

Sampling powers the IR generator (:mod:`repro.irdl.irgen`) and doubles
as a fuzzer foundation: every sampled value is checked against its own
constraint, so a sampler/verifier disagreement fails loudly.
"""

from __future__ import annotations

import random
from typing import Any

from repro.ir.attributes import Attribute
from repro.ir.exceptions import VerifyError
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    StringParam,
    TypeIdParam,
)
from repro.irdl import constraints as C


class CannotSample(Exception):
    """The constraint has no enumerable inhabitant we know how to build."""


class ConstraintSampler:
    """Samples values satisfying constraints, with variable consistency."""

    #: Fallback pool used for ``!AnyType`` (populated lazily from builtin).
    def __init__(self, rng: random.Random | None = None,
                 any_type_pool: list[Attribute] | None = None):
        self.rng = rng if rng is not None else random.Random(0)
        if any_type_pool is None:
            from repro.builtin import f32, f64, i1, i32, i64, index

            any_type_pool = [i1, i32, i64, f32, f64, index]
        self.any_type_pool = any_type_pool

    # ------------------------------------------------------------------

    def sample(self, constraint: C.Constraint,
               cctx: C.ConstraintContext | None = None) -> Any:
        """A value satisfying ``constraint`` under (and updating) ``cctx``."""
        cctx = cctx if cctx is not None else C.ConstraintContext()
        value = self._sample(constraint, cctx)
        # Self-check: the sampler must agree with the verifier.
        constraint.verify(value, cctx)
        return value

    # ------------------------------------------------------------------

    def _sample(self, constraint: C.Constraint, cctx: C.ConstraintContext) -> Any:
        if isinstance(constraint, C.EqConstraint):
            return constraint.expected
        if isinstance(constraint, C.VarConstraint):
            if constraint.name in cctx.bindings:
                return cctx.bindings[constraint.name]
            value = self._sample(constraint.base, cctx)
            cctx.bindings[constraint.name] = value
            return value
        if isinstance(constraint, C.AnyOfConstraint):
            alternatives = list(constraint.alternatives)
            self.rng.shuffle(alternatives)
            for alternative in alternatives:
                saved = dict(cctx.bindings)
                try:
                    return self._sample(alternative, cctx)
                except CannotSample:
                    cctx.bindings.clear()
                    cctx.bindings.update(saved)
            raise CannotSample(f"no samplable alternative in {constraint!r}")
        if isinstance(constraint, C.AndConstraint):
            # Sample the most constrained conjunct, verify the rest.
            for conjunct in constraint.conjuncts:
                saved = dict(cctx.bindings)
                try:
                    candidate = self._sample(conjunct, cctx)
                    constraint.verify(candidate, cctx)
                    return candidate
                except (CannotSample, VerifyError):
                    cctx.bindings.clear()
                    cctx.bindings.update(saved)
            raise CannotSample(f"cannot satisfy conjunction {constraint!r}")
        if isinstance(constraint, C.NotConstraint):
            for _ in range(16):
                candidate = self.rng.choice(self.any_type_pool)
                if constraint.satisfied_by(candidate, cctx):
                    return candidate
            raise CannotSample(f"cannot avoid {constraint.inner!r}")
        if isinstance(constraint, C.AnyTypeConstraint):
            return self.rng.choice(self.any_type_pool)
        if isinstance(constraint, C.AnyAttrConstraint):
            from repro.builtin import IntegerAttr, StringAttr

            return self.rng.choice(
                [StringAttr("sampled"), IntegerAttr(self.rng.randrange(64))]
            )
        if isinstance(constraint, C.AnyParamConstraint):
            return IntegerParam(self.rng.randrange(128), 32, True)
        if isinstance(constraint, C.BaseConstraint):
            return self._sample_definition(constraint.definition, None, cctx)
        if isinstance(constraint, C.ParametricConstraint):
            return self._sample_definition(
                constraint.definition, constraint.param_constraints, cctx
            )
        if isinstance(constraint, C.IntTypeConstraint):
            low, high = IntegerParam.value_range(
                constraint.bitwidth, constraint.signed
            )
            # Bias towards small magnitudes: bounded-integer refinements
            # (à la BoundedInteger, Listing 10) stay rejection-samplable.
            if self.rng.getrandbits(1):
                value = self.rng.randrange(0, min(high, 16) + 1)
            else:
                value = self.rng.randrange(max(low, -1024), min(high, 1024) + 1)
            return IntegerParam(value, constraint.bitwidth, constraint.signed)
        if isinstance(constraint, C.IntLiteralConstraint):
            return constraint.param
        if isinstance(constraint, C.AnyStringConstraint):
            return StringParam(self.rng.choice(["a", "ir", "sampled", "x"]))
        if isinstance(constraint, C.StringLiteralConstraint):
            return StringParam(constraint.value)
        if isinstance(constraint, C.AnyFloatConstraint):
            return FloatParam(round(self.rng.uniform(-8, 8), 3),
                              constraint.bitwidth)
        if isinstance(constraint, C.LocationConstraint):
            return LocationParam("sampled.mlir", self.rng.randrange(1, 100), 1)
        if isinstance(constraint, C.TypeIdConstraint):
            return TypeIdParam("sampled.TypeId")
        if isinstance(constraint, C.EnumConstraint):
            return EnumParam(
                constraint.enum.qualified_name,
                self.rng.choice(constraint.enum.constructors),
            )
        if isinstance(constraint, C.EnumConstructorConstraint):
            return EnumParam(constraint.enum.qualified_name,
                             constraint.constructor)
        if isinstance(constraint, C.ArrayAnyConstraint):
            return ArrayParam(tuple(
                self._sample(constraint.element, cctx)
                for _ in range(self.rng.randrange(0, 4))
            ))
        if isinstance(constraint, C.ArrayExactConstraint):
            return ArrayParam(tuple(
                self._sample(element, cctx) for element in constraint.elements
            ))
        if isinstance(constraint, C.FloatAttrConstraint):
            from repro.builtin import FloatAttr, FloatType

            return FloatAttr(round(self.rng.uniform(-8, 8), 3),
                             FloatType(constraint.bitwidth))
        if isinstance(constraint, C.IntegerAttrConstraint):
            from repro.builtin import IntegerAttr, IntegerType, index

            if constraint.bitwidth is None:
                return IntegerAttr(self.rng.randrange(64), index)
            return IntegerAttr(
                self.rng.randrange(min(64, 2 ** (constraint.bitwidth - 1))),
                IntegerType(constraint.bitwidth),
            )
        if isinstance(constraint, C.PyConstraint):
            # Rejection-sample through the predicate.
            for _ in range(64):
                saved = dict(cctx.bindings)
                candidate = self._sample(constraint.base, cctx)
                if constraint.satisfied_by(candidate, cctx):
                    return candidate
                cctx.bindings.clear()
                cctx.bindings.update(saved)
            raise CannotSample(
                f"predicate of {constraint.name} rejected 64 samples"
            )
        if isinstance(constraint, C.ParamWrapperConstraint):
            return OpaqueParam(constraint.class_name, "sampled")
        raise CannotSample(f"no sampler for {type(constraint).__name__}")

    def _sample_definition(self, definition, param_constraints, cctx) -> Attribute:
        if param_constraints is None:
            binding_names = definition.parameter_names
            irdl_def = getattr(definition, "type_def", None)
            if irdl_def is not None:
                param_constraints = [p.constraint for p in irdl_def.parameters]
            elif not binding_names:
                param_constraints = []
            else:
                raise CannotSample(
                    f"cannot sample parameters of {definition.qualified_name}"
                )
        params = [self._sample(c, cctx) for c in param_constraints]
        try:
            return definition.instantiate(params)
        except VerifyError as err:
            raise CannotSample(
                f"sampled parameters rejected by {definition.qualified_name}: "
                f"{err}"
            ) from err


def sample(constraint: C.Constraint, seed: int = 0) -> Any:
    """One-shot convenience sampler."""
    return ConstraintSampler(random.Random(seed)).sample(constraint)
