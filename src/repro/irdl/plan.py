"""Compiled verification plans: hoist per-verify analysis to compile time.

``make_op_verifier`` used to hand back a closure that re-derived
everything on every call: ``match_segments`` re-scanned the definition
list for variadics, attribute checks re-walked the declaration list, and
identical ``(constraint, type)`` pairs were re-checked from scratch for
every operation of the same shape.  This module compiles one
:class:`VerificationPlan` per :class:`~repro.irdl.defs.OpDef` instead:

* :class:`SegmentPlan` — the variadic-defs analysis of §4.6 (how many
  variadic definitions, which one, what the fixed count is) is performed
  once per definition list, so the per-verify work is a couple of integer
  comparisons plus the slicing itself;
* per-attribute and per-value check tables with the *variable-freeness*
  of each constraint precomputed (``Constraint.variables()`` is a
  recursive walk — running it per verify would defeat the point);
* :class:`ConstraintMemo` — an LRU of successful variable-free constraint
  checks keyed by ``(constraint, value)`` *identity*.  Uniqued attribute
  storage (:mod:`repro.ir.uniquer`) makes identity keys effective: every
  ``i32`` parsed from text is the same object, so the second operation of
  a given shape verifies its types with dictionary hits.

Memoization is deliberately conservative:

* only **successes** are cached — failures raise descriptive errors whose
  construction dominates anyway, and error paths stay exact;
* only **variable-free** constraints are cached — a constraint mentioning
  a §4.6 constraint variable reads or writes the per-run
  :class:`~repro.irdl.constraints.ConstraintContext`, so its outcome is
  not a function of the value alone;
* entries pin both key objects alive, so an ``id`` is never reused while
  its entry exists, and the LRU bound keeps the pinning finite.

Cache effectiveness is observable via the ``irdl.verifier.memo_hits`` /
``irdl.verifier.memo_misses`` counters (mirrored into ``repro.obs``
whenever metrics are enabled).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Sequence

from repro.builtin.attributes import ArrayAttr, IntegerAttr
from repro.ir.exceptions import VerifyError
from repro.irdl.ast import Variadicity
from repro.irdl.constraints import Constraint, ConstraintContext
from repro.obs.instrument import OBS

if TYPE_CHECKING:
    from repro.ir.operation import Operation
    from repro.ir.value import SSAValue
    from repro.irdl.defs import ArgDef, OpDef, RegionDef


class ConstraintMemo:
    """A bounded LRU of *successful* variable-free constraint checks.

    Keys are ``(id(constraint), id(value))``; each entry stores the pair
    itself so both identities stay valid for the entry's lifetime.  A hit
    therefore proves the exact same constraint object accepted the exact
    same value object before — and since both are immutable, it still
    does.
    """

    __slots__ = ("maxsize", "enabled", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[int, int], tuple[Constraint, Any]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def hit(self, constraint: Constraint, value: Any) -> bool:
        """True when this exact (constraint, value) pair passed before."""
        if not self.enabled:
            return False
        key = (id(constraint), id(value))
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry[0] is constraint
            and entry[1] is value
        ):
            self._entries.move_to_end(key)
            self.hits += 1
            if OBS.metrics.enabled:
                OBS.metrics.counter("irdl.verifier.memo_hits").inc()
            return True
        self.misses += 1
        if OBS.metrics.enabled:
            OBS.metrics.counter("irdl.verifier.memo_misses").inc()
        return False

    def record(self, constraint: Constraint, value: Any) -> None:
        """Remember that ``constraint`` accepted ``value``."""
        if not self.enabled:
            return
        self._entries[(id(constraint), id(value))] = (constraint, value)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "live": len(self)}


#: The process-wide memo shared by every compiled plan.  Sharing (rather
#: than one memo per plan) lets common constraints — ``!i32`` appears in
#: hundreds of corpus definitions — warm up once.
CONSTRAINT_MEMO = ConstraintMemo()


def _is_variable_free(constraint: Constraint) -> bool:
    return not constraint.variables()


def _checked_verify(
    constraint: Constraint,
    value: Any,
    cctx: ConstraintContext,
    memoizable: bool,
    memo: ConstraintMemo,
) -> None:
    """One constraint check, consulting the memo when that is sound."""
    if memoizable and memo.hit(constraint, value):
        return
    constraint.verify(value, cctx)
    if memoizable:
        memo.record(constraint, value)


class SegmentPlan:
    """The §4.6 variadic-segment analysis, performed once per def list."""

    __slots__ = (
        "defs",
        "kind",
        "n_defs",
        "variadic_count",
        "n_fixed",
        "only_variadic_optional",
        "sizes_attr_name",
    )

    def __init__(self, defs: Sequence["ArgDef"], kind: str):
        self.defs = tuple(defs)
        self.kind = kind
        self.n_defs = len(self.defs)
        variadics = [d for d in self.defs if d.is_variadic]
        self.variadic_count = len(variadics)
        self.n_fixed = self.n_defs - self.variadic_count
        self.only_variadic_optional = (
            variadics[0].variadicity is Variadicity.OPTIONAL
            if len(variadics) == 1
            else False
        )
        self.sizes_attr_name = f"{kind}_segment_sizes"

    def match(
        self, values: Sequence["SSAValue"], op: "Operation"
    ) -> list[list["SSAValue"]]:
        """Assign values to definitions; raise ``VerifyError`` on mismatch."""
        kind = self.kind
        n_values = len(values)

        if self.variadic_count == 0:
            if n_values != self.n_defs:
                raise VerifyError(
                    f"{op.name} expects {self.n_defs} {kind}s, got {n_values}"
                )
            return [[v] for v in values]

        if self.variadic_count == 1:
            n_variadic = n_values - self.n_fixed
            if n_variadic < 0:
                raise VerifyError(
                    f"{op.name} expects at least {self.n_fixed} {kind}s, "
                    f"got {n_values}"
                )
            if self.only_variadic_optional and n_variadic > 1:
                only = next(d for d in self.defs if d.is_variadic)
                raise VerifyError(
                    f"{op.name}: optional {kind} {only.name!r} matches at "
                    f"most one value, got {n_variadic}"
                )
            segments: list[list[SSAValue]] = []
            cursor = 0
            for arg_def in self.defs:
                size = n_variadic if arg_def.is_variadic else 1
                segments.append(list(values[cursor : cursor + size]))
                cursor += size
            return segments

        # Several variadic definitions: §4.6 requires an explicit
        # attribute giving the size of each segment.
        sizes = self._read_sizes(op)
        self._validate_sizes(sizes, n_values, op)
        segments = []
        cursor = 0
        for size in sizes:
            segments.append(list(values[cursor : cursor + size]))
            cursor += size
        return segments

    def _read_sizes(self, op: "Operation") -> list[int]:
        sizes_attr = op.attributes.get(self.sizes_attr_name)
        if not isinstance(sizes_attr, ArrayAttr):
            raise VerifyError(
                f"{op.name} has {self.variadic_count} variadic {self.kind} "
                f"definitions and requires an {self.sizes_attr_name} array "
                f"attribute"
            )
        sizes: list[int] = []
        for element in sizes_attr.elements:
            if not isinstance(element, IntegerAttr):
                raise VerifyError(
                    f"{op.name}: {self.sizes_attr_name} must contain "
                    f"integer attributes"
                )
            sizes.append(element.value)
        return sizes

    def _validate_sizes(
        self, sizes: list[int], n_values: int, op: "Operation"
    ) -> None:
        """Check the whole sizes list before any slicing happens.

        Validating up front (rather than while consuming segments) means
        the error always names the *first* offending entry, regardless of
        how later entries would have sliced.
        """
        if len(sizes) != self.n_defs:
            raise VerifyError(
                f"{op.name}: {self.sizes_attr_name} has {len(sizes)} "
                f"entries for {self.n_defs} {self.kind} definitions"
            )
        for arg_def, size in zip(self.defs, sizes):
            if arg_def.variadicity is Variadicity.SINGLE and size != 1:
                raise VerifyError(
                    f"{op.name}: {self.kind} {arg_def.name!r} is not "
                    f"variadic but its segment size is {size}"
                )
            if arg_def.variadicity is Variadicity.OPTIONAL and size > 1:
                raise VerifyError(
                    f"{op.name}: optional {self.kind} {arg_def.name!r} has "
                    f"segment size {size}"
                )
            if size < 0:
                raise VerifyError(
                    f"{op.name}: negative segment size {size}"
                )
        if sum(sizes) != n_values:
            raise VerifyError(
                f"{op.name}: {self.sizes_attr_name} sums to {sum(sizes)} "
                f"but there are {n_values} {self.kind}s"
            )


class _ValueChecks:
    """A segment plan plus per-definition constraint/memo metadata."""

    __slots__ = ("plan", "checks")

    def __init__(self, defs: Sequence["ArgDef"], kind: str):
        self.plan = SegmentPlan(defs, kind)
        self.checks = tuple(
            (d, d.constraint, _is_variable_free(d.constraint)) for d in defs
        )

    def run(
        self,
        values: Sequence["SSAValue"],
        op: "Operation",
        cctx: ConstraintContext,
        memo: ConstraintMemo,
    ) -> None:
        kind = self.plan.kind
        segments = self.plan.match(values, op)
        for (arg_def, constraint, memoizable), segment in zip(
            self.checks, segments
        ):
            for value in segment:
                try:
                    _checked_verify(
                        constraint, value.type, cctx, memoizable, memo
                    )
                except VerifyError as err:
                    raise VerifyError(
                        f"{op.name}: {kind} {arg_def.name!r}: {err}", obj=op
                    ) from err
        if OBS.metrics.enabled:
            OBS.metrics.counter("irdl.verifier.constraint_checks").inc(
                sum(len(segment) for segment in segments)
            )


class _RegionPlan:
    """Compiled checks for one ``Region`` directive."""

    __slots__ = ("region_def", "arg_checks", "must_not_be_empty")

    def __init__(self, region_def: "RegionDef"):
        self.region_def = region_def
        self.arg_checks = _ValueChecks(
            region_def.arguments,
            f"region {region_def.name!r} argument",
        )
        self.must_not_be_empty = bool(
            region_def.arguments or region_def.terminator
        )


class VerificationPlan:
    """Everything derivable from an ``OpDef`` before seeing any operation."""

    __slots__ = (
        "op_def",
        "operand_checks",
        "result_checks",
        "attr_checks",
        "region_plans",
        "expected_successors",
        "predicates",
    )

    def __init__(self, op_def: "OpDef"):
        from repro.irdl.irdl_py import compile_op_predicate

        self.op_def = op_def
        self.operand_checks = _ValueChecks(op_def.operands, "operand")
        self.result_checks = _ValueChecks(op_def.results, "result")
        self.attr_checks = tuple(
            (d, d.constraint, _is_variable_free(d.constraint))
            for d in op_def.attributes
        )
        self.region_plans = tuple(_RegionPlan(r) for r in op_def.regions)
        self.expected_successors = (
            len(op_def.successors) if op_def.successors is not None else 0
        )
        self.predicates = tuple(
            (code, compile_op_predicate(code)) for code in op_def.py_constraints
        )

    # ------------------------------------------------------------------

    def run(
        self, op: "Operation", memo: ConstraintMemo | None = None
    ) -> None:
        """Run every compiled check against one operation."""
        from repro.irdl.irdl_py import run_op_predicate

        if memo is None:
            memo = CONSTRAINT_MEMO
        cctx = ConstraintContext()
        self.operand_checks.run(op.operands, op, cctx, memo)
        self.result_checks.run(op.results, op, cctx, memo)
        self._run_attr_checks(op, cctx, memo)
        self._run_region_checks(op, cctx, memo)
        if len(op.successors) != self.expected_successors:
            raise VerifyError(
                f"{op.name} expects {self.expected_successors} successors, "
                f"got {len(op.successors)}",
                obj=op,
            )
        for code, predicate in self.predicates:
            run_op_predicate(predicate, code, op, self.op_def)

    def _run_attr_checks(
        self, op: "Operation", cctx: ConstraintContext, memo: ConstraintMemo
    ) -> None:
        if self.attr_checks and OBS.metrics.enabled:
            OBS.metrics.counter("irdl.verifier.constraint_checks").inc(
                len(self.attr_checks)
            )
        for attr_def, constraint, memoizable in self.attr_checks:
            attr = op.attributes.get(attr_def.name)
            if attr is None:
                raise VerifyError(
                    f"{op.name} expects an attribute named "
                    f"{attr_def.name!r}",
                    obj=op,
                )
            try:
                _checked_verify(constraint, attr, cctx, memoizable, memo)
            except VerifyError as err:
                raise VerifyError(
                    f"{op.name}: attribute {attr_def.name!r}: {err}", obj=op
                ) from err

    def _run_region_checks(
        self, op: "Operation", cctx: ConstraintContext, memo: ConstraintMemo
    ) -> None:
        run_region_checks(self.region_plans, op, cctx, memo)


def run_region_checks(
    region_plans: Sequence[_RegionPlan],
    op: "Operation",
    cctx: ConstraintContext,
    memo: ConstraintMemo,
) -> None:
    """Region count + shape checks shared by the interpretive plan and the
    generated verifiers (:mod:`repro.irdl.codegen`), so both paths raise
    byte-identical diagnostics."""
    if len(op.regions) != len(region_plans):
        raise VerifyError(
            f"{op.name} expects {len(region_plans)} regions, got "
            f"{len(op.regions)}",
            obj=op,
        )
    for plan, region in zip(region_plans, op.regions):
        region_def = plan.region_def
        entry = region.entry_block
        if entry is None:
            if plan.must_not_be_empty:
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must not "
                    f"be empty",
                    obj=op,
                )
            continue
        plan.arg_checks.run(entry.args, op, cctx, memo)
        if region_def.terminator is not None:
            if len(region.blocks) != 1:
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must "
                    f"contain a single basic block (it declares a "
                    f"terminator)",
                    obj=op,
                )
            last = entry.last_op
            if last is None or last.name != region_def.terminator:
                found = last.name if last is not None else "nothing"
                raise VerifyError(
                    f"{op.name}: region {region_def.name!r} must end "
                    f"with {region_def.terminator}, found {found}",
                    obj=op,
                )
