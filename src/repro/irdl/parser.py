"""Parser for the IRDL definition language (§4, Listings 3–11).

The surface syntax is the one used throughout the paper::

    Dialect cmath {
      Alias !FloatType = !AnyOf<!f32, !f64>
      Type complex {
        Parameters (elementType: !FloatType)
        Summary "A complex number"
      }
      Operation mul {
        ConstraintVar (!T: !complex<FloatType>)
        Operands (lhs: !T, rhs: !T)
        Results (res: !T)
        Format "$lhs, $rhs : $T.elementType"
      }
    }

Both the paper's ``Cpp*`` directive spellings (``CppConstraint``,
``CppClassName``, …) and this reproduction's ``Py*`` spellings are
accepted; the embedded code is Python either way (IRDL-Py, see DESIGN.md).
"""

from __future__ import annotations

from repro.irdl import ast
from repro.textir.lexer import Lexer, Token, TokenKind
from repro.utils.diagnostics import DiagnosticError
from repro.utils.source import SourceFile

#: Directive spellings accepted for embedded-code fields.  The key is the
#: canonical name used in the AST.
_CODE_DIRECTIVES = {
    "PyConstraint": ("PyConstraint", "CppConstraint"),
    "PyClassName": ("PyClassName", "CppClassName"),
    "PyParser": ("PyParser", "CppParser"),
    "PyPrinter": ("PyPrinter", "CppPrinter"),
}

_CODE_SPELLINGS = {
    spelling: canonical
    for canonical, spellings in _CODE_DIRECTIVES.items()
    for spelling in spellings
}


class IRDLParser:
    """Recursive-descent parser producing :class:`~repro.irdl.ast` nodes."""

    def __init__(self, source: SourceFile | str, name: str = "<irdl>"):
        if isinstance(source, str):
            source = SourceFile(source, name)
        self.source = source
        self._lexer = Lexer(source)
        self._lookahead: list[Token] = []

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        while len(self._lookahead) <= offset:
            self._lookahead.append(self._lexer.next_token())
        return self._lookahead[offset]

    def next(self) -> Token:
        return self._lookahead.pop(0) if self._lookahead else self._lexer.next_token()

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind is kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise self.error(f"expected {what}, found {token.text!r}", token)
        return self.next()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.BARE_IDENT or token.text != keyword:
            raise self.error(f"expected {keyword!r}, found {token.text!r}", token)
        return self.next()

    def error(self, message: str, token: Token | None = None) -> DiagnosticError:
        span = (token or self.peek()).span
        return DiagnosticError.at(message, span)

    def at_end(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse_file(self) -> list[ast.DialectDecl]:
        dialects = []
        while not self.at_end():
            dialects.append(self.parse_dialect())
        return dialects

    def parse_dialect(self) -> ast.DialectDecl:
        start = self.expect_keyword("Dialect")
        name = self.expect(TokenKind.BARE_IDENT, "dialect name")
        decl = ast.DialectDecl(name.text, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            token = self.peek()
            if token.kind is not TokenKind.BARE_IDENT:
                raise self.error(
                    f"expected a declaration, found {token.text!r}", token
                )
            if token.text == "Type":
                decl.types.append(self._parse_type_decl(is_type=True))
            elif token.text == "Attribute":
                decl.attributes.append(self._parse_type_decl(is_type=False))
            elif token.text == "Operation":
                decl.operations.append(self._parse_operation_decl())
            elif token.text == "Alias":
                decl.aliases.append(self._parse_alias_decl())
            elif token.text == "Enum":
                decl.enums.append(self._parse_enum_decl())
            elif token.text == "Constraint":
                decl.constraints.append(self._parse_constraint_decl())
            elif token.text == "TypeOrAttrParam":
                decl.param_wrappers.append(self._parse_param_wrapper_decl())
            elif token.text == "Suppress":
                self.next()
                decl.suppressions.append(
                    self.expect(TokenKind.STRING, "lint code string").value
                )
            else:
                raise self.error(
                    f"unknown declaration kind {token.text!r}", token
                )
        return decl

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_type_decl(self, is_type: bool) -> ast.TypeDecl:
        start = self.next()  # 'Type' | 'Attribute'
        name = self.expect(TokenKind.BARE_IDENT, "definition name")
        decl = ast.TypeDecl(name.text, is_type=is_type, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            field = self.expect(TokenKind.BARE_IDENT, "a field directive")
            if field.text == "Parameters":
                if decl.parameters:
                    raise self.error("duplicate Parameters directive", field)
                decl.parameters = self._parse_param_decl_list()
            elif field.text == "Summary":
                decl.summary = self.expect(TokenKind.STRING, "summary string").value
            elif field.text == "Format":
                decl.format = self.expect(TokenKind.STRING, "format string").value
            elif field.text == "Suppress":
                decl.suppressions.append(
                    self.expect(TokenKind.STRING, "lint code string").value
                )
            elif _CODE_SPELLINGS.get(field.text) == "PyConstraint":
                decl.py_constraints.append(
                    self.expect(TokenKind.STRING, "constraint code string").value
                )
            else:
                raise self.error(
                    f"unknown directive {field.text!r} in "
                    f"{'Type' if is_type else 'Attribute'} definition",
                    field,
                )
        return decl

    def _parse_operation_decl(self) -> ast.OperationDecl:
        start = self.expect_keyword("Operation")
        name = self.expect(TokenKind.BARE_IDENT, "operation name")
        decl = ast.OperationDecl(name.text, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            field = self.expect(TokenKind.BARE_IDENT, "a field directive")
            if field.text in ("ConstraintVar", "ConstraintVars"):
                decl.constraint_vars.extend(self._parse_constraint_var_list())
            elif field.text == "Operands":
                decl.operands = self._parse_arg_decl_list(allow_variadic=True)
            elif field.text == "Results":
                decl.results = self._parse_arg_decl_list(allow_variadic=True)
            elif field.text == "Attributes":
                decl.attributes = self._parse_arg_decl_list(allow_variadic=False)
            elif field.text == "Region":
                decl.regions.append(self._parse_region_decl(field))
            elif field.text == "Successors":
                decl.successors = self._parse_successor_list()
            elif field.text == "Format":
                decl.format = self.expect(TokenKind.STRING, "format string").value
            elif field.text == "Summary":
                decl.summary = self.expect(TokenKind.STRING, "summary string").value
            elif field.text == "Suppress":
                decl.suppressions.append(
                    self.expect(TokenKind.STRING, "lint code string").value
                )
            elif _CODE_SPELLINGS.get(field.text) == "PyConstraint":
                decl.py_constraints.append(
                    self.expect(TokenKind.STRING, "constraint code string").value
                )
            else:
                raise self.error(
                    f"unknown directive {field.text!r} in Operation definition",
                    field,
                )
        return decl

    def _parse_alias_decl(self) -> ast.AliasDecl:
        start = self.expect_keyword("Alias")
        sigil, name_token = self._parse_sigiled_name("alias name")
        type_params: list[str] = []
        if self.accept(TokenKind.LESS):
            type_params.append(self.expect(TokenKind.BARE_IDENT, "parameter name").text)
            while self.accept(TokenKind.COMMA):
                type_params.append(
                    self.expect(TokenKind.BARE_IDENT, "parameter name").text
                )
            self.expect(TokenKind.GREATER, "'>'")
        self.expect(TokenKind.EQUAL, "'='")
        body = self.parse_constraint_expr()
        return ast.AliasDecl(
            name_token.value if sigil else name_token.text,
            sigil,
            type_params,
            body,
            span=start.span,
        )

    def _parse_enum_decl(self) -> ast.EnumDecl:
        start = self.expect_keyword("Enum")
        name = self.expect(TokenKind.BARE_IDENT, "enum name")
        self.expect(TokenKind.LBRACE, "'{'")
        constructors: list[str] = []
        if self.peek().kind is not TokenKind.RBRACE:
            constructors.append(
                self.expect(TokenKind.BARE_IDENT, "enum constructor").text
            )
            while self.accept(TokenKind.COMMA):
                constructors.append(
                    self.expect(TokenKind.BARE_IDENT, "enum constructor").text
                )
        self.expect(TokenKind.RBRACE, "'}'")
        return ast.EnumDecl(name.text, constructors, span=start.span)

    def _parse_constraint_decl(self) -> ast.ConstraintDecl:
        start = self.expect_keyword("Constraint")
        name = self.expect(TokenKind.BARE_IDENT, "constraint name")
        self.expect(TokenKind.COLON, "':'")
        base = self.parse_constraint_expr()
        decl = ast.ConstraintDecl(name.text, base, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            field = self.expect(TokenKind.BARE_IDENT, "a field directive")
            if field.text == "Summary":
                decl.summary = self.expect(TokenKind.STRING, "summary string").value
            elif _CODE_SPELLINGS.get(field.text) == "PyConstraint":
                decl.py_constraint = self.expect(
                    TokenKind.STRING, "constraint code string"
                ).value
            else:
                raise self.error(
                    f"unknown directive {field.text!r} in Constraint definition",
                    field,
                )
        return decl

    def _parse_param_wrapper_decl(self) -> ast.ParamWrapperDecl:
        start = self.expect_keyword("TypeOrAttrParam")
        name = self.expect(TokenKind.BARE_IDENT, "parameter wrapper name")
        decl = ast.ParamWrapperDecl(name.text, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            field = self.expect(TokenKind.BARE_IDENT, "a field directive")
            canonical = _CODE_SPELLINGS.get(field.text)
            if field.text == "Summary":
                decl.summary = self.expect(TokenKind.STRING, "summary string").value
            elif canonical == "PyClassName":
                decl.py_class_name = self.expect(TokenKind.STRING, "class name").value
            elif canonical == "PyParser":
                decl.py_parser = self.expect(TokenKind.STRING, "parser code").value
            elif canonical == "PyPrinter":
                decl.py_printer = self.expect(TokenKind.STRING, "printer code").value
            else:
                raise self.error(
                    f"unknown directive {field.text!r} in TypeOrAttrParam",
                    field,
                )
        return decl

    # ------------------------------------------------------------------
    # Declaration components
    # ------------------------------------------------------------------

    def _parse_sigiled_name(self, what: str) -> tuple[str | None, Token]:
        token = self.peek()
        if token.kind is TokenKind.BANG_IDENT:
            return "!", self.next()
        if token.kind is TokenKind.HASH_IDENT:
            return "#", self.next()
        return None, self.expect(TokenKind.BARE_IDENT, what)

    def _parse_param_decl_list(self) -> list[ast.ParamDecl]:
        self.expect(TokenKind.LPAREN, "'('")
        params: list[ast.ParamDecl] = []
        if self.peek().kind is not TokenKind.RPAREN:
            params.append(self._parse_param_decl())
            while self.accept(TokenKind.COMMA):
                params.append(self._parse_param_decl())
        self.expect(TokenKind.RPAREN, "')'")
        return params

    def _parse_param_decl(self) -> ast.ParamDecl:
        name = self.expect(TokenKind.BARE_IDENT, "parameter name")
        self.expect(TokenKind.COLON, "':'")
        constraint = self.parse_constraint_expr()
        return ast.ParamDecl(name.text, constraint, span=name.span)

    def _parse_arg_decl_list(self, allow_variadic: bool) -> list[ast.ArgDecl]:
        self.expect(TokenKind.LPAREN, "'('")
        args: list[ast.ArgDecl] = []
        if self.peek().kind is not TokenKind.RPAREN:
            args.append(self._parse_arg_decl(allow_variadic))
            while self.accept(TokenKind.COMMA):
                args.append(self._parse_arg_decl(allow_variadic))
        self.expect(TokenKind.RPAREN, "')'")
        return args

    def _parse_arg_decl(self, allow_variadic: bool) -> ast.ArgDecl:
        name = self.expect(TokenKind.BARE_IDENT, "argument name")
        self.expect(TokenKind.COLON, "':'")
        variadicity = ast.Variadicity.SINGLE
        token = self.peek()
        if (
            token.kind is TokenKind.BARE_IDENT
            and token.text in ("Variadic", "Optional")
            and self.peek(1).kind is TokenKind.LESS
        ):
            if not allow_variadic:
                raise self.error(
                    f"{token.text} is only allowed on operands, results, "
                    "and region arguments",
                    token,
                )
            variadicity = (
                ast.Variadicity.VARIADIC
                if token.text == "Variadic"
                else ast.Variadicity.OPTIONAL
            )
            self.next()
            self.expect(TokenKind.LESS, "'<'")
            constraint = self.parse_constraint_expr()
            self.expect(TokenKind.GREATER, "'>'")
        else:
            constraint = self.parse_constraint_expr()
        return ast.ArgDecl(name.text, constraint, variadicity, span=name.span)

    def _parse_constraint_var_list(self) -> list[ast.ConstraintVarDecl]:
        self.expect(TokenKind.LPAREN, "'('")
        decls: list[ast.ConstraintVarDecl] = []
        if self.peek().kind is not TokenKind.RPAREN:
            decls.append(self._parse_constraint_var())
            while self.accept(TokenKind.COMMA):
                decls.append(self._parse_constraint_var())
        self.expect(TokenKind.RPAREN, "')'")
        return decls

    def _parse_constraint_var(self) -> ast.ConstraintVarDecl:
        sigil, name_token = self._parse_sigiled_name("constraint variable")
        name = name_token.value if sigil else name_token.text
        self.expect(TokenKind.COLON, "':'")
        constraint = self.parse_constraint_expr()
        return ast.ConstraintVarDecl(name, sigil, constraint, span=name_token.span)

    def _parse_region_decl(self, start: Token) -> ast.RegionDecl:
        name = self.expect(TokenKind.BARE_IDENT, "region name")
        decl = ast.RegionDecl(name.text, span=start.span)
        self.expect(TokenKind.LBRACE, "'{'")
        while not self.accept(TokenKind.RBRACE):
            field = self.expect(TokenKind.BARE_IDENT, "a field directive")
            if field.text == "Arguments":
                decl.arguments = self._parse_arg_decl_list(allow_variadic=True)
            elif field.text == "Terminator":
                terminator = self.expect(TokenKind.BARE_IDENT, "operation name")
                parts = [terminator.text]
                while self.accept(TokenKind.DOT):
                    parts.append(self.expect(TokenKind.BARE_IDENT, "name").text)
                decl.terminator = ".".join(parts)
            else:
                raise self.error(
                    f"unknown directive {field.text!r} in Region definition",
                    field,
                )
        return decl

    def _parse_successor_list(self) -> list[str]:
        self.expect(TokenKind.LPAREN, "'('")
        names: list[str] = []
        if self.peek().kind is not TokenKind.RPAREN:
            names.append(self.expect(TokenKind.BARE_IDENT, "successor name").text)
            while self.accept(TokenKind.COMMA):
                names.append(
                    self.expect(TokenKind.BARE_IDENT, "successor name").text
                )
        self.expect(TokenKind.RPAREN, "')'")
        return names

    # ------------------------------------------------------------------
    # Constraint expressions
    # ------------------------------------------------------------------

    def parse_constraint_expr(self) -> ast.ConstraintExpr:
        token = self.peek()
        if token.kind is TokenKind.MINUS or token.kind is TokenKind.INTEGER:
            return self._parse_int_literal()
        if token.kind is TokenKind.STRING:
            self.next()
            return ast.StringLiteralExpr(token.value, span=token.span)
        if token.kind is TokenKind.LBRACKET:
            return self._parse_list_expr()
        if token.kind in (
            TokenKind.BANG_IDENT,
            TokenKind.HASH_IDENT,
            TokenKind.BARE_IDENT,
        ):
            return self._parse_ref_expr()
        raise self.error(
            f"expected a constraint, found {token.text!r}", token
        )

    def _parse_int_literal(self) -> ast.IntLiteralExpr:
        negative = bool(self.accept(TokenKind.MINUS))
        token = self.expect(TokenKind.INTEGER, "integer literal")
        value = -int(token.text) if negative else int(token.text)
        type_name: str | None = None
        if self.peek().kind is TokenKind.COLON:
            self.next()
            type_name = self.expect(TokenKind.BARE_IDENT, "integer type").text
        return ast.IntLiteralExpr(value, type_name, span=token.span)

    def _parse_list_expr(self) -> ast.ListExpr:
        start = self.expect(TokenKind.LBRACKET, "'['")
        elements: list[ast.ConstraintExpr] = []
        if self.peek().kind is not TokenKind.RBRACKET:
            elements.append(self.parse_constraint_expr())
            while self.accept(TokenKind.COMMA):
                elements.append(self.parse_constraint_expr())
        self.expect(TokenKind.RBRACKET, "']'")
        return ast.ListExpr(elements, span=start.span)

    def _parse_ref_expr(self) -> ast.RefExpr:
        token = self.next()
        if token.kind is TokenKind.BANG_IDENT:
            sigil: str | None = "!"
            name = token.value
        elif token.kind is TokenKind.HASH_IDENT:
            sigil = "#"
            name = token.value
        else:
            sigil = None
            name = token.text
            # Dotted bare references: enum constructors and namespaced names.
            while self.peek().kind is TokenKind.DOT:
                self.next()
                name += "." + self.expect(TokenKind.BARE_IDENT, "name").text
        params: list[ast.ConstraintExpr] | None = None
        if self.peek().kind is TokenKind.LESS:
            self.next()
            params = []
            if self.peek().kind is not TokenKind.GREATER:
                params.append(self.parse_constraint_expr())
                while self.accept(TokenKind.COMMA):
                    params.append(self.parse_constraint_expr())
            self.expect(TokenKind.GREATER, "'>'")
        return ast.RefExpr(sigil, name, params, span=token.span)


def parse_irdl(text: str, name: str = "<irdl>") -> list[ast.DialectDecl]:
    """Parse IRDL source text into dialect declarations."""
    return IRDLParser(text, name).parse_file()
