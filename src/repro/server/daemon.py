"""The asyncio dialect service: ``repro-serve``.

One long-running process serves many clients over the length-prefixed
JSON protocol of :mod:`repro.server.protocol`.  Architecture:

* **Tenancy.** Every request names a ``tenant``; each tenant owns a
  private :class:`~repro.server.session.Session` (and hence a private
  :class:`~repro.ir.context.Context`), created lazily on first use.
  Dialect registrations are visible only within the tenant — isolation
  is by context object identity, which the ``stats`` request exposes
  (``tenants.<name>.context_id``) so tests can assert zero leakage.
* **Caching.** ``register_dialect`` routes through the shared
  :class:`~repro.server.cache.DialectCache`: the first sight of a
  payload compiles it (parse/decode → resolve → codegen), every later
  registration — from any tenant — installs the same compiled binding
  objects.  ``replace=true`` hot-reloads a dialect in one tenant
  without disturbing the others.
* **Concurrency.** The event loop only frames and routes; compilation
  and pipeline work runs on a bounded thread pool, serialized
  *per tenant* by a tenant lock (the shared caches underneath are
  themselves thread-safe — see ``tests/obs/test_thread_safety.py``).
  Each request is bounded by a wall-clock timeout; an expired request
  gets a structured ``timeout`` reply while its worker thread is
  abandoned to finish in the background.
* **Robustness.** Oversized/malformed frames get structured error
  replies; unexpected handler exceptions reply ``internal`` and dump
  the :class:`~repro.obs.ring.EventRing` flight recorder to stderr;
  :meth:`DialectServer.shutdown` stops accepting work, drains in-flight
  requests, then closes connections.
* **Observability.** The server owns an always-on
  :class:`~repro.obs.metrics.MetricsRegistry` recording ``server.*``
  counters and latency histograms; the ``stats`` request renders a
  snapshot (req/s, queue depth, per-type p50/p99, cache hit rate).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.ir.exceptions import UnregisteredConstructError, VerifyError
from repro.obs.instrument import OBS
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.server.cache import DEFAULT_CAPACITY, DialectCache
from repro.server.protocol import ErrorCode, FrameError
from repro.server.session import Session
from repro.utils.diagnostics import DiagnosticError

#: Default TCP port; 0 binds an ephemeral port (printed at startup).
DEFAULT_PORT = 7333

#: Default per-request wall-clock budget, in seconds.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default worker-thread pool width.
DEFAULT_WORKERS = 8

#: The request types the daemon understands.
REQUEST_TYPES = (
    "register_dialect",
    "parse",
    "verify",
    "rewrite",
    "lint",
    "roundtrip",
    "stats",
    "ping",
    "shutdown",
)


class Tenant:
    """One tenant's isolated state: a session plus its request lock."""

    def __init__(self, name: str):
        self.name = name
        self.session = Session()
        self.lock = threading.Lock()
        self.created = time.time()
        self.requests = 0
        #: Raw register_dialect payloads (dialect names → bytes), kept
        #: so sharded-verify worker processes can rebuild this tenant's
        #: context from scratch.  Hot reloads evict superseded entries.
        self.dialect_payloads: list[tuple[tuple[str, ...], bytes]] = []

    def record_dialect_payload(
        self, names: tuple[str, ...], data: bytes, replace: bool
    ) -> None:
        if replace:
            stale = set(names)
            self.dialect_payloads = [
                entry for entry in self.dialect_payloads
                if not stale.intersection(entry[0])
            ]
        self.dialect_payloads.append((names, bytes(data)))

    def info(self) -> dict[str, Any]:
        return {
            "context_id": id(self.session.ctx),
            "dialects": sorted(self.session.ctx.dialects),
            "requests": self.requests,
        }


class DialectServer:
    """The long-running multi-tenant IRDL dialect service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_size: int = DEFAULT_CAPACITY,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        workers: int = DEFAULT_WORKERS,
        allow_sleep: bool = False,
    ):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.request_timeout = request_timeout
        #: Load-generator/test knob: lets ``ping`` carry a ``sleep_ms``
        #: payload so drains and timeouts are exercised deterministically.
        self.allow_sleep = allow_sleep
        #: Server-owned registry: always on, independent of the global
        #: OBS switchboard, snapshotted by the ``stats`` request.
        self.metrics = MetricsRegistry(enabled=True)
        self.scope = self.metrics.scope("server")
        self.cache = DialectCache(cache_size,
                                  metrics=self.scope.scope("dialect_cache"))
        self.tenants: dict[str, Tenant] = {}
        self._tenants_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._started = 0.0
        self._handlers: dict[str, Callable[[Tenant, dict], dict]] = {
            "register_dialect": self._do_register_dialect,
            "parse": self._do_parse,
            "verify": self._do_verify,
            "rewrite": self._do_rewrite,
            "lint": self._do_lint,
            "roundtrip": self._do_roundtrip,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the resolved port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()
        self._drained.set()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close.

        New requests arriving on live connections during the drain are
        refused with a ``shutting-down`` error; requests already being
        processed run to completion (bounded by ``drain_timeout``) and
        their responses are delivered before the connections close.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            try:
                await asyncio.wait_for(self._drained.wait(), drain_timeout)
            except asyncio.TimeoutError:
                pass
        for writer in list(self._connections):
            writer.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        self.scope.counter("connections_total").inc()
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader,
                                                        self.max_frame)
                except FrameError as err:
                    # The stream may be desynchronized: reply, then drop
                    # the connection.
                    await protocol.write_frame(
                        writer,
                        protocol.error_response(None, err.code, str(err)),
                        self.max_frame,
                    )
                    break
                if request is None:
                    break
                # In-flight accounting brackets the response write too,
                # so a graceful drain never closes a connection between
                # computing a reply and delivering it.
                self._inflight += 1
                self._drained.clear()
                try:
                    response = await self._dispatch(request)
                    try:
                        await protocol.write_frame(writer, response,
                                                   self.max_frame)
                    except FrameError as err:
                        # The *response* outgrew the bound (giant module).
                        await protocol.write_frame(
                            writer,
                            protocol.error_response(
                                request.get("id"), err.code, str(err)
                            ),
                            self.max_frame,
                        )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._drained.set()
                if request.get("type") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        request_id = request.get("id")
        request_type = request.get("type")
        if not isinstance(request_type, str):
            return protocol.error_response(
                request_id, ErrorCode.BAD_REQUEST,
                "request has no 'type' field",
            )
        if request_type not in REQUEST_TYPES:
            return protocol.error_response(
                request_id, ErrorCode.UNKNOWN_TYPE,
                f"unknown request type {request_type!r} "
                f"(known: {', '.join(REQUEST_TYPES)})",
            )
        if self._draining and request_type != "stats":
            return protocol.error_response(
                request_id, ErrorCode.SHUTTING_DOWN,
                "server is draining; no new requests accepted",
            )

        self.scope.counter("requests_total").inc()
        self.scope.counter(f"requests.{request_type}").inc()
        self.scope.histogram("queue_depth").observe(self._inflight)
        OBS.ring.push("server.request", type=request_type,
                      tenant=request.get("tenant", "default"),
                      id=request_id)
        start = time.perf_counter()
        try:
            response = await self._run_request(request_id, request_type,
                                               request)
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1e3
            self.scope.histogram(f"latency_ms.{request_type}").observe(
                elapsed_ms
            )
        if not response.get("ok", False):
            self.scope.counter("errors_total").inc()
            code = response.get("error", {}).get("code", "unknown")
            self.scope.counter(f"errors.{code}").inc()
        return response

    async def _run_request(self, request_id: Any, request_type: str,
                           request: dict) -> dict:
        # Cheap control-plane requests run on the loop directly.
        if request_type == "stats":
            return protocol.ok_response(request_id, self.stats())
        if request_type == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return protocol.ok_response(request_id, {"draining": True})
        if request_type == "ping":
            sleep_ms = request.get("sleep_ms", 0)
            if sleep_ms and self.allow_sleep:
                return await self._in_worker(
                    request_id, self._tenant(request),
                    lambda tenant, req: self._do_sleep(req), request,
                )
            return protocol.ok_response(request_id, {"pong": True})

        tenant = self._tenant(request)
        handler = self._handlers[request_type]
        return await self._in_worker(request_id, tenant, handler, request)

    def _tenant(self, request: dict) -> Tenant:
        name = request.get("tenant", "default")
        if not isinstance(name, str) or not name:
            name = "default"
        with self._tenants_lock:
            tenant = self.tenants.get(name)
            if tenant is None:
                tenant = self.tenants[name] = Tenant(name)
                self.scope.counter("tenants_created").inc()
        return tenant

    async def _in_worker(self, request_id: Any, tenant: Tenant,
                         handler: Callable[[Tenant, dict], dict],
                         request: dict) -> dict:
        """Run a handler on the pool under the tenant lock, with timeout."""

        def run() -> dict:
            with tenant.lock:
                tenant.requests += 1
                return handler(tenant, request)

        loop = asyncio.get_running_loop()
        try:
            result = await asyncio.wait_for(
                loop.run_in_executor(self._pool, run),
                self.request_timeout,
            )
            return protocol.ok_response(request_id, result)
        except asyncio.TimeoutError:
            self.scope.counter("timeouts").inc()
            return protocol.error_response(
                request_id, ErrorCode.TIMEOUT,
                f"request exceeded the {self.request_timeout:g}s budget "
                "(its worker thread was abandoned)",
            )
        except FrameError as err:
            return protocol.error_response(request_id, err.code, str(err))
        except VerifyError as err:
            return protocol.error_response(
                request_id, ErrorCode.VERIFY_ERROR, str(err),
                detail=type(err).__name__,
            )
        except UnregisteredConstructError as err:
            return protocol.error_response(
                request_id, ErrorCode.DIALECT_ERROR, str(err),
                detail=type(err).__name__,
            )
        except DiagnosticError as err:
            # Rendered diagnostics (carets and all) travel in the reply.
            return protocol.error_response(
                request_id, ErrorCode.PARSE_ERROR, str(err),
                detail=type(err).__name__,
            )
        except ValueError as err:
            return protocol.error_response(
                request_id, ErrorCode.PIPELINE_ERROR, str(err),
                detail=type(err).__name__,
            )
        except Exception as err:  # noqa: BLE001 — the server must survive
            self._dump_flight_recorder(err)
            return protocol.error_response(
                request_id, ErrorCode.INTERNAL,
                f"{type(err).__name__}: {err}",
            )

    @staticmethod
    def _dump_flight_recorder(err: Exception) -> None:
        """Dump the event ring to stderr on an unexpected handler crash."""
        events = OBS.ring.snapshot()
        print(f"repro-serve: internal error: {type(err).__name__}: {err}",
              file=sys.stderr)
        if events:
            print(f"--- flight recorder ({len(events)} event(s), "
                  "oldest first) ---", file=sys.stderr)
            for event in events:
                print(json.dumps(event, sort_keys=True, default=str),
                      file=sys.stderr)

    # ------------------------------------------------------------------
    # Handlers (worker threads, tenant lock held)
    # ------------------------------------------------------------------

    def _do_sleep(self, request: dict) -> dict:
        time.sleep(float(request.get("sleep_ms", 0)) / 1e3)
        return {"pong": True, "slept_ms": request.get("sleep_ms", 0)}

    def _do_register_dialect(self, tenant: Tenant, request: dict) -> dict:
        data = protocol.extract_payload(request, "irdl", "irdl_b64")
        if data is None:
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                "register_dialect needs 'irdl' (text) or 'irdl_b64' "
                "(bytecode)",
            )
        replace = bool(request.get("replace", False))
        compiled, hit = self.cache.get_or_compile(
            data, name=request.get("name", "<irdl>")
        )
        session = tenant.session
        clashing = [n for n in compiled.names if n in session.ctx.dialects]
        if clashing and not replace:
            raise UnregisteredConstructError(
                f"dialect {clashing[0]!r} is already registered for "
                f"tenant {tenant.name!r} (pass replace=true to hot-reload)"
            )
        for binding, dialect_def in zip(compiled.bindings, compiled.defs):
            session.install_binding(binding, dialect_def, replace=replace)
        tenant.record_dialect_payload(
            tuple(compiled.names), data, replace=bool(clashing)
        )
        return {
            "dialects": list(compiled.names),
            "cache_hit": hit,
            "key": compiled.key,
            "source_kind": compiled.source_kind,
            "compile_ms": round(compiled.compile_seconds * 1e3, 3),
            "replaced": bool(clashing),
        }

    def _load(self, tenant: Tenant, request: dict):
        data = protocol.extract_payload(request, "ir", "ir_b64")
        if data is None:
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                "request needs 'ir' (text) or 'ir_b64' (bytecode)",
            )
        return tenant.session.load_module(
            data, request.get("name", "<request>")
        )

    def _do_parse(self, tenant: Tenant, request: dict) -> dict:
        module = self._load(tenant, request)
        if request.get("verify", False):
            tenant.session.verify(module)
        return self._emit(tenant, module, request)

    def _do_verify(self, tenant: Tenant, request: dict) -> dict:
        workers = request.get("workers")
        if workers is not None:
            if (not isinstance(workers, int) or isinstance(workers, bool)
                    or workers < 0):
                raise FrameError(
                    ErrorCode.BAD_REQUEST,
                    "'workers' must be a non-negative integer",
                )
            return self._verify_sharded(tenant, request, workers)
        module = self._load(tenant, request)
        tenant.session.verify(module)
        return {"verified": True, "ops": sum(1 for _ in module.walk())}

    def _verify_sharded(
        self, tenant: Tenant, request: dict, workers: int
    ) -> dict:
        """The ``verify`` request with ``workers``: sharded over the
        bytecode op-index in separate processes, diagnostics collected
        instead of failing on the first violation.  Textual or
        index-less payloads degrade to the serial path with the reason
        reported in the response."""
        data = protocol.extract_payload(request, "ir", "ir_b64")
        if data is None:
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                "request needs 'ir' (text) or 'ir_b64' (bytecode)",
            )
        from repro.bytecode import BytecodeError, is_bytecode

        fallback = None
        report = None
        if not is_bytecode(data):
            fallback = "payload is textual IR, not indexed bytecode"
        else:
            import os
            import tempfile

            from repro.parallel import shard_verify_file

            fd, path = tempfile.mkstemp(
                prefix="repro-verify-", suffix=".irbc"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                try:
                    report = shard_verify_file(
                        path,
                        workers=workers,
                        dialect_payloads=[
                            payload
                            for _, payload in tenant.dialect_payloads
                        ],
                    )
                except BytecodeError as err:
                    if "op-index" not in str(err):
                        raise
                    fallback = "artifact has no op-index section"
            finally:
                os.unlink(path)
        if report is None:
            module = self._load(tenant, request)
            tenant.session.verify(module)
            return {
                "verified": True,
                "ops": sum(1 for _ in module.walk()),
                "workers": 1,
                "fallback": fallback,
            }
        return {
            "verified": not report.diagnostics,
            "ops": report.ops,
            "workers": report.workers,
            "shards": report.shards,
            "diagnostics": [
                {
                    "index": diag.entry_index,
                    "op": diag.op_name,
                    "message": diag.message,
                }
                for diag in report.diagnostics
            ],
        }

    def _do_rewrite(self, tenant: Tenant, request: dict) -> dict:
        module = self._load(tenant, request)
        session = tenant.session
        if request.get("verify", True):
            session.verify(module)
        patterns = []
        pattern_text = request.get("patterns")
        if pattern_text is not None:
            if not isinstance(pattern_text, str):
                raise FrameError(
                    ErrorCode.BAD_REQUEST, "'patterns' must be a string"
                )
            patterns = session.parse_pattern_text(
                pattern_text, request.get("patterns_name", "<patterns>")
            )
        passes = request.get("pipeline")
        if passes is not None and not (
            isinstance(passes, list)
            and all(isinstance(p, str) for p in passes)
        ):
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                "'pipeline' must be a list of pass names",
            )
        manager = session.run_patterns(
            module, patterns, passes,
            verify_each=bool(request.get("verify_each", False)),
            validate_rewrites=bool(request.get("validate", False)),
        )
        if request.get("verify", True):
            session.verify(module)
        result = self._emit(tenant, module, request)
        result["changed"] = any(changed for _, changed in manager.history)
        result["history"] = [[name, changed]
                             for name, changed in manager.history]
        result["statistics"] = {
            p.name: dict(p.statistics()) for p in manager.passes
            if p.statistics()
        }
        return result

    def _do_lint(self, tenant: Tenant, request: dict) -> dict:
        from repro.tools.lint import exit_code

        sources = request.get("sources")
        if isinstance(request.get("irdl"), str):
            sources = [{"irdl": request["irdl"],
                        "name": request.get("name", "<irdl>")}]
        if not isinstance(sources, list) or not sources:
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                "lint needs 'irdl' (text) or 'sources' "
                "([{irdl, name}, ...])",
            )
        pairs = []
        for index, source in enumerate(sources):
            if not (isinstance(source, dict)
                    and isinstance(source.get("irdl"), str)):
                raise FrameError(
                    ErrorCode.BAD_REQUEST,
                    f"sources[{index}] must be {{'irdl': text, ...}}",
                )
            pairs.append(
                (source["irdl"], source.get("name", f"<irdl#{index}>"))
            )
        pattern_pairs = []
        if isinstance(request.get("patterns"), str):
            pattern_pairs.append(
                (request["patterns"],
                 request.get("patterns_name", "<patterns>"))
            )
        try:
            findings = tenant.session.lint_sources(pairs, pattern_pairs)
        except DiagnosticError as err:
            # A lint source that fails to parse or register is a
            # lint-error (the CLI's exit-2 case), not a parse-error on
            # the tenant's own IR.
            raise FrameError(ErrorCode.LINT_ERROR, str(err)) from err
        return {
            "findings": [f.to_dict() for f in findings],
            "exit_code": exit_code(findings),
        }

    def _do_roundtrip(self, tenant: Tenant, request: dict) -> dict:
        module = self._load(tenant, request)
        result = tenant.session.roundtrip(module)
        return {
            "text": result["text"],
            "bytecode_b64": protocol.to_b64(result["bytecode"]),
            "stable": result["stable"],
        }

    def _emit(self, tenant: Tenant, module, request: dict) -> dict:
        emit = request.get("emit", "text")
        if emit not in ("text", "bytecode"):
            raise FrameError(
                ErrorCode.BAD_REQUEST,
                f"unknown emit format {emit!r} (text or bytecode)",
            )
        rendered = tenant.session.emit(
            module, emit,
            print_locations=bool(request.get("print_locations", False)),
        )
        ops = sum(1 for _ in module.walk())
        if emit == "bytecode":
            return {"ir_b64": protocol.to_b64(rendered), "ops": ops}
        return {"ir": rendered, "ops": ops}

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``stats`` request body: a full ``server.*`` snapshot."""
        uptime = max(time.time() - self._started, 1e-9)
        snapshot = self.metrics.snapshot()
        requests_total = snapshot["counters"].get("server.requests_total", 0)
        latency = {
            name[len("server.latency_ms."):]: {
                "count": body["count"],
                "mean_ms": round(body["mean"], 3),
                "p50_ms": round(body["p50"], 3),
                "p99_ms": round(body["p99"], 3),
            }
            for name, body in snapshot["histograms"].items()
            if name.startswith("server.latency_ms.")
        }
        queue = snapshot["histograms"].get("server.queue_depth", {})
        with self._tenants_lock:
            tenants = {name: t.info() for name, t in self.tenants.items()}
        return {
            "uptime_s": round(uptime, 3),
            "draining": self._draining,
            "inflight": self._inflight,
            "requests_total": requests_total,
            "req_per_s": round(requests_total / uptime, 3),
            "counters": snapshot["counters"],
            "latency": latency,
            "queue_depth": {
                "p50": queue.get("p50", 0),
                "p99": queue.get("p99", 0),
                "max": queue.get("max", 0),
            },
            "dialect_cache": self.cache.stats(),
            "tenants": tenants,
        }


# ----------------------------------------------------------------------
# Console entry point
# ----------------------------------------------------------------------


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running multi-tenant IRDL dialect service "
        "(length-prefixed JSON protocol; see docs/server.md).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port; 0 picks a free one "
                        f"(default: {DEFAULT_PORT})")
    parser.add_argument("--cache-size", type=int, default=DEFAULT_CAPACITY,
                        help="compiled-dialect LRU capacity "
                        f"(default: {DEFAULT_CAPACITY})")
    parser.add_argument("--max-frame", type=int,
                        default=protocol.DEFAULT_MAX_FRAME,
                        help="per-frame byte bound (default: 8 MiB)")
    parser.add_argument("--request-timeout", type=float,
                        default=DEFAULT_REQUEST_TIMEOUT,
                        help="per-request wall-clock budget in seconds "
                        f"(default: {DEFAULT_REQUEST_TIMEOUT:g})")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="worker thread pool width "
                        f"(default: {DEFAULT_WORKERS})")
    parser.add_argument("--allow-sleep", action="store_true",
                        help="allow ping requests to carry sleep_ms "
                        "(load-generator / test knob)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    server = DialectServer(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        max_frame=args.max_frame,
        request_timeout=args.request_timeout,
        workers=args.workers,
        allow_sleep=args.allow_sleep,
    )
    await server.start()
    # The smoke scripts parse this line; keep it first and flushed.
    print(f"repro-serve: listening on {server.host}:{server.port}",
          flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover — non-POSIX loops
            pass
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(stop.wait())
    await asyncio.wait({serve_task, stop_task},
                       return_when=asyncio.FIRST_COMPLETED)
    await server.shutdown()
    serve_task.cancel()
    stop_task.cancel()
    print("repro-serve: drained and shut down", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover — signal-handler race
        return 0


if __name__ == "__main__":
    sys.exit(main())
