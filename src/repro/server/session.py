"""The shared pipeline object behind ``irdl-opt`` and the dialect server.

A :class:`Session` bundles what used to live inline in
``repro.tools.irdl_opt``: a :class:`~repro.ir.context.Context`, the
dialects registered into it, and the parse → verify → rewrite → emit
pipeline over that context.  The CLI builds one Session per invocation;
the server keeps one per tenant for the life of the connection pool —
both run exactly this code path, so a behavior observed through one
surface reproduces through the other.

Every input entry point autodetects textual versus bytecode payloads by
the IRBC magic number, mirroring the CLI's file handling, so callers
hand over raw bytes and never branch on the format themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.builtin import default_context
from repro.ir.context import Context
from repro.ir.exceptions import UnregisteredConstructError
from repro.textir.parser import parse_module
from repro.textir.printer import print_op

if TYPE_CHECKING:
    from repro.ir.dialect import DialectBinding
    from repro.ir.operation import Operation
    from repro.irdl.defs import DialectDef
    from repro.rewriting import PassManager
    from repro.rewriting.pattern import RewritePattern


class Session:
    """One context plus the standard pipeline over it.

    The context defaults to a fresh :func:`default_context` (builtin,
    func, arith, math, cf pre-registered).  Each server tenant owns a
    private Session, so per-tenant dialect registrations never leak
    across tenants — the context *object identity* is the isolation
    boundary the server's tests assert on.
    """

    def __init__(self, ctx: Context | None = None):
        self.ctx = ctx if ctx is not None else default_context()
        #: Resolved definitions of every dialect registered through this
        #: session, in registration order (introspection and --generate).
        self.dialects: list["DialectDef"] = []

    # ------------------------------------------------------------------
    # Dialect registration
    # ------------------------------------------------------------------

    def register_dialect_data(self, data: bytes, name: str = "<irdl>") -> list["DialectDef"]:
        """Register the dialects of a raw IRDL payload (text or bytecode).

        The IRBC magic number decides the format, exactly like the
        CLI's ``--irdl`` file handling.
        """
        from repro.bytecode import decode_dialects, is_bytecode
        from repro.irdl.instantiate import register_dialect
        from repro.irdl.parser import parse_irdl

        if is_bytecode(data):
            decls = decode_dialects(data, name=name)
        else:
            decls = parse_irdl(data.decode("utf-8"), name)
        defs = [register_dialect(self.ctx, decl) for decl in decls]
        self.dialects.extend(defs)
        return defs

    def register_dialect_path(self, path: str) -> list["DialectDef"]:
        """Register the dialects of one ``.irdl`` file (text or bytecode)."""
        with open(path, "rb") as handle:
            return self.register_dialect_data(handle.read(), path)

    def install_binding(self, binding: "DialectBinding",
                        dialect_def: "DialectDef",
                        replace: bool = False) -> None:
        """Adopt an already-compiled dialect binding (cache hit path).

        The binding was compiled once — resolve, codegen, format
        programs — in the :class:`~repro.server.cache.DialectCache`'s
        scratch context and is shared by every session that adopts it.
        With ``replace=True`` an existing same-named dialect is swapped
        out (hot reload); other sessions holding the old binding are
        untouched because each session owns its context's dialect map.
        """
        if not replace and binding.name in self.ctx.dialects:
            raise UnregisteredConstructError(
                f"dialect {binding.name!r} is already registered"
            )
        if replace and binding.name in self.ctx.dialects:
            old = self.ctx.dialects[binding.name]
            self.dialects = [
                d for d in self.dialects
                if getattr(old, "irdl_def", None) is not d
            ]
        self.ctx.dialects[binding.name] = binding
        self.dialects.append(dialect_def)

    # ------------------------------------------------------------------
    # IR input / output
    # ------------------------------------------------------------------

    def load_module(self, data: bytes | str, name: str = "<input>") -> "Operation":
        """Parse or decode an IR payload into a module operation."""
        from repro.bytecode import decode_module, is_bytecode

        if isinstance(data, str):
            return parse_module(self.ctx, data, name)
        if is_bytecode(data):
            return decode_module(self.ctx, data, name=name)
        return parse_module(self.ctx, data.decode("utf-8"), name)

    def emit(self, module: "Operation", emit: str = "text",
             print_locations: bool = False) -> str | bytes:
        """Render a module as text or IRBC bytecode."""
        if emit == "bytecode":
            from repro.bytecode import encode_module

            return encode_module(module)
        return print_op(module, print_locations=print_locations)

    def roundtrip(self, module: "Operation") -> dict:
        """Module → bytecode → module → text, checked against direct text.

        Returns the printed text, the bytecode, and whether the
        round-tripped module prints identically (``stable``) — the
        quick serialization-fidelity probe the server's ``roundtrip``
        request exposes.
        """
        from repro.bytecode import decode_module, encode_module

        text = print_op(module)
        data = encode_module(module)
        reloaded = decode_module(self.ctx, data, name="<roundtrip>")
        reloaded_text = print_op(reloaded)
        return {
            "text": text,
            "bytecode": data,
            "stable": reloaded_text == text,
        }

    # ------------------------------------------------------------------
    # Verification / rewriting / linting
    # ------------------------------------------------------------------

    def verify(self, module: "Operation") -> None:
        """Run structural + dialect verification (raises VerifyError)."""
        module.verify()

    def parse_pattern_text(self, text: str,
                           name: str = "<patterns>") -> list["RewritePattern"]:
        from repro.rewriting import parse_patterns

        return list(parse_patterns(self.ctx, text, name))

    def build_pipeline(self, patterns: Sequence["RewritePattern"] = (),
                       passes: Sequence[str] | None = None,
                       verify_each: bool = False,
                       validate_rewrites: bool = False) -> "PassManager":
        """Compose a named pass pipeline (the server's ``rewrite``).

        ``passes`` names a sequence from ``canonicalize`` (the supplied
        pattern set applied greedily), ``dce``, ``cse``, and ``verify``;
        the default, matching the CLI's ``--patterns`` flow, is
        ``["canonicalize", "dce"]``.  ``validate_rewrites`` makes the
        greedy driver re-check dominance, def-use integrity, and the
        verifier around every pattern application (the CLI's
        ``--validate-rewrites``).
        """
        from repro.rewriting import (
            Canonicalizer,
            CommonSubexpressionElimination,
            DeadCodeElimination,
            PassManager,
            VerifyPass,
        )

        if passes is None:
            passes = ["canonicalize", "dce"]
        manager = PassManager(verify_each=verify_each)
        for name in passes:
            if name == "canonicalize":
                manager.add(Canonicalizer(self.ctx, list(patterns),
                                          validate_rewrites=validate_rewrites))
            elif name == "dce":
                manager.add(DeadCodeElimination())
            elif name == "cse":
                manager.add(CommonSubexpressionElimination())
            elif name == "verify":
                manager.add(VerifyPass())
            else:
                raise ValueError(f"unknown pass {name!r} (known: "
                                 "canonicalize, dce, cse, verify)")
        return manager

    def run_patterns(self, module: "Operation",
                     patterns: Sequence["RewritePattern"],
                     passes: Sequence[str] | None = None,
                     verify_each: bool = False,
                     validate_rewrites: bool = False) -> "PassManager":
        """Run the pattern pipeline; returns the manager for its records."""
        manager = self.build_pipeline(patterns, passes, verify_each,
                                      validate_rewrites)
        manager.run(module)
        return manager

    def lint_sources(self, sources: Sequence[tuple[str, str]],
                     pattern_sources: Sequence[tuple[str, str]] = ()):
        """Lint IRDL (and pattern) sources given as ``(text, name)`` pairs.

        Runs in a scratch context cloned from this session's, so lint
        registration never mutates live session state.  A source that
        redefines an already-registered dialect (the corpus's
        ``builtin.irdl``, or a tenant re-linting a dialect it serves)
        evicts the old binding from the scratch clone first — the live
        context is untouched.
        """
        from repro.analysis.sat import SatEngine
        from repro.irdl.instantiate import register_dialect
        from repro.irdl.parser import parse_irdl
        from repro.tools.lint import lint_dialect, lint_patterns

        engine = SatEngine()
        findings = []
        parsed = [parse_irdl(text, name) for text, name in sources]
        ctx = self.ctx.clone()
        for decls in parsed:
            for decl in decls:
                ctx.dialects.pop(decl.name, None)
        for decls in parsed:
            for decl in decls:
                dialect = register_dialect(ctx, decl)
                findings.extend(lint_dialect(dialect, decl, engine=engine))
        for text, name in pattern_sources:
            findings.extend(lint_patterns(ctx, text, name, engine=engine))
        return findings

    def __repr__(self) -> str:
        return (f"<Session ctx=0x{id(self.ctx):x} "
                f"dialects={sorted(self.ctx.dialects)}>")
