"""An LRU of hot compiled dialects, keyed by payload hash.

Compiling a dialect — parse/decode, resolve, definition-time codegen of
verifiers and format programs — is the expensive part of
``register_dialect``.  The server sees the same dialect payload from
many tenants, so the :class:`DialectCache` compiles each distinct
payload once (in a scratch context) and hands every later registration
the *same* :class:`~repro.ir.dialect.DialectBinding` objects.  Bindings
are immutable after compilation and intern their attributes through the
process-wide uniquer, so sharing them across tenant contexts is safe;
installing a shared binding into a tenant is a dictionary insert.

The key is the SHA-256 of the raw payload bytes — textual IRDL and
IRBC bytecode of the same dialect hash differently, which is the
conservative choice: a hit guarantees the bytes were seen before.
Entries evict in least-recently-used order once ``capacity`` is
exceeded.  All public methods are thread-safe; the server's worker
threads share one cache.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.ir.dialect import DialectBinding
    from repro.irdl.defs import DialectDef
    from repro.obs.metrics import MetricsScope

#: Default number of distinct compiled payloads kept hot.
DEFAULT_CAPACITY = 64


@dataclass(frozen=True)
class CompiledDialects:
    """One compiled payload: the shared bindings plus their definitions."""

    key: str
    names: tuple[str, ...]
    bindings: tuple["DialectBinding", ...]
    defs: tuple["DialectDef", ...]
    source_kind: str  # "text" | "bytecode"
    compile_seconds: float
    #: Monotonic generation stamp (hot-reload debugging aid).
    generation: int = field(default=0, compare=False)


def payload_key(data: bytes) -> str:
    """The cache key of a raw dialect payload."""
    return hashlib.sha256(data).hexdigest()


class DialectCache:
    """Compile-once storage for dialect payloads, with LRU eviction."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics: "MetricsScope | None" = None):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CompiledDialects]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Cache keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def get_or_compile(self, data: bytes,
                       name: str = "<irdl>") -> tuple[CompiledDialects, bool]:
        """The compiled form of ``data``, compiling on first sight.

        Returns ``(compiled, hit)``.  Compilation runs outside the
        cache lock — two threads racing on the same new payload may
        both compile, and the first to publish wins (the loser's result
        is discarded in favour of the canonical entry, preserving the
        "same hash → identical bindings" guarantee).
        """
        key = payload_key(data)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hits")
                return entry, True
        compiled = self._compile(key, data, name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # Lost the compile race: adopt the published entry.
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hits")
                return entry, True
            self.misses += 1
            self._count("misses")
            self._entries[key] = compiled
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
        return compiled, False

    def invalidate(self, data: bytes) -> bool:
        """Drop the entry for ``data``; True when one was cached."""
        key = payload_key(data)
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _compile(self, key: str, data: bytes, name: str) -> CompiledDialects:
        """Compile a payload in a scratch context.

        The scratch context is a fresh default context, so payloads may
        reference builtin/native types freely; dialects that reference
        *each other* must travel in one payload (they register into the
        same scratch context in declaration order).
        """
        from repro.builtin import default_context
        from repro.bytecode import decode_dialects, is_bytecode
        from repro.irdl.instantiate import register_dialect
        from repro.irdl.parser import parse_irdl

        start = time.perf_counter()
        if is_bytecode(data):
            source_kind = "bytecode"
            decls = decode_dialects(data, name=name)
        else:
            source_kind = "text"
            decls = parse_irdl(data.decode("utf-8"), name)
        scratch = default_context()
        defs = [register_dialect(scratch, decl) for decl in decls]
        bindings = tuple(scratch.dialects[decl.name] for decl in decls)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._generation += 1
            generation = self._generation
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.histogram("compile_seconds").observe(elapsed)
        return CompiledDialects(
            key=key,
            names=tuple(decl.name for decl in decls),
            bindings=bindings,
            defs=tuple(defs),
            source_kind=source_kind,
            compile_seconds=elapsed,
            generation=generation,
        )

    def _count(self, which: str) -> None:
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.counter(which).inc()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            live = len(self._entries)
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "live": live,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (f"<DialectCache {len(self)}/{self.capacity} live, "
                f"{self.hits} hits / {self.misses} misses>")
