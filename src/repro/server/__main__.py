"""``python -m repro.server`` — the daemon's module entry point."""

import sys

from repro.server.daemon import main

if __name__ == "__main__":
    sys.exit(main())
