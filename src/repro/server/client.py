"""The asyncio client for the dialect service, plus a load generator.

:class:`ServerClient` is the canonical consumer of the protocol: one
connection, sequential request/response pairs, convenience wrappers for
every request type.  :class:`LoadGenerator` multiplexes many clients
over many tenants and aggregates client-side latency — it backs both
the CI ``server-smoke`` job and ``BENCH_server.json``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Sequence

from repro.server import protocol


class ServerError(Exception):
    """A structured error reply (``ok: false``) raised client-side."""

    def __init__(self, code: str, message: str, detail: Any = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.detail = detail


class ServerClient:
    """One connection to a :class:`~repro.server.daemon.DialectServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 tenant: str = "default",
                 max_frame: int = protocol.DEFAULT_MAX_FRAME):
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self.max_frame = max_frame
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int, tenant: str = "default",
                      max_frame: int = protocol.DEFAULT_MAX_FRAME,
                      ) -> "ServerClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tenant=tenant, max_frame=max_frame)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServerClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Core request path
    # ------------------------------------------------------------------

    async def request(self, request_type: str, **params: Any) -> dict:
        """Send one request and return the raw response envelope."""
        self._next_id += 1
        message = {"id": self._next_id, "type": request_type,
                   "tenant": params.pop("tenant", self.tenant)}
        message.update(params)
        await protocol.write_frame(self._writer, message, self.max_frame)
        response = await protocol.read_frame(self._reader, self.max_frame)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    async def call(self, request_type: str, **params: Any) -> dict:
        """Send one request; return ``result`` or raise ServerError."""
        response = await self.request(request_type, **params)
        if response.get("ok"):
            return response["result"]
        error = response.get("error", {})
        raise ServerError(
            error.get("code", "unknown"),
            error.get("message", "unexplained server error"),
            error.get("detail"),
        )

    # ------------------------------------------------------------------
    # Convenience wrappers (one per request type)
    # ------------------------------------------------------------------

    async def register_dialect(self, payload: str | bytes,
                               name: str = "<irdl>",
                               replace: bool = False) -> dict:
        if isinstance(payload, bytes):
            return await self.call(
                "register_dialect", irdl_b64=protocol.to_b64(payload),
                name=name, replace=replace,
            )
        return await self.call("register_dialect", irdl=payload,
                               name=name, replace=replace)

    async def parse(self, ir: str | bytes, **params: Any) -> dict:
        return await self.call("parse", **self._ir(ir), **params)

    async def verify(self, ir: str | bytes, **params: Any) -> dict:
        return await self.call("verify", **self._ir(ir), **params)

    async def rewrite(self, ir: str | bytes,
                      patterns: str | None = None,
                      pipeline: Sequence[str] | None = None,
                      **params: Any) -> dict:
        if patterns is not None:
            params["patterns"] = patterns
        if pipeline is not None:
            params["pipeline"] = list(pipeline)
        return await self.call("rewrite", **self._ir(ir), **params)

    async def lint(self, irdl: str, **params: Any) -> dict:
        return await self.call("lint", irdl=irdl, **params)

    async def roundtrip(self, ir: str | bytes, **params: Any) -> dict:
        return await self.call("roundtrip", **self._ir(ir), **params)

    async def stats(self) -> dict:
        return await self.call("stats")

    async def ping(self, **params: Any) -> dict:
        return await self.call("ping", **params)

    async def shutdown(self) -> dict:
        return await self.call("shutdown")

    @staticmethod
    def _ir(ir: str | bytes) -> dict:
        if isinstance(ir, bytes):
            return {"ir_b64": protocol.to_b64(ir)}
        return {"ir": ir}


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------


@dataclass
class LoadReport:
    """Aggregated client-side results of one load run."""

    requests: int = 0
    errors: int = 0
    wall_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def req_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 6),
            "req_per_s": round(self.req_per_s, 3),
            "p50_ms": round(self.percentile(0.50), 3),
            "p99_ms": round(self.percentile(0.99), 3),
        }


class LoadGenerator:
    """Drives concurrent clients over distinct tenants and aggregates.

    ``make_requests`` receives ``(client, worker_index)`` and issues the
    workload for that worker; the generator times every ``call`` made
    through the provided timed wrapper.
    """

    def __init__(self, host: str, port: int, tenants: int = 4,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME):
        self.host = host
        self.port = port
        self.tenants = tenants
        self.max_frame = max_frame

    async def run(
        self,
        worker: Callable[["TimedClient", int], Awaitable[None]],
    ) -> LoadReport:
        report = LoadReport()
        start = time.perf_counter()

        async def one(index: int) -> None:
            client = await ServerClient.connect(
                self.host, self.port, tenant=f"tenant-{index}",
                max_frame=self.max_frame,
            )
            try:
                await worker(TimedClient(client, report), index)
            finally:
                await client.close()

        await asyncio.gather(*(one(i) for i in range(self.tenants)))
        report.wall_s = time.perf_counter() - start
        return report


class TimedClient:
    """A :class:`ServerClient` proxy that records per-call latency."""

    def __init__(self, client: ServerClient, report: LoadReport):
        self.client = client
        self.report = report

    async def call(self, request_type: str, **params: Any) -> dict:
        start = time.perf_counter()
        try:
            result = await self.client.call(request_type, **params)
        except ServerError:
            self.report.errors += 1
            self.report.requests += 1
            self.report.latencies_ms.append(
                (time.perf_counter() - start) * 1e3
            )
            raise
        self.report.requests += 1
        self.report.latencies_ms.append((time.perf_counter() - start) * 1e3)
        return result

    def __getattr__(self, name: str) -> Any:
        # Convenience wrappers route through the timed call path by
        # rebuilding their parameters on the underlying client.
        method = getattr(self.client, name)

        async def timed(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            try:
                result = await method(*args, **kwargs)
            except ServerError:
                self.report.errors += 1
                raise
            finally:
                self.report.requests += 1
                self.report.latencies_ms.append(
                    (time.perf_counter() - start) * 1e3
                )
            return result

        return timed
