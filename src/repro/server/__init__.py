"""``repro.server``: a long-running multi-tenant IRDL dialect service.

Everything the one-shot ``irdl-opt`` CLI can do — register IRDL
dialects, parse/verify/rewrite/lint/round-trip IR — becomes a request
against a persistent daemon, so a fleet of clients shares one warm
process instead of each invocation re-paying startup and dialect
compilation.  Four cooperating pieces:

* :mod:`repro.server.session` — the :class:`Session` pipeline object
  (context + registered dialects + pipeline runner) shared by the CLI
  and the server, so both run the same code path;
* :mod:`repro.server.cache` — a :class:`DialectCache` LRU of hot
  compiled dialects keyed by payload hash: re-registering an
  already-seen dialect is a cache hit that skips resolve/codegen;
* :mod:`repro.server.protocol` — the length-prefixed JSON frame codec
  with bounded frame sizes and the structured error contract;
* :mod:`repro.server.daemon` — the asyncio :class:`DialectServer` with
  per-tenant :class:`~repro.ir.context.Context` isolation, per-request
  timeouts, graceful shutdown draining, ``server.*`` observability
  instruments, and the ``repro-serve`` console entry point;
* :mod:`repro.server.client` — the async :class:`ServerClient` and the
  :class:`LoadGenerator` that backs ``BENCH_server.json``.

See ``docs/server.md`` for the protocol specification.
"""

from repro.server.cache import CompiledDialects, DialectCache
from repro.server.client import LoadGenerator, LoadReport, ServerClient, ServerError
from repro.server.daemon import DialectServer, Tenant, main
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ErrorCode,
    FrameError,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)
from repro.server.session import Session

__all__ = [
    "CompiledDialects",
    "DialectCache",
    "DialectServer",
    "Tenant",
    "main",
    "DEFAULT_MAX_FRAME",
    "ErrorCode",
    "FrameError",
    "error_response",
    "ok_response",
    "read_frame",
    "write_frame",
    "ServerClient",
    "ServerError",
    "LoadGenerator",
    "LoadReport",
    "Session",
]
