"""The wire protocol: length-prefixed JSON frames over a byte stream.

Every message — request or response — is one *frame*::

    +----------------+----------------------------+
    | length (u32 BE)| UTF-8 JSON object (length) |
    +----------------+----------------------------+

Frames are bounded (:data:`DEFAULT_MAX_FRAME`, overridable per server);
an oversized or malformed frame raises :class:`FrameError`, which the
server answers with a structured error reply before dropping the
connection — a misbehaving client can never make the daemon allocate
unbounded memory or desynchronize the stream for other connections.

Requests are JSON objects ``{"id": ..., "type": ..., "tenant": ...,
**params}``; binary payloads (IRBC bytecode) travel base64-encoded
under ``*_b64`` keys.  Responses are ``{"id": ..., "ok": true,
"result": {...}}`` or ``{"id": ..., "ok": false, "error": {"code":
..., "message": ..., "detail": ...}}`` — the full schema catalog lives
in ``docs/server.md``.
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct
from typing import Any

#: Default upper bound on one frame's JSON payload, in bytes (8 MiB).
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ErrorCode:
    """The structured error vocabulary of the service."""

    BAD_REQUEST = "bad-request"
    FRAME_TOO_LARGE = "frame-too-large"
    UNKNOWN_TYPE = "unknown-type"
    DIALECT_ERROR = "dialect-error"
    PARSE_ERROR = "parse-error"
    VERIFY_ERROR = "verify-error"
    LINT_ERROR = "lint-error"
    PIPELINE_ERROR = "pipeline-error"
    TIMEOUT = "timeout"
    SHUTTING_DOWN = "shutting-down"
    INTERNAL = "internal"


class FrameError(Exception):
    """A frame violated the protocol (size bound, length header, JSON)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode_frame(obj: Any, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message to its wire form."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameError(
            ErrorCode.FRAME_TOO_LARGE,
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte bound",
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Parse a frame payload, normalizing failures to FrameError."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise FrameError(
            ErrorCode.BAD_REQUEST, f"frame is not valid JSON: {err}"
        ) from err
    if not isinstance(message, dict):
        raise FrameError(
            ErrorCode.BAD_REQUEST,
            f"frame must be a JSON object, got {type(message).__name__}",
        )
    return message


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = DEFAULT_MAX_FRAME) -> Any | None:
    """Read one message; ``None`` on clean EOF before a length header."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_frame:
        raise FrameError(
            ErrorCode.FRAME_TOO_LARGE,
            f"frame of {length} bytes exceeds the {max_frame}-byte bound",
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise FrameError(
            ErrorCode.BAD_REQUEST,
            f"stream ended {length - len(err.partial)} bytes short of "
            "the declared frame length",
        ) from err
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, obj: Any,
                      max_frame: int = DEFAULT_MAX_FRAME) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_frame(obj, max_frame))
    await writer.drain()


# ----------------------------------------------------------------------
# Message constructors
# ----------------------------------------------------------------------


def ok_response(request_id: Any, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str,
                   detail: Any = None) -> dict:
    error: dict[str, Any] = {"code": code, "message": message}
    if detail is not None:
        error["detail"] = detail
    return {"id": request_id, "ok": False, "error": error}


def to_b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def from_b64(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as err:
        raise FrameError(
            ErrorCode.BAD_REQUEST, f"invalid base64 payload: {err}"
        ) from err


def extract_payload(request: dict, text_key: str,
                    b64_key: str) -> bytes | None:
    """A request's payload as bytes: text or base64 bytecode, not both."""
    text = request.get(text_key)
    blob = request.get(b64_key)
    if text is not None and blob is not None:
        raise FrameError(
            ErrorCode.BAD_REQUEST,
            f"request carries both {text_key!r} and {b64_key!r}",
        )
    if text is not None:
        if not isinstance(text, str):
            raise FrameError(
                ErrorCode.BAD_REQUEST, f"{text_key!r} must be a string"
            )
        return text.encode("utf-8")
    if blob is not None:
        if not isinstance(blob, str):
            raise FrameError(
                ErrorCode.BAD_REQUEST, f"{b64_key!r} must be a string"
            )
        return from_b64(blob)
    return None
