"""Parser for the MLIR-like textual IR syntax.

Supports the *generic* operation form, which works for any registered or
unregistered operation::

    %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> (f32)

and *custom* assembly formats declared via IRDL's ``Format`` directive
(§4.7), dispatched through the operation's registered definition::

    %0 = cmath.norm %p : f32

The parser resolves SSA use-def chains (including forward references to
values defined later in another block), block successors, dialect types
and attributes (through the context registry, so IRDL-instantiated
dialects parse with no extra code), and nested regions.
"""

from __future__ import annotations

import re
import struct
from typing import Any, Callable

from repro.builtin import attributes as battrs
from repro.builtin import types as btypes
from repro.ir.attributes import Attribute, TypeAttribute
from repro.ir.block import Block
from repro.ir.context import Context
from repro.ir.exceptions import UnregisteredConstructError, VerifyError
from repro.ir.location import (
    UNKNOWN_LOC,
    FileLineColLoc,
    FusedLoc,
    Location,
)
from repro.ir.operation import Operation
from repro.ir.params import (
    ArrayParam,
    EnumParam,
    FloatParam,
    IntegerParam,
    LocationParam,
    OpaqueParam,
    StringParam,
    TypeIdParam,
)
from repro.ir.region import Region
from repro.ir.uniquer import intern as intern_attr
from repro.ir.value import SSAValue
from repro.obs import timing as _timing
from repro.obs.instrument import OBS, count_ops
from repro.textir.lexer import Lexer, Token, TokenKind
from repro.utils.diagnostics import DiagnosticError
from repro.utils.source import SourceFile

_INT_TYPE_RE = re.compile(r"^(i|si|ui)([0-9]+)$")
_FLOAT_TYPE_RE = re.compile(r"^f(16|32|64)$")
_PARAM_INT_RE = re.compile(r"^(u?)int(8|16|32|64)_t$")
# The continuation of a bit-exact hex float literal ``0x<bits>``.  The
# lexer splits it into INTEGER "0" followed by this BARE_IDENT (the same
# mechanism shaped types like ``tensor<4x?xf32>`` rely on).
_HEX_FLOAT_BITS_RE = re.compile(r"^x[0-9A-Fa-f]{1,16}$")


class _PlaceholderValue(SSAValue):
    """A forward-referenced SSA value, replaced once its definition parses."""

    __slots__ = ("ref_name",)

    def __init__(self, value_type: Attribute, ref_name: str):
        super().__init__(value_type)
        self.ref_name = ref_name


class IRParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, context: Context, source: SourceFile | str,
                 name: str = "<input>"):
        if isinstance(source, str):
            source = SourceFile(source, name)
        self.context = context
        self.source = source
        self._lexer = Lexer(source)
        self._lookahead: list[Token] = []
        # SSA name scopes: one per nested region, innermost last.  Uses may
        # forward-reference values defined later in the same region (CFG
        # back-edges); placeholders live in the scope they were created in.
        self._value_scopes: list[dict[str, SSAValue]] = [{}]
        self._pending_scopes: list[dict[str, list[_PlaceholderValue]]] = [{}]
        # Block scope stack, one entry per region being parsed.
        self._block_scopes: list[dict[str, Block]] = []

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        while len(self._lookahead) <= offset:
            self._lookahead.append(self._lexer.next_token())
        return self._lookahead[offset]

    def next(self) -> Token:
        return self._lookahead.pop(0) if self._lookahead else self._lexer.next_token()

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind is kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise self.error(f"expected {what}, found {token.text!r}", token)
        return self.next()

    def error(self, message: str, token: Token | None = None) -> DiagnosticError:
        span = (token or self.peek()).span
        return DiagnosticError.at(message, span)

    def at_end(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    # ------------------------------------------------------------------
    # SSA value scope
    # ------------------------------------------------------------------

    def resolve_value(self, name: str, value_type: Attribute,
                      token: Token | None = None) -> SSAValue:
        """Resolve an operand reference, creating a placeholder if needed."""
        for scope in reversed(self._value_scopes):
            existing = scope.get(name)
            if existing is not None:
                if existing.type != value_type:
                    raise self.error(
                        f"operand %{name} has type {existing.type} but is "
                        f"used with type {value_type}",
                        token,
                    )
                return existing
        placeholder = _PlaceholderValue(value_type, name)
        self._pending_scopes[-1].setdefault(name, []).append(placeholder)
        return placeholder

    def define_value(self, name: str, value: SSAValue,
                     token: Token | None = None) -> None:
        scope = self._value_scopes[-1]
        if name in scope:
            raise self.error(f"SSA value %{name} is defined twice", token)
        value.name_hint = name
        scope[name] = value
        for placeholder in self._pending_scopes[-1].pop(name, []):
            if placeholder.type != value.type:
                raise self.error(
                    f"%{name} was forward-referenced with type "
                    f"{placeholder.type} but is defined with type {value.type}",
                    token,
                )
            placeholder.replace_all_uses_with(value)

    def _push_value_scope(self) -> None:
        self._value_scopes.append({})
        self._pending_scopes.append({})

    def _pop_value_scope(self) -> None:
        self._value_scopes.pop()
        pending = self._pending_scopes.pop()
        if pending:
            names = ", ".join(f"%{n}" for n in sorted(pending))
            raise self.error(f"use of undefined SSA value(s): {names}")

    def _check_no_pending(self) -> None:
        if self._pending_scopes[-1]:
            names = ", ".join(f"%{n}" for n in sorted(self._pending_scopes[-1]))
            raise self.error(f"use of undefined SSA value(s): {names}")

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def parse_type(self) -> Attribute:
        token = self.peek()
        if token.kind is TokenKind.BANG_IDENT:
            return self._parse_dialect_type(self.next())
        if token.kind is TokenKind.LPAREN:
            return self._parse_function_type()
        if token.kind is TokenKind.BARE_IDENT:
            return self._parse_builtin_type(self.next())
        raise self.error(f"expected a type, found {token.text!r}", token)

    def try_parse_type(self) -> Attribute | None:
        token = self.peek()
        if token.kind is TokenKind.BANG_IDENT or token.kind is TokenKind.LPAREN:
            return self.parse_type()
        if token.kind is TokenKind.BARE_IDENT and self._is_builtin_type_name(token.text):
            return self.parse_type()
        return None

    @staticmethod
    def _is_builtin_type_name(name: str) -> bool:
        return bool(
            _INT_TYPE_RE.match(name)
            or _FLOAT_TYPE_RE.match(name)
            or name in ("index", "tensor", "vector", "memref", "none")
        )

    def _parse_builtin_type(self, token: Token) -> Attribute:
        name = token.text
        match = _INT_TYPE_RE.match(name)
        if match:
            prefix, width = match.groups()
            signedness = {
                "i": btypes.Signedness.SIGNLESS,
                "si": btypes.Signedness.SIGNED,
                "ui": btypes.Signedness.UNSIGNED,
            }[prefix]
            return btypes.IntegerType.get(int(width), signedness)
        match = _FLOAT_TYPE_RE.match(name)
        if match:
            return btypes.FloatType.get(int(match.group(1)))
        if name == "index":
            return btypes.index
        if name in ("tensor", "vector", "memref"):
            return self._parse_shaped_type(name, token)
        raise self.error(f"unknown builtin type {name!r}", token)

    def _parse_shaped_type(self, kind: str, token: Token) -> Attribute:
        """Parse ``tensor<4x?xf32>``-style shaped types.

        The lexer fuses dimension lists with the following identifier
        (``4x?xf32`` lexes as INTEGER "4" then BARE "x?xf32"), so dimension
        words are re-split on ``x`` here.
        """
        self.expect(TokenKind.LESS, "'<'")
        shape: list[int] = []
        element: Attribute | None = None
        while element is None:
            tok = self.peek()
            if tok.kind is TokenKind.QUESTION:
                self.next()
                shape.append(btypes.DYNAMIC)
            elif tok.kind is TokenKind.INTEGER:
                self.next()
                shape.append(int(tok.text))
            elif tok.kind is TokenKind.BARE_IDENT:
                self.next()
                element = self._scan_shape_word(tok, shape)
            elif tok.kind in (TokenKind.BANG_IDENT, TokenKind.LPAREN):
                element = self.parse_type()
            else:
                raise self.error(
                    f"expected a dimension or element type, found {tok.text!r}",
                    tok,
                )
        self.expect(TokenKind.GREATER, "'>'")
        cls = {"tensor": btypes.TensorType, "vector": btypes.VectorType,
               "memref": btypes.MemRefType}[kind]
        return cls.get(shape, element)

    def _scan_shape_word(self, token: Token, shape: list[int]) -> Attribute | None:
        """Consume a word like ``x4x?xf32``: dimensions and maybe the element.

        Returns the element type if the word contains one, else ``None``
        (the word ended on a dimension separator, e.g. before ``!`` types).
        """
        text = token.text
        if not text.startswith("x") and self._is_builtin_type_name(text):
            return self._parse_builtin_type(token)
        parts = text.split("x")
        if parts[0]:
            raise self.error(f"invalid shape element {text!r}", token)
        for index, part in enumerate(parts[1:], start=1):
            if part == "":
                continue  # consecutive separators, e.g. trailing 'x'
            if part == "?":
                shape.append(btypes.DYNAMIC)
            elif part.isdigit():
                shape.append(int(part))
            else:
                element_text = "x".join(parts[index:])
                if element_text in ("tensor", "vector", "memref"):
                    # The element is itself shaped; its '<...>' parameters
                    # are still in the main token stream.
                    return self._parse_shaped_type(element_text, token)
                if self._is_builtin_type_name(element_text):
                    sub = IRParser(self.context, element_text, "<shape-element>")
                    return sub.parse_type()
                raise self.error(
                    f"unknown element type {element_text!r}", token
                )
        return None

    def _parse_function_type(self) -> Attribute:
        self.expect(TokenKind.LPAREN, "'('")
        inputs: list[Attribute] = []
        if self.peek().kind is not TokenKind.RPAREN:
            inputs.append(self.parse_type())
            while self.accept(TokenKind.COMMA):
                inputs.append(self.parse_type())
        self.expect(TokenKind.RPAREN, "')'")
        self.expect(TokenKind.ARROW, "'->'")
        results = self._parse_type_or_type_list()
        return btypes.FunctionType.get(inputs, results)

    def _parse_type_or_type_list(self) -> list[Attribute]:
        if self.peek().kind is TokenKind.LPAREN:
            self.expect(TokenKind.LPAREN, "'('")
            results: list[Attribute] = []
            if self.peek().kind is not TokenKind.RPAREN:
                results.append(self.parse_type())
                while self.accept(TokenKind.COMMA):
                    results.append(self.parse_type())
            self.expect(TokenKind.RPAREN, "')'")
            return results
        return [self.parse_type()]

    def _parse_dialect_type(self, token: Token) -> Attribute:
        qualified = token.value
        if "." not in qualified:
            # Unqualified references default to the builtin namespace (§4.2).
            qualified = f"builtin.{qualified}"
        type_def = self.context.get_type_def(qualified)
        if type_def is None:
            raise self.error(f"unknown type '!{token.value}'", token)
        params = self._parse_dialect_params(type_def)
        try:
            return type_def.instantiate(params)
        except VerifyError as err:
            raise self.error(str(err), token) from err

    def _parse_dialect_params(self, definition) -> list[Any]:
        """The ``<...>`` parameter list, honouring custom formats (§4.7)."""
        params: list[Any] = []
        if self.accept(TokenKind.LESS):
            program = getattr(definition, "param_format", None)
            if program is not None:
                params = program.parse(self)
            elif self.peek().kind is not TokenKind.GREATER:
                params.append(self.parse_param())
                while self.accept(TokenKind.COMMA):
                    params.append(self.parse_param())
            self.expect(TokenKind.GREATER, "'>'")
        return params

    # ------------------------------------------------------------------
    # Type/attribute parameters
    # ------------------------------------------------------------------

    def parse_param(self) -> Any:
        """Parse one parameter of a parametrized type or attribute."""
        token = self.peek()
        if token.kind in (TokenKind.INTEGER, TokenKind.FLOAT, TokenKind.MINUS):
            return self._parse_numeric_param()
        if token.kind is TokenKind.STRING:
            return StringParam(self.next().value)
        if token.kind is TokenKind.LBRACKET:
            self.next()
            elements: list[Any] = []
            if self.peek().kind is not TokenKind.RBRACKET:
                elements.append(self.parse_param())
                while self.accept(TokenKind.COMMA):
                    elements.append(self.parse_param())
            self.expect(TokenKind.RBRACKET, "']'")
            return ArrayParam(tuple(elements))
        if token.kind is TokenKind.HASH_IDENT:
            return self.parse_attribute()
        if token.kind is TokenKind.BARE_IDENT:
            if token.text == "loc":
                return self._parse_location_param()
            if token.text == "typeid":
                return self._parse_typeid_param()
            if token.text == "opaque":
                return self._parse_opaque_param()
            if self.peek(1).kind is TokenKind.DOT:
                return self._parse_enum_param()
            if self._is_builtin_type_name(token.text):
                return self.parse_type()
            raise self.error(f"unknown parameter {token.text!r}", token)
        if token.kind in (TokenKind.BANG_IDENT, TokenKind.LPAREN):
            return self.parse_type()
        raise self.error(f"expected a parameter, found {token.text!r}", token)

    def _accept_hex_float(self, int_token: Token, negative: bool) -> float | None:
        """The value of a bit-exact ``0x<bits>`` float literal, if present.

        ``int_token`` is an already-consumed INTEGER token; the hex
        digits arrive as a following BARE_IDENT starting with ``x``.
        Returns ``None`` when the upcoming tokens are not a hex float.
        """
        if int_token.text != "0":
            return None
        follow = self.peek()
        if (
            follow.kind is not TokenKind.BARE_IDENT
            or not _HEX_FLOAT_BITS_RE.match(follow.text)
        ):
            return None
        if negative:
            raise self.error(
                "hex float literals carry their sign in the bit pattern; "
                "remove the leading '-'",
                follow,
            )
        self.next()
        bits = int(follow.text[1:], 16)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]

    def _parse_numeric_param(self) -> Any:
        negative = bool(self.accept(TokenKind.MINUS))
        token = self.peek()
        if token.kind is TokenKind.FLOAT:
            value = float(self.next().text)
            value = -value if negative else value
            width = 64
            if self.accept(TokenKind.COLON):
                suffix = self.expect(TokenKind.BARE_IDENT, "float width")
                match = _FLOAT_TYPE_RE.match(suffix.text)
                if not match:
                    raise self.error(f"invalid float suffix {suffix.text!r}", suffix)
                width = int(match.group(1))
            return FloatParam(value, width)
        token = self.expect(TokenKind.INTEGER, "integer literal")
        hex_value = self._accept_hex_float(token, negative)
        if hex_value is not None:
            width = 64
            if self.peek().kind is TokenKind.COLON:
                suffix = self.peek(1)
                if suffix.kind is TokenKind.BARE_IDENT and _FLOAT_TYPE_RE.match(
                    suffix.text
                ):
                    self.next()
                    self.next()
                    width = int(suffix.text[1:])
            return FloatParam(hex_value, width)
        value = int(token.text)
        value = -value if negative else value
        bitwidth, signed = 32, True
        if self.peek().kind is TokenKind.COLON:
            suffix = self.peek(1)
            if suffix.kind is TokenKind.BARE_IDENT and _PARAM_INT_RE.match(suffix.text):
                self.next()  # ':'
                self.next()  # suffix
                match = _PARAM_INT_RE.match(suffix.text)
                assert match is not None
                signed = match.group(1) != "u"
                bitwidth = int(match.group(2))
            elif suffix.kind is TokenKind.BARE_IDENT and _FLOAT_TYPE_RE.match(suffix.text):
                self.next()
                self.next()
                return FloatParam(float(value), int(suffix.text[1:]))
        return IntegerParam(value, bitwidth, signed)

    def _parse_enum_param(self) -> EnumParam:
        enum_token = self.expect(TokenKind.BARE_IDENT, "enum name")
        self.expect(TokenKind.DOT, "'.'")
        ctor_token = self.expect(TokenKind.BARE_IDENT, "enum constructor")
        enum = self._resolve_enum(enum_token.text, enum_token)
        if not enum.has_constructor(ctor_token.text):
            raise self.error(
                f"enum {enum.qualified_name} has no constructor "
                f"{ctor_token.text!r}",
                ctor_token,
            )
        return EnumParam(enum.qualified_name, ctor_token.text)

    def _resolve_enum(self, name: str, token: Token):
        if "." in name:
            enum = self.context.get_enum(name)
            if enum is not None:
                return enum
            raise self.error(f"unknown enum {name!r}", token)
        matches = [
            dialect.enums[name]
            for dialect in self.context.dialects.values()
            if name in dialect.enums
        ]
        if not matches:
            raise self.error(f"unknown enum {name!r}", token)
        if len(matches) > 1:
            options = ", ".join(e.qualified_name for e in matches)
            raise self.error(
                f"ambiguous enum {name!r}; candidates: {options}", token
            )
        return matches[0]

    def _parse_location_param(self) -> LocationParam:
        self.expect(TokenKind.BARE_IDENT, "'loc'")
        self.expect(TokenKind.LPAREN, "'('")
        filename = self.expect(TokenKind.STRING, "filename string").value
        self.expect(TokenKind.COLON, "':'")
        line = int(self.expect(TokenKind.INTEGER, "line number").text)
        self.expect(TokenKind.COLON, "':'")
        column = int(self.expect(TokenKind.INTEGER, "column number").text)
        self.expect(TokenKind.RPAREN, "')'")
        return LocationParam(filename, line, column)

    def _parse_typeid_param(self) -> TypeIdParam:
        self.expect(TokenKind.BARE_IDENT, "'typeid'")
        self.expect(TokenKind.LESS, "'<'")
        parts = [self.expect(TokenKind.BARE_IDENT, "class name").text]
        while self.accept(TokenKind.DOT):
            parts.append(self.expect(TokenKind.BARE_IDENT, "class name").text)
        self.expect(TokenKind.GREATER, "'>'")
        return TypeIdParam(".".join(parts))

    def _parse_opaque_param(self) -> OpaqueParam:
        self.expect(TokenKind.BARE_IDENT, "'opaque'")
        self.expect(TokenKind.LESS, "'<'")
        class_name = self.expect(TokenKind.STRING, "class name string").value
        self.expect(TokenKind.COMMA, "','")
        value = self.expect(TokenKind.STRING, "value string").value
        self.expect(TokenKind.GREATER, "'>'")
        return OpaqueParam(class_name, value)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        token = self.peek()
        if token.kind is TokenKind.STRING:
            return battrs.StringAttr.get(self.next().value)
        if token.kind in (TokenKind.INTEGER, TokenKind.FLOAT, TokenKind.MINUS):
            return self._parse_numeric_attribute()
        if token.kind is TokenKind.LBRACKET:
            self.next()
            elements: list[Attribute] = []
            if self.peek().kind is not TokenKind.RBRACKET:
                elements.append(self.parse_attribute())
                while self.accept(TokenKind.COMMA):
                    elements.append(self.parse_attribute())
            self.expect(TokenKind.RBRACKET, "']'")
            return battrs.ArrayAttr.get(elements)
        if token.kind is TokenKind.LBRACE:
            return self._parse_dictionary_attribute()
        if token.kind is TokenKind.AT_IDENT:
            return battrs.SymbolRefAttr.get(self.next().value)
        if token.kind is TokenKind.HASH_IDENT:
            return self._parse_dialect_attribute(self.next())
        if token.kind is TokenKind.BARE_IDENT:
            if token.text == "unit":
                self.next()
                return battrs.UnitAttr.get()
            if token.text == "true":
                self.next()
                return battrs.IntegerAttr.get(1, btypes.i1)
            if token.text == "false":
                self.next()
                return battrs.IntegerAttr.get(0, btypes.i1)
            if self._is_builtin_type_name(token.text):
                # Types are attributes; a bare type in attribute position
                # denotes itself.
                return self.parse_type()
        if token.kind in (TokenKind.BANG_IDENT, TokenKind.LPAREN):
            return self.parse_type()
        raise self.error(f"expected an attribute, found {token.text!r}", token)

    def _parse_numeric_attribute(self) -> Attribute:
        negative = bool(self.accept(TokenKind.MINUS))
        token = self.next()
        if token.kind is TokenKind.FLOAT:
            value = -float(token.text) if negative else float(token.text)
            attr_type: Attribute = btypes.f64
            if self.accept(TokenKind.COLON):
                attr_type = self.parse_type()
            return battrs.FloatAttr.get(value, attr_type)
        if token.kind is not TokenKind.INTEGER:
            raise self.error("expected a number", token)
        hex_value = self._accept_hex_float(token, negative)
        if hex_value is not None:
            attr_type = btypes.f64
            if self.accept(TokenKind.COLON):
                attr_type = self.parse_type()
            return battrs.FloatAttr.get(hex_value, attr_type)
        int_value = -int(token.text) if negative else int(token.text)
        if self.accept(TokenKind.COLON):
            attr_type = self.parse_type()
            if isinstance(attr_type, btypes.FloatType):
                return battrs.FloatAttr.get(float(int_value), attr_type)
            return battrs.IntegerAttr.get(int_value, attr_type)
        return battrs.IntegerAttr.get(int_value)

    def _parse_dictionary_attribute(self) -> Attribute:
        self.expect(TokenKind.LBRACE, "'{'")
        entries: dict[str, Attribute] = {}
        while self.peek().kind is not TokenKind.RBRACE:
            key = self.expect(TokenKind.BARE_IDENT, "attribute name").text
            if self.accept(TokenKind.EQUAL):
                entries[key] = self.parse_attribute()
            else:
                entries[key] = battrs.UnitAttr.get()
            if not self.accept(TokenKind.COMMA):
                break
        self.expect(TokenKind.RBRACE, "'}'")
        return intern_attr(battrs.DictionaryAttr(entries))

    def _parse_dialect_attribute(self, token: Token) -> Attribute:
        qualified = token.value
        if "." not in qualified:
            qualified = f"builtin.{qualified}"
        attr_def = self.context.get_attr_def(qualified)
        if attr_def is None:
            raise self.error(f"unknown attribute '#{token.value}'", token)
        params = self._parse_dialect_params(attr_def)
        try:
            return attr_def.instantiate(params)
        except VerifyError as err:
            raise self.error(str(err), token) from err

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def parse_operation(self) -> Operation:
        result_tokens: list[Token] = []
        if self.peek().kind is TokenKind.PERCENT_IDENT:
            result_tokens.append(self.next())
            while self.accept(TokenKind.COMMA):
                result_tokens.append(
                    self.expect(TokenKind.PERCENT_IDENT, "result name")
                )
            self.expect(TokenKind.EQUAL, "'='")
        token = self.peek()
        if token.kind is TokenKind.STRING:
            op = self._parse_generic_operation()
        elif token.kind is TokenKind.BARE_IDENT:
            op = self._parse_custom_operation()
        else:
            raise self.error(
                f"expected an operation, found {token.text!r}", token
            )
        if len(result_tokens) != len(op.results):
            raise self.error(
                f"operation {op.name} produced {len(op.results)} results but "
                f"{len(result_tokens)} names were bound",
                token,
            )
        for name_token, result in zip(result_tokens, op.results):
            self.define_value(name_token.value, result, name_token)
        # Provenance: an explicit trailing ``loc(...)`` wins (so printed
        # IR round-trips); otherwise the op is attributed to the span of
        # its name token in this source file.
        explicit = self._parse_optional_location()
        if explicit is not None:
            op.location = explicit
        elif op.location.is_unknown:
            op.location = Location.from_span(token.span)
        return op

    def _parse_optional_location(self) -> Location | None:
        """A trailing ``loc(...)`` attachment, if present.

        Operation names always contain a dot, so a bare ``loc(`` after
        an operation is unambiguous.
        """
        token = self.peek()
        if (
            token.kind is not TokenKind.BARE_IDENT
            or token.text != "loc"
            or self.peek(1).kind is not TokenKind.LPAREN
        ):
            return None
        self.next()
        self.next()
        location = self._parse_location_value()
        self.expect(TokenKind.RPAREN, "')'")
        return location

    def _parse_location_value(self) -> Location:
        token = self.peek()
        if token.kind is TokenKind.BARE_IDENT and token.text == "unknown":
            self.next()
            return UNKNOWN_LOC
        if token.kind is TokenKind.BARE_IDENT and token.text == "fused":
            self.next()
            self.expect(TokenKind.LBRACKET, "'['")
            parts = [self._parse_location_value()]
            while self.accept(TokenKind.COMMA):
                parts.append(self._parse_location_value())
            self.expect(TokenKind.RBRACKET, "']'")
            return FusedLoc(parts)
        if token.kind is TokenKind.STRING:
            filename = self.next().value
            self.expect(TokenKind.COLON, "':'")
            line = int(self.expect(TokenKind.INTEGER, "line number").text)
            self.expect(TokenKind.COLON, "':'")
            col = int(self.expect(TokenKind.INTEGER, "column number").text)
            return FileLineColLoc(filename, line, col)
        raise self.error(
            f"expected a location, found {token.text!r}", token
        )

    def _parse_generic_operation(self) -> Operation:
        name_token = self.expect(TokenKind.STRING, "operation name")
        op_name = name_token.value
        operand_tokens = self._parse_operand_name_list()
        successors = self._parse_successor_list()
        regions: list[Region] = []
        if self.peek().kind is TokenKind.LPAREN:
            self.next()
            regions.append(self.parse_region())
            while self.accept(TokenKind.COMMA):
                regions.append(self.parse_region())
            self.expect(TokenKind.RPAREN, "')'")
        attributes: dict[str, Attribute] = {}
        if self.peek().kind is TokenKind.LBRACE:
            attr_dict = self._parse_dictionary_attribute()
            attributes = attr_dict.entries  # type: ignore[union-attr]
        self.expect(TokenKind.COLON, "':' before the operation type")
        self.expect(TokenKind.LPAREN, "'('")
        operand_types: list[Attribute] = []
        if self.peek().kind is not TokenKind.RPAREN:
            operand_types.append(self.parse_type())
            while self.accept(TokenKind.COMMA):
                operand_types.append(self.parse_type())
        self.expect(TokenKind.RPAREN, "')'")
        self.expect(TokenKind.ARROW, "'->'")
        result_types = self._parse_type_or_type_list()
        if len(operand_tokens) != len(operand_types):
            raise self.error(
                f"operation has {len(operand_tokens)} operands but "
                f"{len(operand_types)} operand types",
                name_token,
            )
        operands = [
            self.resolve_value(tok.value, ty, tok)
            for tok, ty in zip(operand_tokens, operand_types)
        ]
        try:
            return self.context.create_operation(
                op_name,
                operands=operands,
                result_types=result_types,
                attributes=attributes,
                successors=successors,
                regions=regions,
            )
        except UnregisteredConstructError as err:
            raise self.error(str(err), name_token) from err

    def _parse_custom_operation(self) -> Operation:
        parts = [self.expect(TokenKind.BARE_IDENT, "operation name").text]
        start_token = self.peek()
        while self.peek().kind is TokenKind.DOT:
            self.next()
            parts.append(self.expect(TokenKind.BARE_IDENT, "operation name").text)
        op_name = ".".join(parts)
        definition = self.context.get_op_def(op_name)
        if definition is None:
            raise self.error(f"unknown operation {op_name!r}", start_token)
        if not definition.has_custom_format():
            raise self.error(
                f"operation {op_name!r} has no custom assembly format; "
                "use the generic form",
                start_token,
            )
        return definition.parse_custom(self)

    def _parse_operand_name_list(self) -> list[Token]:
        self.expect(TokenKind.LPAREN, "'('")
        tokens: list[Token] = []
        if self.peek().kind is not TokenKind.RPAREN:
            tokens.append(self.expect(TokenKind.PERCENT_IDENT, "operand"))
            while self.accept(TokenKind.COMMA):
                tokens.append(self.expect(TokenKind.PERCENT_IDENT, "operand"))
        self.expect(TokenKind.RPAREN, "')'")
        return tokens

    def _parse_successor_list(self) -> list[Block]:
        successors: list[Block] = []
        if self.peek().kind is TokenKind.LBRACKET:
            self.next()
            successors.append(self._successor_block())
            while self.accept(TokenKind.COMMA):
                successors.append(self._successor_block())
            self.expect(TokenKind.RBRACKET, "']'")
        return successors

    def _successor_block(self) -> Block:
        token = self.expect(TokenKind.CARET_IDENT, "successor block")
        if not self._block_scopes:
            raise self.error("successor reference outside a region", token)
        scope = self._block_scopes[-1]
        block = scope.get(token.value)
        if block is None:
            block = Block()
            scope[token.value] = block
        return block

    # ------------------------------------------------------------------
    # Regions and blocks
    # ------------------------------------------------------------------

    def parse_region(self) -> Region:
        self.expect(TokenKind.LBRACE, "'{'")
        region = Region()
        scope: dict[str, Block] = {}
        self._block_scopes.append(scope)
        self._push_value_scope()
        defined: list[str] = []
        try:
            # Anonymous entry block (no leading label).
            if self.peek().kind not in (TokenKind.CARET_IDENT, TokenKind.RBRACE):
                entry = Block()
                region.add_block(entry)
                self._parse_block_body(entry)
            while self.peek().kind is TokenKind.CARET_IDENT:
                label = self.next()
                block = scope.get(label.value)
                if block is None:
                    block = Block()
                    scope[label.value] = block
                elif label.value in defined:
                    raise self.error(
                        f"block ^{label.value} is defined twice", label
                    )
                defined.append(label.value)
                if self.accept(TokenKind.LPAREN):
                    while self.peek().kind is TokenKind.PERCENT_IDENT:
                        arg_token = self.next()
                        self.expect(TokenKind.COLON, "':'")
                        arg_type = self.parse_type()
                        arg = block.insert_arg(arg_type)
                        self.define_value(arg_token.value, arg, arg_token)
                        if not self.accept(TokenKind.COMMA):
                            break
                    self.expect(TokenKind.RPAREN, "')'")
                self.expect(TokenKind.COLON, "':'")
                region.add_block(block)
                self._parse_block_body(block)
            self.expect(TokenKind.RBRACE, "'}'")
            undefined = [name for name in scope if name not in defined]
            if undefined:
                names = ", ".join(f"^{n}" for n in sorted(undefined))
                raise self.error(f"use of undefined block(s): {names}")
            self._pop_value_scope()
        finally:
            self._block_scopes.pop()
        return region

    def _parse_block_body(self, block: Block) -> None:
        while self.peek().kind not in (
            TokenKind.CARET_IDENT,
            TokenKind.RBRACE,
            TokenKind.EOF,
        ):
            block.add_op(self.parse_operation())

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_module(self) -> Operation:
        """Parse a whole file: one op, or several wrapped in builtin.module."""
        ops: list[Operation] = []
        while not self.at_end():
            ops.append(self.parse_operation())
        self._check_no_pending()
        if len(ops) == 1 and ops[0].name == "builtin.module":
            return ops[0]
        region = Region([Block(ops=ops)])
        return self.context.create_operation(
            "builtin.module",
            regions=[region],
            # The synthesized wrapper is attributed to the whole file.
            location=FileLineColLoc(self.source.name, 1, 1),
        )

    def parse_single_op(self) -> Operation:
        op = self.parse_operation()
        self._check_no_pending()
        return op


def parse_module(context: Context, text: str, name: str = "<input>") -> Operation:
    """Parse textual IR into a ``builtin.module`` operation."""
    parser = IRParser(context, text, name)
    if not OBS.active:
        return parser.parse_module()
    start = _timing.now()
    with OBS.tracer.span("textir.parse", category="textir", file=name):
        module = parser.parse_module()
    metrics = OBS.metrics
    if metrics.enabled:
        scope = metrics.scope("textir")
        scope.timer("parser.parse_time").record(_timing.now() - start)
        scope.counter("lexer.tokens").inc(parser._lexer.tokens_lexed)
        ops_parsed = count_ops(module)
        scope.counter("parser.ops_parsed").inc(ops_parsed)
        scope.histogram("parser.module_ops").observe(ops_parsed)
    return module
