"""Lexer for the MLIR-like textual IR syntax.

The token inventory follows MLIR's generic syntax: sigil-prefixed
identifiers for SSA values (``%x``), blocks (``^bb0``), symbols (``@f``),
types (``!cmath.complex``) and attributes (``#cmath.attr``), plus bare
identifiers, numbers, strings, and punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.utils.diagnostics import DiagnosticError
from repro.utils.source import SourceFile, Span


class TokenKind(Enum):
    PERCENT_IDENT = auto()   # %value
    CARET_IDENT = auto()     # ^block
    AT_IDENT = auto()        # @symbol
    BANG_IDENT = auto()      # !type
    HASH_IDENT = auto()      # #attr
    BARE_IDENT = auto()      # keyword-ish identifiers
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LESS = auto()
    GREATER = auto()
    COMMA = auto()
    COLON = auto()
    EQUAL = auto()
    ARROW = auto()           # ->
    QUESTION = auto()        # ? (dynamic dimension)
    STAR = auto()
    PLUS = auto()
    MINUS = auto()
    DOT = auto()
    EOF = auto()


PUNCTUATION = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "<": TokenKind.LESS,
    ">": TokenKind.GREATER,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "=": TokenKind.EQUAL,
    "?": TokenKind.QUESTION,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    ".": TokenKind.DOT,
}

_SIGILS = {
    "%": TokenKind.PERCENT_IDENT,
    "^": TokenKind.CARET_IDENT,
    "@": TokenKind.AT_IDENT,
    "!": TokenKind.BANG_IDENT,
    "#": TokenKind.HASH_IDENT,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    @property
    def value(self) -> str:
        """Identifier text without its sigil; string text without quotes."""
        if self.kind in (
            TokenKind.PERCENT_IDENT,
            TokenKind.CARET_IDENT,
            TokenKind.AT_IDENT,
            TokenKind.BANG_IDENT,
            TokenKind.HASH_IDENT,
        ):
            return self.text[1:]
        if self.kind is TokenKind.STRING:
            return _unescape(self.text[1:-1])
        return self.text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_$"


def _is_suffix_ident_char(char: str) -> bool:
    # Sigil identifiers allow dots for namespacing: !cmath.complex
    return char.isalnum() or char in "_$."


class Lexer:
    """A hand-written scanner producing :class:`Token` values."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.contents
        self.pos = 0
        #: Tokens produced so far (EOF excluded); read by the
        #: observability layer after a parse (repro.obs).
        self.tokens_lexed = 0

    def error(self, message: str, start: int) -> DiagnosticError:
        return DiagnosticError.at(message, self.source.span(start, self.pos + 1))

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            else:
                return

    def next_token(self) -> Token:
        token = self._next_token()
        if token.kind is not TokenKind.EOF:
            self.tokens_lexed += 1
        return token

    def _next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self.source.span(start, start))
        char = self.text[self.pos]

        if char in _SIGILS:
            self.pos += 1
            ident_start = self.pos
            while self.pos < len(self.text) and _is_suffix_ident_char(self.text[self.pos]):
                self.pos += 1
            if self.pos == ident_start:
                raise self.error(f"expected identifier after {char!r}", start)
            return Token(_SIGILS[char], self.text[start : self.pos],
                         self.source.span(start, self.pos))

        if char == "-":
            if self.text.startswith("->", self.pos):
                self.pos += 2
                return Token(TokenKind.ARROW, "->", self.source.span(start, self.pos))
            if self.pos + 1 < len(self.text) and self.text[self.pos + 1].isdigit():
                return self._lex_number()
            self.pos += 1
            return Token(TokenKind.MINUS, "-", self.source.span(start, self.pos))

        if char.isdigit():
            return self._lex_number()

        if char == '"':
            return self._lex_string()

        if _is_ident_start(char):
            while self.pos < len(self.text) and _is_ident_char(self.text[self.pos]):
                self.pos += 1
            return Token(TokenKind.BARE_IDENT, self.text[start : self.pos],
                         self.source.span(start, self.pos))

        if char in PUNCTUATION:
            self.pos += 1
            return Token(PUNCTUATION[char], char, self.source.span(start, self.pos))

        raise self.error(f"unexpected character {char!r}", start)

    def _lex_number(self) -> Token:
        start = self.pos
        if self.text[self.pos] == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        is_float = False
        if (
            self.pos + 1 < len(self.text)
            and self.text[self.pos] == "."
            and self.text[self.pos + 1].isdigit()
        ):
            is_float = True
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "eE":
            lookahead = self.pos + 1
            if lookahead < len(self.text) and self.text[lookahead] in "+-":
                lookahead += 1
            if lookahead < len(self.text) and self.text[lookahead].isdigit():
                is_float = True
                self.pos = lookahead
                while self.pos < len(self.text) and self.text[self.pos].isdigit():
                    self.pos += 1
        kind = TokenKind.FLOAT if is_float else TokenKind.INTEGER
        return Token(kind, self.text[start : self.pos], self.source.span(start, self.pos))

    def _lex_string(self) -> Token:
        start = self.pos
        self.pos += 1
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "\\":
                self.pos += 2
                continue
            if char == '"':
                self.pos += 1
                return Token(TokenKind.STRING, self.text[start : self.pos],
                             self.source.span(start, self.pos))
            if char == "\n":
                break
            self.pos += 1
        raise self.error("unterminated string literal", start)

    def tokenize(self) -> list[Token]:
        tokens = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens
