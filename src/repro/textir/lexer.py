"""Lexer for the MLIR-like textual IR syntax.

The token inventory follows MLIR's generic syntax: sigil-prefixed
identifiers for SSA values (``%x``), blocks (``^bb0``), symbols (``@f``),
types (``!cmath.complex``) and attributes (``#cmath.attr``), plus bare
identifiers, numbers, strings, and punctuation.

Scanning is driven by a single compiled *master regex*: one alternation
whose named groups cover every token class (trivia included), matched
once per token with ``re.Pattern.match`` at the current offset.  This
replaces the previous per-character dispatch loop — the classification
work happens inside the regex engine's C loop instead of Python-level
branching, which roughly triples tokenization throughput on the paper
corpus.  The alternation is ordered so its longest-match cases mirror
the old scanner's lookahead rules exactly (``->`` before ``-``; a
number's fraction/exponent only consumed when a digit actually follows),
so token streams are identical; the rare error paths re-scan by hand to
reproduce the original diagnostic spans byte for byte.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.utils.diagnostics import DiagnosticError
from repro.utils.source import SourceFile, Span


class TokenKind(Enum):
    PERCENT_IDENT = auto()   # %value
    CARET_IDENT = auto()     # ^block
    AT_IDENT = auto()        # @symbol
    BANG_IDENT = auto()      # !type
    HASH_IDENT = auto()      # #attr
    BARE_IDENT = auto()      # keyword-ish identifiers
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LESS = auto()
    GREATER = auto()
    COMMA = auto()
    COLON = auto()
    EQUAL = auto()
    ARROW = auto()           # ->
    QUESTION = auto()        # ? (dynamic dimension)
    STAR = auto()
    PLUS = auto()
    MINUS = auto()
    DOT = auto()
    EOF = auto()


PUNCTUATION = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "<": TokenKind.LESS,
    ">": TokenKind.GREATER,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "=": TokenKind.EQUAL,
    "?": TokenKind.QUESTION,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    ".": TokenKind.DOT,
}

_SIGILS = {
    "%": TokenKind.PERCENT_IDENT,
    "^": TokenKind.CARET_IDENT,
    "@": TokenKind.AT_IDENT,
    "!": TokenKind.BANG_IDENT,
    "#": TokenKind.HASH_IDENT,
}

#: Sigil-identifier kinds, for ``Token.value``'s prefix stripping.
_SIGIL_KINDS = frozenset(_SIGILS.values())


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    @property
    def value(self) -> str:
        """Identifier text without its sigil; string text without quotes."""
        if self.kind in _SIGIL_KINDS:
            return self.text[1:]
        if self.kind is TokenKind.STRING:
            return _unescape(self.text[1:-1])
        return self.text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


# The master token regex.  Alternative order is load-bearing:
#
# * ``arrow`` precedes ``minus`` so ``->`` never splits;
# * ``number`` requires a digit after ``-``/``.``/exponent before
#   consuming them, reproducing the old scanner's one-character
#   lookahead (``4.`` is INTEGER then DOT; ``1e`` is INTEGER then a bare
#   ``e``; a lone ``-`` falls through to MINUS);
# * ``string`` treats a backslash as escaping *any* following character
#   (newline included) and refuses unescaped newlines, so a match failure
#   on a ``"`` means exactly "unterminated string literal";
# * identifier classes are built from ``\w`` (minus digits for the
#   leading character) to keep the Unicode acceptance of the previous
#   ``str.isalnum``-based scanner.
#
# Trivia (whitespace and ``//`` comments) is an ordinary alternative so
# one match call per loop iteration handles everything.
_MASTER_RE = re.compile(
    r"""
      (?P<trivia>  [ \t\r\n]+ | //[^\n]* )
    | (?P<sigil>   [%^@!#][\w$.]+ )
    | (?P<arrow>   -> )
    | (?P<number>  -?\d+ (?:\.\d+)? (?:[eE][+-]?\d+)? )
    | (?P<string>  "(?:\\[\s\S]|[^"\\\n])*" )
    | (?P<bare>    [^\W\d][\w$]* )
    | (?P<punct>   [(){}\[\]<>,:=?*+.] )
    | (?P<minus>   - )
    | (?P<badsigil> [%^@!#] )
    | (?P<badstring> " )
    """,
    re.VERBOSE,
)


# Group numbers of the master regex, for integer dispatch in the hot
# loop (every alternative's nested groups are non-capturing, so these
# are dense and stable; resolving them by name keeps reordering safe).
_G_TRIVIA = _MASTER_RE.groupindex["trivia"]
_G_SIGIL = _MASTER_RE.groupindex["sigil"]
_G_ARROW = _MASTER_RE.groupindex["arrow"]
_G_NUMBER = _MASTER_RE.groupindex["number"]
_G_STRING = _MASTER_RE.groupindex["string"]
_G_BARE = _MASTER_RE.groupindex["bare"]
_G_PUNCT = _MASTER_RE.groupindex["punct"]
_G_MINUS = _MASTER_RE.groupindex["minus"]
_G_BADSIGIL = _MASTER_RE.groupindex["badsigil"]

_MATCH = _MASTER_RE.match


class Lexer:
    """A scanner producing :class:`Token` values from one master regex."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.contents
        self.pos = 0
        #: Tokens produced so far (EOF excluded); read by the
        #: observability layer after a parse (repro.obs).
        self.tokens_lexed = 0

    def error(self, message: str, start: int) -> DiagnosticError:
        return DiagnosticError.at(message, self.source.span(start, self.pos + 1))

    def next_token(self) -> Token:
        token = self._next_token()
        if token.kind is not TokenKind.EOF:
            self.tokens_lexed += 1
        return token

    def _next_token(self) -> Token:
        text = self.text
        pos = self.pos
        match = _MATCH(text, pos)
        while match is not None and match.lastindex == _G_TRIVIA:
            pos = match.end()
            match = _MATCH(text, pos)
        if match is None:
            self.pos = pos
            if pos >= len(text):
                return Token(TokenKind.EOF, "", Span(pos, pos, self.source))
            raise self.error(f"unexpected character {text[pos]!r}", pos)

        group = match.lastindex
        end = match.end()
        lexeme = text[pos:end]
        self.pos = end
        if group == _G_PUNCT:
            kind = PUNCTUATION[lexeme]
        elif group == _G_BARE:
            kind = TokenKind.BARE_IDENT
        elif group == _G_SIGIL:
            kind = _SIGILS[lexeme[0]]
        elif group == _G_NUMBER:
            kind = (
                TokenKind.FLOAT
                if "." in lexeme or "e" in lexeme or "E" in lexeme
                else TokenKind.INTEGER
            )
        elif group == _G_STRING:
            kind = TokenKind.STRING
        elif group == _G_ARROW:
            kind = TokenKind.ARROW
        elif group == _G_MINUS:
            kind = TokenKind.MINUS
        elif group == _G_BADSIGIL:
            # Reproduce the old scanner's error span: the sigil was
            # consumed before the missing identifier was noticed.
            self.pos = pos + 1
            raise self.error(f"expected identifier after {lexeme!r}", pos)
        else:
            # badstring: re-scan by hand purely to land self.pos where
            # the old scanner stopped, so the diagnostic span matches.
            size = len(text)
            cursor = pos + 1
            while cursor < size:
                char = text[cursor]
                if char == "\\":
                    cursor += 2
                    continue
                if char == "\n":
                    break
                cursor += 1
            self.pos = cursor
            raise self.error("unterminated string literal", pos)
        return Token(kind, lexeme, Span(pos, end, self.source))

    def tokenize(self) -> list[Token]:
        tokens = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens
