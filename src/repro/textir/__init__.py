"""Textual IR syntax: lexer, parser, and printer (deliverable (1) of §3)."""

from repro.textir.lexer import Lexer, Token, TokenKind
from repro.textir.parser import IRParser, parse_module
from repro.textir.printer import Printer, print_attribute, print_op, print_type

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "IRParser",
    "parse_module",
    "Printer",
    "print_attribute",
    "print_op",
    "print_type",
]
