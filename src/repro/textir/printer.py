"""Printer for the MLIR-like textual IR syntax.

Operations print in the *generic* form by default::

    %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32

Operations whose definition declares a custom assembly format (IRDL's
``Format`` directive, §4.7) print in their declarative form instead::

    %0 = cmath.norm %p : f32
"""

from __future__ import annotations

import io
from typing import Any, Iterable

from repro.ir.attributes import (
    Attribute,
    DynamicParametrizedAttribute,
    TypeAttribute,
    attribute_name,
)
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.params import ParamValue
from repro.ir.region import Region
from repro.ir.value import SSAValue


class Printer:
    """Stateful printer tracking value and block names."""

    def __init__(self, stream: io.TextIOBase | None = None, indent_width: int = 2,
                 print_locations: bool = False):
        self.stream = stream if stream is not None else io.StringIO()
        self.indent_width = indent_width
        #: When set, every operation prints a trailing ``loc(...)``
        #: attachment (the parser accepts it back, so provenance
        #: round-trips through text).
        self.print_locations = print_locations
        self._indent = 0
        self._value_names: dict[SSAValue, str] = {}
        self._used_names: set[str] = set()
        self._block_names: dict[Block, str] = {}
        self._next_value = 0
        self._next_block = 0

    # ------------------------------------------------------------------
    # Low-level emission
    # ------------------------------------------------------------------

    def write(self, text: str) -> None:
        self.stream.write(text)

    def newline(self) -> None:
        self.write("\n" + " " * (self._indent * self.indent_width))

    def getvalue(self) -> str:
        assert isinstance(self.stream, io.StringIO)
        return self.stream.getvalue()

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    def name_of(self, value: SSAValue) -> str:
        existing = self._value_names.get(value)
        if existing is not None:
            return existing
        if value.name_hint and value.name_hint not in self._used_names:
            name = value.name_hint
        else:
            name = str(self._next_value)
            self._next_value += 1
            while name in self._used_names:
                name = str(self._next_value)
                self._next_value += 1
        self._value_names[value] = name
        self._used_names.add(name)
        return name

    def block_name(self, block: Block) -> str:
        existing = self._block_names.get(block)
        if existing is not None:
            return existing
        name = f"bb{self._next_block}"
        self._next_block += 1
        self._block_names[block] = name
        return name

    # ------------------------------------------------------------------
    # Values, types, attributes
    # ------------------------------------------------------------------

    def print_operand(self, value: SSAValue) -> None:
        self.write(f"%{self.name_of(value)}")

    def print_type(self, type_attr: Attribute) -> None:
        if isinstance(type_attr, DynamicParametrizedAttribute):
            self.write(f"!{type_attr.attr_name}")
            self._print_dynamic_params(type_attr)
            return
        self.write(str(type_attr))

    def _print_dynamic_params(self, attr: DynamicParametrizedAttribute) -> None:
        if not attr.parameters:
            return
        self.write("<")
        program = getattr(attr.definition, "param_format", None)
        if program is not None:
            program.print(attr.parameters, self)
        else:
            self.print_list(attr.parameters, self.print_param)
        self.write(">")

    def print_param(self, param: Any) -> None:
        """Print one type/attribute parameter value."""
        if isinstance(param, Attribute):
            if isinstance(param, TypeAttribute):
                self.print_type(param)
            else:
                self.print_attribute(param)
            return
        if isinstance(param, ParamValue):
            self.write(str(param))
            return
        self.write(repr(param))

    def print_attribute(self, attr: Attribute) -> None:
        if isinstance(attr, DynamicParametrizedAttribute):
            self.write(f"#{attr.attr_name}")
            self._print_dynamic_params(attr)
            return
        if isinstance(attr, TypeAttribute):
            self.print_type(attr)
            return
        self.write(str(attr))

    def print_list(self, items: Iterable[Any], printer_fn, separator: str = ", ") -> None:
        for index, item in enumerate(items):
            if index:
                self.write(separator)
            printer_fn(item)

    # ------------------------------------------------------------------
    # Operations, blocks, regions
    # ------------------------------------------------------------------

    def print_op(self, op: Operation) -> None:
        from repro.ir.exceptions import VerifyError

        if op.results:
            self.print_list(op.results, self.print_operand)
            self.write(" = ")
        definition = op.definition
        if definition is not None and definition.has_custom_format():
            try:
                # Constraint-variable bindings are recovered before any
                # text is emitted, so invalid IR falls back cleanly.
                definition.prepare_custom(op)
            except VerifyError:
                self._print_generic(op)
                self._print_location_suffix(op)
                return
            self.write(op.name)
            definition.print_custom(op, self)
            self._print_location_suffix(op)
            return
        self._print_generic(op)
        self._print_location_suffix(op)

    def _print_location_suffix(self, op: Operation) -> None:
        if self.print_locations:
            self.write(" loc(")
            self.write(str(op.location))
            self.write(")")

    def _print_generic(self, op: Operation) -> None:
        self.write(f'"{op.name}"(')
        self.print_list(op.operands, self.print_operand)
        self.write(")")
        if op.successors:
            self.write("[")
            self.print_list(
                op.successors, lambda b: self.write(f"^{self.block_name(b)}")
            )
            self.write("]")
        if op.regions:
            self.write(" (")
            self.print_list(op.regions, self.print_region)
            self.write(")")
        if op.attributes:
            self.write(" {")
            self.print_list(sorted(op.attributes.items()), self._print_attr_entry)
            self.write("}")
        self.write(" : (")
        self.print_list(op.operands, lambda v: self.print_type(v.type))
        self.write(") -> (")
        self.print_list(op.results, lambda r: self.print_type(r.type))
        self.write(")")

    def _print_attr_entry(self, entry: tuple[str, Attribute]) -> None:
        key, value = entry
        self.write(f"{key} = ")
        self.print_attribute(value)

    def print_region(self, region: Region) -> None:
        self.write("{")
        self._indent += 1
        multi_block = len(region.blocks) > 1
        for index, block in enumerate(region.blocks):
            if index or block.args or multi_block:
                self.newline()
                self.write(f"^{self.block_name(block)}")
                if block.args:
                    self.write("(")
                    self.print_list(block.args, self._print_block_arg)
                    self.write(")")
                self.write(":")
                self._indent += 1
                self._print_block_body(block)
                self._indent -= 1
            else:
                self._print_block_body(block)
        self._indent -= 1
        self.newline()
        self.write("}")

    def _print_block_arg(self, arg) -> None:
        self.print_operand(arg)
        self.write(": ")
        self.print_type(arg.type)

    def _print_block_body(self, block: Block) -> None:
        for op in block.ops:
            self.newline()
            self.print_op(op)

    # ------------------------------------------------------------------

    def print_module(self, op: Operation) -> str:
        """Print a top-level operation and return the text."""
        self.print_op(op)
        self.write("\n")
        return self.getvalue() if isinstance(self.stream, io.StringIO) else ""


def print_op(op: Operation, print_locations: bool = False) -> str:
    """Convenience helper: print one operation tree to a string."""
    printer = Printer(print_locations=print_locations)
    printer.print_op(op)
    return printer.getvalue()


def print_type(type_attr: Attribute) -> str:
    printer = Printer()
    printer.print_type(type_attr)
    return printer.getvalue()


def print_attribute(attr: Attribute) -> str:
    printer = Printer()
    printer.print_attribute(attr)
    return printer.getvalue()
