"""The paper's Listing 1: optimizing ``conorm`` with the cmath dialect.

``norm(p) * norm(q)`` is rewritten to ``norm(p * q)`` — the
multiplication of two norms becomes the norm of a complex
multiplication, an equivalent but faster computation.  The dialect is
loaded from its IRDL file at runtime and the rewrite runs through the
pattern-rewriting substrate, demonstrating §3's "simple pattern-based
compilation flow without the need for additional C++ code".

Run:  python examples/cmath_optimization.py
"""

from repro.builtin import default_context
from repro.corpus import cmath_source
from repro.ir import Operation
from repro.irdl import register_irdl
from repro.rewriting import PatternRewriter, apply_patterns_greedily, pattern
from repro.textir import parse_module, print_op

#: Listing 1a — before optimization.
CONORM_BEFORE = """
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %norm_p = cmath.norm %p : f32
  %norm_q = cmath.norm %q : f32
  %pq = "arith.mulf"(%norm_p, %norm_q) : (f32, f32) -> (f32)
  "func.return"(%pq) : (f32) -> ()
}) {sym_name = "conorm",
    function_type = (!cmath.complex<f32>, !cmath.complex<f32>) -> f32}
   : () -> ()
"""


@pattern(op_name="arith.mulf")
def mul_of_norms(op: Operation, rewriter: PatternRewriter) -> bool:
    """norm(p) * norm(q)  ==>  norm(p * q)"""
    lhs, rhs = op.operands
    lhs_def, rhs_def = lhs.owner, rhs.owner
    if not isinstance(lhs_def, Operation) or lhs_def.name != "cmath.norm":
        return False
    if not isinstance(rhs_def, Operation) or rhs_def.name != "cmath.norm":
        return False
    p, q = lhs_def.operands[0], rhs_def.operands[0]
    if p.type != q.type:
        return False
    mul = rewriter.create("cmath.mul", operands=[p, q],
                          result_types=[p.type], before=op)
    norm = rewriter.create("cmath.norm", operands=[mul.results[0]],
                           result_types=[op.results[0].type], before=op)
    rewriter.replace_op(op, norm)
    return True


@pattern(op_name="cmath.norm")
def erase_dead_norm(op: Operation, rewriter: PatternRewriter) -> bool:
    """Dead-code elimination for side-effect-free norms."""
    if any(result.has_uses for result in op.results):
        return False
    rewriter.erase_op(op)
    return True


#: The same optimization with *no* host-language code at all: an IRDL
#: dialect plus a declarative pattern — the fully dynamic flow of §3.
DECLARATIVE_PATTERN = """
Pattern norm_of_product {
  Match {
    %na = cmath.norm(%a)
    %nb = cmath.norm(%b)
    %r = arith.mulf(%na, %nb)
  }
  Rewrite {
    %m = cmath.mul(%a, %b)
    %r = cmath.norm(%m)
  }
}
"""


def run_programmatic(ctx) -> None:
    module = parse_module(ctx, CONORM_BEFORE)
    module.verify()
    print("before optimization (Listing 1a):")
    print(print_op(module))

    changed = apply_patterns_greedily(ctx, module,
                                      [mul_of_norms, erase_dead_norm])
    assert changed, "the peephole pattern should fire"
    module.verify()

    print("\nafter optimization (Listing 1b):")
    print(print_op(module))

    names = [op.name for op in module.walk() if op.name.startswith("cmath.")]
    assert names == ["cmath.mul", "cmath.norm"], names
    print("\nop mix after rewrite:", names)


def run_declarative(ctx) -> None:
    from repro.rewriting import DeadCodeElimination, parse_patterns

    module = parse_module(ctx, CONORM_BEFORE)
    patterns = parse_patterns(ctx, DECLARATIVE_PATTERN)
    assert apply_patterns_greedily(ctx, module, patterns)
    DeadCodeElimination().run(module)
    module.verify()
    print("\nsame rewrite via the declarative pattern language "
          "(zero Python in the pattern):")
    print(print_op(module))


def main() -> None:
    ctx = default_context()
    register_irdl(ctx, cmath_source())
    run_programmatic(ctx)
    run_declarative(ctx)


if __name__ == "__main__":
    main()
