"""Regions, terminators, and successors (Listings 7 and 8).

Defines the paper's ``range_loop`` operation — a loop carrying a nested
single-block region with a declared terminator — plus the
``conditional_branch`` terminator with two successors, then shows the
derived verifiers enforcing every structural rule.

Run:  python examples/range_loop_regions.py
"""

from repro.builtin import default_context, i1, i32
from repro.ir import Block, Region, VerifyError
from repro.irdl import register_irdl
from repro.textir import print_op

LOOPS = """
Dialect loops {
  Operation range_loop_terminator {
    Successors ()
    Summary "Terminates a range_loop body"
  }

  Operation range_loop {
    Operands (lower_bound: !i32, upper_bound: !i32, step: !i32)
    Region body {
      Arguments (induction_variable: !i32)
      Terminator range_loop_terminator
    }
    Summary "A loop iterating over an integer range (Listing 7)"
  }

  Operation conditional_branch {
    Operands (condition: !i1)
    Successors (next_bb_true, next_bb_false)
    Summary "Passes control to one of two blocks (Listing 8)"
  }
}
"""


def build_loop(ctx, bounds, with_terminator=True, arg_types=(i32,)):
    body = Block(list(arg_types))
    if with_terminator:
        body.add_op(ctx.create_operation("loops.range_loop_terminator"))
    return ctx.create_operation(
        "loops.range_loop", operands=list(bounds), regions=[Region([body])]
    )


def main() -> None:
    ctx = default_context()
    (loops,) = register_irdl(ctx, LOOPS)
    terminators = [op.name for op in loops.operations if op.is_terminator]
    print("terminator ops:", terminators)

    entry = Block([i32, i32, i32, i1])
    lower, upper, step, cond = entry.args

    # A well-formed loop verifies.
    loop = build_loop(ctx, (lower, upper, step))
    entry.add_op(loop)
    loop.verify()
    print("\nwell-formed range_loop:")
    print(print_op(loop))

    # Missing terminator: rejected.
    try:
        build_loop(ctx, (lower, upper, step), with_terminator=False).verify()
    except VerifyError as err:
        print(f"\nmissing terminator rejected:\n  {err}")

    # Wrong entry-argument type: rejected.
    try:
        build_loop(ctx, (lower, upper, step), arg_types=(i1,)).verify()
    except VerifyError as err:
        print(f"\nwrong region argument rejected:\n  {err}")

    # Successors: conditional_branch needs exactly two, and must be last
    # in its block.
    region = Region([Block(), Block()])
    then_block, else_block = region.blocks
    branch = ctx.create_operation(
        "loops.conditional_branch",
        operands=[cond],
        successors=[then_block, else_block],
    )
    print("\nconditional_branch with two successors verifies:")
    print(print_op(branch))
    branch.verify()

    bad_branch = ctx.create_operation(
        "loops.conditional_branch", operands=[cond], successors=[then_block]
    )
    try:
        bad_branch.verify()
    except VerifyError as err:
        print(f"one-successor branch rejected:\n  {err}")


if __name__ == "__main__":
    main()
