"""IR meta-tooling: analyze the 28-dialect MLIR corpus (§6).

Loads every corpus dialect through the full IRDL pipeline and prints the
paper's evaluation analyses — the dialect inventory (Table 1), growth
history (Fig. 3), per-dialect sizes (Fig. 4), structural statistics
(Figs. 5–7), and expressiveness results (Figs. 8–12).  This is the
"statistic and analysis tools" story of §3: because IR definitions are
self-contained data, analyses like these are a few lines each.

Run:  python examples/dialect_statistics.py [--hand-written]
"""

import sys

from repro.analysis import CorpusStats, analyze_expressiveness
from repro.analysis.history import MLIR_HISTORY
from repro.analysis.report import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9_10,
    render_fig11,
    render_fig12,
    render_table1,
)
from repro.corpus import load_corpus, load_hand_corpus, paper_data


def main() -> None:
    hand_only = "--hand-written" in sys.argv
    loader = load_hand_corpus if hand_only else load_corpus
    flavour = "hand-written" if hand_only else "full (paper-scale)"
    print(f"loading the {flavour} corpus ...\n")
    _, defs = loader()

    stats = CorpusStats.of(defs)
    report = analyze_expressiveness(defs)

    print(render_table1(sorted(paper_data.TABLE1.items())))
    print(render_fig3(MLIR_HISTORY))
    print(render_fig4(stats))
    print(render_fig5(stats))
    print(render_fig6(stats))
    print(render_fig7(stats))
    print(render_fig8(report))
    print(render_fig9_10(report))
    print(render_fig11(report))
    print(render_fig12(report))


if __name__ == "__main__":
    main()
