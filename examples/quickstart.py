"""Quickstart: define a dialect in IRDL, then build, print, and verify IR.

Walks the paper's §3 flow: an IRDL specification is registered with a
context at runtime — no compilation step — and the compiler immediately
knows how to construct, parse, print, and verify the new dialect.

Run:  python examples/quickstart.py
"""

from repro.builtin import default_context, f32
from repro.ir import Block, VerifyError
from repro.irdl import register_irdl
from repro.textir import parse_module, print_op

CMATH = """
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  Operation mul {
    ConstraintVar (!T: !complex<FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }
}
"""


def main() -> None:
    # 1. Register the dialect at runtime (Listing 3).
    ctx = default_context()
    (cmath,) = register_irdl(ctx, CMATH)
    print(f"registered dialect {cmath.name!r} with "
          f"{len(cmath.operations)} operations and {len(cmath.types)} types")

    # 2. Build IR programmatically through the context.
    complex_f32 = ctx.make_type("cmath.complex", [f32])
    block = Block([complex_f32, complex_f32])
    p, q = block.args
    mul = ctx.create_operation("cmath.mul", operands=[p, q],
                               result_types=[complex_f32])
    block.add_op(mul)
    norm = ctx.create_operation("cmath.norm", operands=[mul.results[0]],
                                result_types=[f32])
    block.add_op(norm)
    mul.verify()
    norm.verify()
    print("\nprogrammatically built ops (custom assembly formats):")
    print(" ", print_op(mul))
    print(" ", print_op(norm))

    # 3. Parse textual IR using the derived parser, verify, and print.
    module = parse_module(ctx, """
    "func.func"() ({
    ^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
      %pq = cmath.mul %p, %q : f32
      %n = cmath.norm %pq : f32
      "func.return"(%n) : (f32) -> ()
    }) {sym_name = "norm_of_product",
        function_type = (!cmath.complex<f32>, !cmath.complex<f32>) -> f32}
       : () -> ()
    """)
    module.verify()
    print("\nparsed and verified module:")
    print(print_op(module))

    # 4. The derived verifier rejects ill-typed IR (Listing 2's checks).
    bad = ctx.create_operation(
        "cmath.norm", operands=[norm.results[0]], result_types=[f32]
    )
    try:
        bad.verify()
    except VerifyError as err:
        print(f"ill-typed op correctly rejected:\n  {err}")


if __name__ == "__main__":
    main()
