"""Generating IR from IRDL definitions (§3's introspection/generation story).

Registers the cmath dialect, then *generates* random modules that are
valid by construction: operand/result types are sampled from the
declared constraints (with constraint variables unified), attributes are
sampled from their constraints, and every module verifies and
round-trips through the textual syntax.  This is differential testing of
the three derived artefacts — data structures, verifiers, and
parsers/printers — against each other.

Run:  python examples/ir_fuzzing.py [num_modules]
"""

import sys

from repro.builtin import default_context
from repro.corpus import cmath_source
from repro.irdl import register_irdl
from repro.irdl.irgen import IRGenerator, seed_values_dialect
from repro.textir import parse_module, print_op


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 25

    ctx = default_context()
    defs = register_irdl(ctx, cmath_source())
    defs += register_irdl(ctx, seed_values_dialect())

    total_ops = 0
    for seed in range(rounds):
        generator = IRGenerator(ctx, defs, seed=seed)
        module = generator.generate_module(num_ops=12)

        # Derived verifiers accept the generated IR ...
        module.verify()
        # ... and the derived printer/parser round-trip it exactly.
        text = print_op(module)
        reparsed = parse_module(ctx, text)
        reparsed.verify()
        assert print_op(reparsed) == text, "round-trip mismatch"
        total_ops += sum(1 for _ in module.walk(include_self=False))

    print(f"generated {rounds} modules ({total_ops} ops): all verified "
          "and round-tripped")

    print("\nsample module (seed 4):")
    module = IRGenerator(ctx, defs, seed=4).generate_module(num_ops=10)
    print(print_op(module))


if __name__ == "__main__":
    main()
