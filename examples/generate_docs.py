"""Generate Markdown reference documentation from IRDL definitions.

Because dialects are self-contained, documented data ("Summary" fields,
typed signatures, region/terminator declarations), reference docs are a
pure traversal — one of the §3 tooling dividends.  Renders the cmath
dialect and a couple of corpus dialects to ``docs/``.

Run:  python examples/generate_docs.py
"""

import os

from repro.analysis.docgen import render_dialect_doc
from repro.builtin import default_context
from repro.corpus import cmath_source, load_hand_corpus
from repro.irdl import register_irdl

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "docs")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    ctx = default_context()
    (cmath,) = register_irdl(ctx, cmath_source())
    _, corpus = load_hand_corpus()

    to_render = [cmath] + [
        d for d in corpus if d.name in ("scf", "llvm", "builtin")
    ]
    for dialect in to_render:
        path = os.path.join(OUT_DIR, f"{dialect.name}.md")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_dialect_doc(dialect))
        print(f"wrote {os.path.relpath(path)}")

    print("\npreview of docs/cmath.md:\n")
    print(render_dialect_doc(cmath))


if __name__ == "__main__":
    main()
