"""A complete domain-specific compiler on the IRDL stack (Figure 1).

Pipeline:  source text → AST → high-level ``calc`` dialect (defined in
IRDL at runtime) → declarative lowering to ``arith`` → constant-folding
canonicalization → the numeric answer, read off the folded IR.

Everything dialect-specific is data: the dialect is an IRDL string, the
lowering is two declarative patterns, and only the tiny expression
frontend and the fold pattern are host code.

Run:  python examples/calc_compiler.py "2 * (3 + 4) - 5"
"""

import sys

from repro.builtin import FloatAttr, default_context, f64
from repro.ir import Block, Builder, InsertPoint, Operation, Region
from repro.irdl import register_irdl
from repro.rewriting import (
    Canonicalizer,
    DeadCodeElimination,
    PassManager,
    parse_patterns,
    pattern,
)
from repro.textir import print_op

CALC_DIALECT = """
Dialect calc {
  Operation num {
    Results (value: !f64)
    Attributes (literal: f64_attr)
    Summary "A numeric literal"
  }
  Operation add {
    Operands (lhs: !f64, rhs: !f64)
    Results (sum: !f64)
    Summary "Addition at the calculator abstraction level"
  }
  Operation sub {
    Operands (lhs: !f64, rhs: !f64)
    Results (difference: !f64)
    Summary "Subtraction"
  }
  Operation mul {
    Operands (lhs: !f64, rhs: !f64)
    Results (product: !f64)
    Summary "Multiplication"
  }
}
"""

LOWERING_PATTERNS = """
Pattern lower_add {
  Match { %r = calc.add(%a, %b) }
  Rewrite { %r = arith.addf(%a, %b) }
}
Pattern lower_sub {
  Match { %r = calc.sub(%a, %b) }
  Rewrite { %r = arith.subf(%a, %b) }
}
Pattern lower_mul {
  Match { %r = calc.mul(%a, %b) }
  Rewrite { %r = arith.mulf(%a, %b) }
}
"""


# ---------------------------------------------------------------------------
# Frontend: a recursive-descent parser emitting calc IR
# ---------------------------------------------------------------------------

class Frontend:
    """expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
    factor := NUMBER | '(' expr ')' | '-' factor"""

    def __init__(self, text: str, builder: Builder):
        self.tokens = self._lex(text)
        self.position = 0
        self.builder = builder

    @staticmethod
    def _lex(text: str):
        tokens, number = [], ""
        for char in text + " ":
            if char.isdigit() or char == ".":
                number += char
                continue
            if number:
                tokens.append(number)
                number = ""
            if char in "+-*()":
                tokens.append(char)
            elif not char.isspace():
                raise SyntaxError(f"unexpected character {char!r}")
        return tokens

    def peek(self):
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def eat(self, expected=None):
        token = self.peek()
        if token is None or (expected is not None and token != expected):
            raise SyntaxError(f"expected {expected!r}, found {token!r}")
        self.position += 1
        return token

    def emit_num(self, value: float):
        op = self.builder.create(
            "calc.num", result_types=[f64],
            attributes={"literal": FloatAttr(value, f64)},
        )
        return op.results[0]

    def binary(self, name, lhs, rhs):
        op = self.builder.create(f"calc.{name}", operands=[lhs, rhs],
                                 result_types=[f64])
        return op.results[0]

    def expr(self):
        value = self.term()
        while self.peek() in ("+", "-"):
            operator = self.eat()
            value = self.binary("add" if operator == "+" else "sub",
                                value, self.term())
        return value

    def term(self):
        value = self.factor()
        while self.peek() == "*":
            self.eat("*")
            value = self.binary("mul", value, self.factor())
        return value

    def factor(self):
        token = self.peek()
        if token == "(":
            self.eat("(")
            value = self.expr()
            self.eat(")")
            return value
        if token == "-":
            self.eat("-")
            return self.binary("sub", self.emit_num(0.0), self.factor())
        return self.emit_num(float(self.eat()))


# ---------------------------------------------------------------------------
# Backend: constant folding over arith
# ---------------------------------------------------------------------------

FOLDERS = {"arith.addf": lambda a, b: a + b,
           "arith.subf": lambda a, b: a - b,
           "arith.mulf": lambda a, b: a * b}


@pattern()
def fold_arith(op: Operation, rewriter) -> bool:
    fold = FOLDERS.get(op.name)
    if fold is None:
        return False
    constants = []
    for operand in op.operands:
        producer = operand.owner
        if not isinstance(producer, Operation) or producer.name != "arith.constant":
            return False
        constants.append(producer.attributes["value"].value)
    folded = rewriter.create(
        "arith.constant", result_types=[f64],
        attributes={"value": FloatAttr(fold(*constants), f64)}, before=op,
    )
    rewriter.replace_op(op, folded)
    return True


@pattern(op_name="calc.num")
def lower_num(op: Operation, rewriter) -> bool:
    constant = rewriter.create(
        "arith.constant", result_types=[f64],
        attributes={"value": op.attributes["literal"]}, before=op,
    )
    rewriter.replace_op(op, constant)
    return True


def compile_and_run(text: str, verbose: bool = True) -> float:
    ctx = default_context()
    register_irdl(ctx, CALC_DIALECT)
    register_irdl(ctx, "Dialect io { Operation print { Operands (v: !f64) } }")

    # Frontend: source → calc IR.
    block = Block()
    builder = Builder(ctx, InsertPoint.at_end(block))
    result = Frontend(text, builder).expr()
    builder.create("io.print", operands=[result])
    module = ctx.create_operation("builtin.module",
                                  regions=[Region([block])])
    module.verify()
    if verbose:
        print("calc-level IR:")
        print(print_op(module))

    # Midend: declarative lowering + programmatic num lowering + folding.
    pipeline = PassManager(verify_each=True)
    pipeline.add(Canonicalizer(ctx, parse_patterns(ctx, LOWERING_PATTERNS)
                               + [lower_num]))
    pipeline.add(Canonicalizer(ctx, [fold_arith]))
    pipeline.add(DeadCodeElimination())
    pipeline.run(module)
    if verbose:
        print("\nafter lowering and folding:")
        print(print_op(module))

    # The answer is the single remaining constant.
    constants = [op for op in module.walk() if op.name == "arith.constant"]
    assert len(constants) == 1, "folding should leave one constant"
    return constants[0].attributes["value"].value


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else "2 * (3 + 4) - 5"
    value = compile_and_run(text)
    print(f"\n{text} = {value}")


if __name__ == "__main__":
    main()
