"""A multi-dialect compilation flow: lowering cmath to arith/math.

Figure 1 shows programs flowing through multiple IR dialects at
decreasing abstraction levels.  This example runs one such stage: the
high-level ``cmath`` dialect (defined in IRDL, loaded at runtime) is
lowered into scalar ``arith``/``math`` operations by representing each
complex number as its unpacked (re, im) pair:

    cmath.create_constant        ->  two arith.constant
    cmath.mul(a, b)              ->  4x mulf, subf, addf
    cmath.norm(c)                ->  math.sqrt(re*re + im*im)

The pass is ~60 lines of Python against the public IR API — no
C++-style boilerplate, which is the productivity claim of §3.

Run:  python examples/lower_cmath_to_arith.py
"""

from repro.analysis.ir_stats import analyze_module, render_module_stats
from repro.builtin import FloatAttr, default_context, f32
from repro.corpus import cmath_source
from repro.ir import Builder, InsertPoint, Operation
from repro.irdl import register_irdl
from repro.textir import parse_module, print_op

PROGRAM = """
"builtin.module"() ({
  %p = "cmath.create_constant"() {re = 3.0 : f32, im = 4.0 : f32}
       : () -> (!cmath.complex<f32>)
  %q = "cmath.create_constant"() {re = 1.0 : f32, im = 2.0 : f32}
       : () -> (!cmath.complex<f32>)
  %pq = cmath.mul %p, %q : f32
  %n = cmath.norm %pq : f32
  "irgen.sink"(%n) : (f32) -> ()
}) : () -> ()
"""


def lower_cmath(ctx, module) -> None:
    """Replace every cmath op with scalar arithmetic, then erase them."""
    unpacked: dict = {}  # complex SSA value -> (re value, im value)
    to_erase: list[Operation] = []

    for op in list(module.walk()):
        if not op.name.startswith("cmath."):
            continue
        builder = Builder(ctx, InsertPoint.before(op))
        binary = lambda name, lhs, rhs: builder.create(
            name, operands=[lhs, rhs], result_types=[f32]
        ).results[0]

        if op.name == "cmath.create_constant":
            re_im = []
            for key in ("re", "im"):
                constant = builder.create(
                    "arith.constant", result_types=[f32],
                    attributes={"value": op.attributes[key]},
                )
                re_im.append(constant.results[0])
            unpacked[op.results[0]] = tuple(re_im)
            to_erase.append(op)
        elif op.name == "cmath.mul":
            (ar, ai) = unpacked[op.operands[0]]
            (br, bi) = unpacked[op.operands[1]]
            # (ar+ai·i)(br+bi·i) = (ar·br − ai·bi) + (ar·bi + ai·br)·i
            re = binary("arith.subf", binary("arith.mulf", ar, br),
                        binary("arith.mulf", ai, bi))
            im = binary("arith.addf", binary("arith.mulf", ar, bi),
                        binary("arith.mulf", ai, br))
            unpacked[op.results[0]] = (re, im)
            to_erase.append(op)
        elif op.name == "cmath.norm":
            (re, im) = unpacked[op.operands[0]]
            squares = binary("arith.addf", binary("arith.mulf", re, re),
                             binary("arith.mulf", im, im))
            root = builder.create("math.sqrt", operands=[squares],
                                  result_types=[f32])
            op.results[0].replace_all_uses_with(root.results[0])
            to_erase.append(op)
        else:
            raise NotImplementedError(op.name)

    # Erase in reverse order so producers outlive their consumers.
    for op in reversed(to_erase):
        op.erase()


def main() -> None:
    ctx = default_context()
    register_irdl(ctx, cmath_source())
    register_irdl(ctx, "Dialect irgen { Operation sink { Operands (v: !AnyType) } }")

    module = parse_module(ctx, PROGRAM)
    module.verify()
    print("before lowering (cmath abstraction level):")
    print(print_op(module))
    print()
    print(render_module_stats(analyze_module(module), "high-level IR"))

    lower_cmath(ctx, module)
    module.verify()

    # The conversion target certifies completeness: after lowering, only
    # the scalar dialects may appear.
    from repro.rewriting import ConversionTarget

    target = ConversionTarget().add_legal_dialect(
        "builtin", "arith", "math", "irgen"
    )
    assert not target.illegal_ops_in(module), "illegal ops survived lowering"

    print("\nafter lowering (arith/math abstraction level):")
    print(print_op(module))
    print()
    print(render_module_stats(analyze_module(module), "lowered IR"))

    remaining = [op.name for op in module.walk() if op.name.startswith("cmath.")]
    assert not remaining, f"cmath ops left behind: {remaining}"
    print("lowering complete: no cmath operations remain")


if __name__ == "__main__":
    main()
